#!/usr/bin/env python
"""Grid computing: replica placement matters as much as the vote.

The paper's DCA examples include grid systems (Globus).  Grids fail in
*correlated* units -- a bad node image or a broken shared filesystem
poisons a whole site for a task -- which is exactly the Section 5.3
relaxation of the independence assumption.  This example runs the same
redundant computation across an 8-site grid three ways:

1. random placement (replicas may share a poisoned site),
2. anti-affinity placement (never two replicas of one task per site),
3. anti-affinity plus iterative redundancy (the margin rule now spends
   exactly the extra replicas that site-level disagreement demands).

Run:
    python examples/grid_scheduling.py
"""

from repro.core import IterativeRedundancy, TraditionalRedundancy, analysis
from repro.grid import GridConfig, MaintenanceWindow, run_grid


def main() -> None:
    base = dict(
        tasks=4_000,
        sites=8,
        slots_per_site=16,
        site_fault_prob=0.15,
        job_fault_prob=0.05,
        seed=13,
        # one site has a maintenance window mid-run
        maintenance={3: (MaintenanceWindow(start=10.0, duration=15.0),)},
    )
    marginal_r = GridConfig(strategy=TraditionalRedundancy(3), **base).expected_job_reliability()
    print(f"8-site grid; site poisoning 0.15/task, residual faults 0.05")
    print(f"marginal per-job reliability r = {marginal_r:.3f}")
    print(f"Equation (2) bound for k=5 at that r: "
          f"{analysis.traditional_reliability(marginal_r, 5):.4f}")
    print()
    print(f"{'configuration':44s} {'cost':>6} {'reliability':>12}")
    runs = [
        ("TR k=5, random placement", TraditionalRedundancy(5), "random", False),
        ("TR k=5, anti-affinity", TraditionalRedundancy(5), "random", True),
        ("IR d=4, anti-affinity", IterativeRedundancy(4), "least_loaded", True),
    ]
    for label, strategy, policy, anti in runs:
        report = run_grid(
            GridConfig(strategy=strategy, policy=policy, anti_affinity=anti, **base)
        )
        print(f"{label:44s} {report.cost_factor:6.2f} {report.system_reliability:12.4f}")
    print()
    print("Co-located replicas inherit their site's fate, so random placement")
    print("underperforms the independence-based analysis; anti-affinity restores")
    print("it, and iterative redundancy then buys more reliability per job.")


if __name__ == "__main__":
    main()
