#!/usr/bin/env python
"""MapReduce under Byzantine workers: word counting with smart redundancy.

The paper's first page lists MapReduce systems (Hadoop) among the DCAs
that rely on traditional redundancy.  This example runs a word-count job
whose map tasks execute on a pool of unreliable nodes; failures collude
on corrupted per-chunk counts.  Compare: no redundancy (garbage out),
Hadoop-style traditional redundancy, and iterative redundancy at a
fraction of the cost.

Run:
    python examples/mapreduce_wordcount.py
"""

from repro.core import IterativeRedundancy, NoRedundancy, TraditionalRedundancy
from repro.mapreduce import run_mapreduce, wordcount_job

FABLE = (
    "the crow and the fox met beneath the old oak tree "
    "the fox praised the crow and the crow dropped the cheese "
    "the fox took the cheese and the crow learned a lesson "
) * 40


def main() -> None:
    job = wordcount_job(FABLE, chunk_size=160)
    truth = dict(job.expected_output())
    total_words = sum(truth.values())
    print(f"word-count job: {job.num_tasks} map chunks, node reliability 0.8")
    print(f"ground truth:   {total_words} words total "
          f"(fox={truth['fox']}, crow={truth['crow']}, cheese={truth['cheese']})")
    print()
    print(f"{'strategy':22s} {'cost':>6} {'map rel.':>9} {'bad chunks':>11}  total words")
    for strategy in (NoRedundancy(), TraditionalRedundancy(9), IterativeRedundancy(6)):
        report = run_mapreduce(job, strategy, nodes=150, reliability=0.8, seed=11)
        counted_total = sum(count for _, count in report.output)
        marker = "EXACT" if report.correct else "CORRUPTED"
        print(
            f"{strategy.describe():22s} {report.cost_factor:6.2f} "
            f"{report.map_reliability:9.3f} {report.corrupted_chunks:11d}  "
            f"{counted_total} ({marker})"
        )
    print()
    from repro.core import analysis

    target = analysis.iterative_reliability(0.8, 6)
    k_needed = analysis.continuous_traditional_k(0.8, target)
    print("Without redundancy the reduce ingests corrupted chunk counts and")
    print("the totals drift.  Iterative redundancy recovers the exact counts;")
    print(f"matching its per-chunk reliability ({target:.5f}) with traditional")
    print(f"redundancy would take k = {k_needed:.1f} -> cost {k_needed:.1f}x, "
          f"vs IR's measured 10.9x.")


if __name__ == "__main__":
    main()
