#!/usr/bin/env python
"""Adapting to a changing environment -- redundancy without knowing r.

Iterative redundancy's selling point: the operator specifies the margin d
(equivalently, "how much improvement is needed"), and the *cost adapts*
to whatever the actual node reliability turns out to be, while k-vote
schemes pay a fixed k regardless.

This example sweeps a pool whose reliability degrades from 0.95 to 0.60
(e.g. a malware wave spreading through a volunteer population, or churn
replacing good machines with flaky ones) and shows that:

* traditional redundancy's cost is flat but its reliability collapses;
* iterative redundancy spends *more* exactly when nodes get worse,
  holding reliability far higher at comparable average cost -- with the
  same parameter d throughout, chosen without reliability knowledge.

It also exercises the Section 5.3 relaxations: a heterogeneous Beta pool
and node churn.

Run:
    python examples/adaptive_environment.py
"""

from repro.core import IterativeRedundancy, TraditionalRedundancy, analysis
from repro.core.distributions import BetaReliability
from repro.dca import DcaConfig, run_dca


def main() -> None:
    print("Pool reliability degrades; strategies keep their parameters.")
    print("-" * 72)
    print(f"{'r':>5}  {'TR k=9 cost':>11} {'TR k=9 rel':>10}  {'IR d=4 cost':>11} {'IR d=4 rel':>10}")
    for r in (0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6):
        pool = BetaReliability.with_mean(r, concentration=12.0)
        tr = run_dca(
            DcaConfig(
                strategy=TraditionalRedundancy(9),
                tasks=4_000,
                nodes=400,
                reliability=pool,
                seed=31,
                arrival_rate=1.0,
                departure_rate=1.0,
            )
        )
        ir = run_dca(
            DcaConfig(
                strategy=IterativeRedundancy(4),
                tasks=4_000,
                nodes=400,
                reliability=pool,
                seed=31,
                arrival_rate=1.0,
                departure_rate=1.0,
            )
        )
        print(
            f"{r:5.2f}  {tr.cost_factor:11.2f} {tr.system_reliability:10.4f}  "
            f"{ir.cost_factor:11.2f} {ir.system_reliability:10.4f}"
        )
    print()
    print("IR's cost rises as nodes degrade (it buys agreement where it is")
    print("scarce) while holding reliability; TR's k = 9 budget is spent")
    print("identically everywhere and its reliability falls off a cliff.")
    print()
    print("Analytic view (Equation (6) vs Equation (2)):")
    for r in (0.9, 0.75, 0.6):
        print(
            f"  r={r:4.2f}:  R_TR(k=9) = {analysis.traditional_reliability(r, 9):.4f}   "
            f"R_IR(d=4) = {analysis.iterative_reliability(r, 4):.4f}   "
            f"C_IR(d=4) = {analysis.iterative_cost(r, 4):.2f}x"
        )


if __name__ == "__main__":
    main()
