#!/usr/bin/env python
"""Volunteer computing: solve a 3-SAT problem on unreliable volunteers.

Recreates the paper's BOINC deployment in miniature: a random 3-SAT
problem is decomposed into range tasks (the paper used 22 variables and
140 tasks; this example uses 14 variables and 56 tasks so honest clients
can *really* enumerate their slices in seconds), distributed to a
PlanetLab-like testbed with 30% seeded faults plus natural faults and
unresponsive machines, and validated with iterative redundancy.

The deployment never learns the true node reliability; afterwards we
derive it from the measured cost, exactly like Section 4.2 derives
0.64 < r < 0.67.

Run:
    python examples/volunteer_sat.py
"""

from repro.core import IterativeRedundancy, TraditionalRedundancy
from repro.volunteer import PlanetLabTestbed, VolunteerConfig, run_volunteer


def main() -> None:
    testbed = PlanetLabTestbed(nodes=120)
    print(f"Testbed: {testbed.nodes} PlanetLab-like volunteers")
    print(f"  seeded fault rate      {testbed.seeded_fault_prob}")
    print(f"  natural faults (max)   {testbed.natural_fault_max}  <- unknown to the algorithms")
    print(f"  true pool reliability  ~{testbed.expected_reliability():.3f}")
    print()

    for strategy in (TraditionalRedundancy(9), IterativeRedundancy(4)):
        report = run_volunteer(
            VolunteerConfig(
                strategy=strategy,
                testbed=testbed,
                sat_vars=14,
                tasks=56,
                seed=7,
                really_compute=True,  # honest clients enumerate their slice
            )
        )
        print(f"{strategy.describe()}")
        print(f"  tasks correct        {report.tasks_correct}/{report.tasks_completed}")
        print(f"  cost factor          {report.cost_factor:.2f}x")
        print(f"  deadline misses      {report.deadline_misses}")
        print(
            f"  problem answer       {'SAT' if report.problem_answer else 'UNSAT'}"
            f" (truth: {'SAT' if report.problem_truth else 'UNSAT'})"
            f" -> {'CORRECT' if report.problem_correct else 'WRONG'}"
        )
        print(f"  derived node r       {report.derived_reliability:.3f}")
        print()
    print("Both techniques recover the answer; iterative redundancy does it")
    print("with higher per-task reliability per unit of cost, and the derived")
    print("r lands below the seeded 0.7 -- the natural faults, measured.")


if __name__ == "__main__":
    main()
