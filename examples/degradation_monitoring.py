#!/usr/bin/env python
"""Operating iterative redundancy: watch the pool through the cost signal.

Iterative redundancy never needs to know the node reliability -- but its
*spending* reveals it.  Because the expected jobs per task is exactly
C_IR(r, d), the server can invert its own bill to estimate r continuously
(this is how the paper derived PlanetLab's reliability in Section 4.2).

This example simulates an operations scenario: a healthy pool (r = 0.85)
is progressively compromised until a third of results are hostile
(r = 0.62).  The reliability estimator tracks the decline from job counts
alone, and the degradation monitor raises alarms as the implied r crosses
the SLO floor -- all without ground truth.

Run:
    python examples/degradation_monitoring.py
"""

import random

from repro.core import IterativeRedundancy, analysis
from repro.core.estimation import degradation_monitor, estimate_from_job_counts
from repro.core.runner import bernoulli_source, run_task

D = 4
PHASES = [
    ("healthy", 0.85, 400),
    ("infiltration begins", 0.75, 400),
    ("one third hostile", 0.62, 400),
]


def main() -> None:
    rng = random.Random(2026)
    strategy = IterativeRedundancy(D)
    job_counts = []
    boundaries = []
    for label, r, tasks in PHASES:
        for _ in range(tasks):
            verdict = run_task(strategy, bernoulli_source(rng, r))
            job_counts.append(verdict.jobs_used)
        boundaries.append((label, r, len(job_counts)))

    print(f"iterative redundancy d={D}; estimating r from job counts alone")
    print()
    print(f"{'phase':24s} {'true r':>7} {'est. r (phase window)':>22} {'mean jobs':>10}")
    start = 0
    for label, r, end in boundaries:
        window = job_counts[start:end]
        estimate = estimate_from_job_counts(window, D)
        mean_jobs = sum(window) / len(window)
        print(f"{label:24s} {r:7.2f} {estimate:22.3f} {mean_jobs:10.2f}")
        start = end
    print()

    floor = 0.7
    alarms = degradation_monitor(job_counts, D, window=150, floor=floor)
    print(f"degradation monitor (sliding window 150 tasks, floor r = {floor}):")
    if alarms:
        first = alarms[0]
        print(
            f"  first alarm at task {first.task_index} "
            f"(implied r = {first.estimated_r:.3f}, window mean {first.window_mean_jobs:.2f} jobs)"
        )
        print(f"  {len(alarms)} alarmed window positions in total")
        infiltration_start = boundaries[0][2]
        print(f"  (infiltration actually began at task {infiltration_start})")
    else:
        print("  no alarms (pool healthy)")
    print()
    print("Responding: to hold R = 0.99 at the degraded r, raise the margin:")
    for r in (0.85, 0.62):
        from repro.core.confidence import required_margin

        d_needed = required_margin(r, 0.99)
        print(
            f"  r = {r}: d = {d_needed}  "
            f"(cost {analysis.iterative_cost(r, d_needed):.1f} jobs/task)"
        )


if __name__ == "__main__":
    main()
