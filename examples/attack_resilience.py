#!/usr/bin/env python
"""Attack resilience: reputation games vs stateless voting.

Two classic volunteer-computing attacks from the paper's Section 5.1:

1. **Whitewashing** -- malicious nodes caught by spot-checks shed their
   blacklisted identities and rejoin fresh.  Credibility-based fault
   tolerance (Sarmenta) depends on reputations sticking; iterative
   redundancy keeps no per-node state, so the attack has nothing to wash.

2. **Earn-trust-then-defect** -- nodes behave honestly until BOINC-style
   adaptive replication trusts them enough to skip replication, then
   defect.  Iterative redundancy never extends that credit.

Run:
    python examples/attack_resilience.py
"""

import random

from repro.core import (
    AdaptiveReplication,
    CredibilityManager,
    CredibilityStrategy,
    IterativeRedundancy,
)
from repro.core.distributions import TwoClassReliability
from repro.dca import (
    ByzantineCollusion,
    DcaConfig,
    DcaSimulation,
    SpotCheckEvading,
    run_dca,
)
from repro.experiments.ablations import _install_whitewasher


def whitewashing_demo() -> None:
    print("Attack 1: fooling credibility-based fault tolerance")
    print("-" * 68)
    population = TwoClassReliability(good_r=0.95, faulty_r=0.0, faulty_fraction=0.3)

    regimes = (
        ("naive attackers", False, False),
        ("check-evading attackers", True, False),
        ("evading + whitewashing", True, True),
    )
    for label, evading, whitewash in regimes:
        manager = CredibilityManager(assumed_fault_fraction=0.3, spot_check_rate=0.15)
        strategy = CredibilityStrategy(manager, target=0.97)
        simulation = DcaSimulation(
            DcaConfig(
                strategy=strategy,
                tasks=2_000,
                nodes=300,
                reliability=population,
                seed=11,
                spot_check_rate=manager.spot_check_rate,
                failure_model=SpotCheckEvading(ByzantineCollusion()) if evading else None,
            )
        )
        if whitewash:
            _install_whitewasher(simulation, manager)
        report = simulation.run()
        print(
            f"  credibility vs {label:24s} reliability {report.system_reliability:.4f}  "
            f"cost {report.cost_factor:5.2f}x  (+{report.spot_checks} spot-checks, "
            f"{manager.blacklist_events} blacklist events)"
        )
    ir_report = run_dca(
        DcaConfig(
            strategy=IterativeRedundancy(5),
            tasks=2_000,
            nodes=300,
            reliability=population,
            seed=11,
        )
    )
    print(
        f"  iterative d=5 (stateless)      reliability {ir_report.system_reliability:.4f}  "
        f"cost {ir_report.cost_factor:5.2f}x  (no reputations to attack)"
    )
    print()


def defection_demo() -> None:
    print("Attack 2: earn trust, then defect (vs adaptive replication)")
    print("-" * 68)
    from repro.core.runner import run_task
    from repro.core.types import JobOutcome

    tasks = 2_000
    population = 300
    rng = random.Random(5)
    malicious = set(rng.sample(range(population), population // 3))

    def evaluate(strategy) -> tuple:
        correct = 0
        jobs = 0
        for task_id in range(tasks):
            defecting = task_id >= tasks // 2

            def source(index: int) -> JobOutcome:
                node = rng.randrange(population)
                if node in malicious and defecting:
                    return JobOutcome(value=False, node_id=node)
                return JobOutcome(value=rng.random() < 0.95, node_id=node)

            verdict = run_task(strategy, source, true_value=True, task_id=task_id)
            jobs += verdict.jobs_used
            correct += bool(verdict.correct)
        return correct / tasks, jobs / tasks

    adaptive = AdaptiveReplication(quorum=2, trust_after=5, audit_rate=0.02, rng=random.Random(1))
    for label, strategy in (("adaptive replication", adaptive), ("iterative d=4", IterativeRedundancy(4))):
        reliability, cost = evaluate(strategy)
        print(f"  {label:22s} reliability {reliability:.4f}  cost {cost:5.2f}x")
    print()
    print("  After the defection point, adaptive replication keeps accepting")
    print("  the trusted defectors' single results; iterative redundancy keeps")
    print("  demanding a margin of agreement and stays near its design point.")


if __name__ == "__main__":
    whitewashing_demo()
    defection_demo()
