#!/usr/bin/env python
"""Quickstart: compare the three redundancy techniques in five minutes.

Builds the paper's running example (node reliability r = 0.7), shows the
closed-form predictions of Equations (1)-(6), then verifies them with a
discrete-event simulation of a 1,000-node distributed computation
architecture -- the Figure 1 system model.

Run:
    python examples/quickstart.py
"""

from repro.core import (
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
    analysis,
)
from repro.dca import DcaConfig, run_dca

R = 0.7  # average node reliability (unknown to iterative redundancy!)


def main() -> None:
    print("Closed-form predictions at r = 0.7 (Equations (1)-(6))")
    print("-" * 60)
    rows = [
        ("traditional k=19", analysis.traditional_cost(19), analysis.traditional_reliability(R, 19)),
        ("progressive k=19", analysis.progressive_cost(R, 19), analysis.progressive_reliability(R, 19)),
        ("iterative   d=4 ", analysis.iterative_cost(R, 4), analysis.iterative_reliability(R, 4)),
    ]
    for name, cost, reliability in rows:
        print(f"  {name}:  cost {cost:6.2f}x   reliability {reliability:.4f}")
    print()
    print("Same ~0.97 reliability; iterative redundancy pays half of what")
    print("traditional redundancy pays -- without ever being told r.")
    print()

    print("Simulation check (10,000 tasks, 1,000 nodes, Byzantine collusion)")
    print("-" * 60)
    for strategy in (
        TraditionalRedundancy(19),
        ProgressiveRedundancy(19),
        IterativeRedundancy(4),
    ):
        report = run_dca(
            DcaConfig(strategy=strategy, tasks=10_000, nodes=1_000, reliability=R, seed=42)
        )
        print(
            f"  {strategy.describe():20s} cost {report.cost_factor:6.2f}x   "
            f"reliability {report.system_reliability:.4f}   "
            f"response {report.mean_response_time:.2f}"
        )
    print()
    print("Tuning without knowing r: pick d for the improvement you want.")
    print("-" * 60)
    for d in (1, 2, 3, 4, 5, 6):
        print(
            f"  d={d}:  reliability {analysis.iterative_reliability(R, d):.4f}   "
            f"cost {analysis.iterative_cost(R, d):5.2f}x"
        )


if __name__ == "__main__":
    main()
