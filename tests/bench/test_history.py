# reprolint: disable-file=RL003 -- history rows are pure functions of pinned inputs
"""Benchmark history (:mod:`repro.bench.history`): schema-versioned
JSONL rows, injected timestamps, and the ``--history`` CLI flag."""

import json

from repro.bench.cli import main as bench_main
from repro.bench.history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    current_git_sha,
    history_row,
    read_history,
)

PAYLOAD = {
    "seed": 3,
    "quick": True,
    "checksum": "abc123",
    "timings": {
        "serial": {"best_seconds": 0.5, "mean_seconds": 0.6},
        "parallel": {"best_seconds": 0.2, "mean_seconds": 0.3},
    },
    "wall_clock_seconds": 1.25,
}


class TestRow:
    def test_row_is_pure_and_schema_versioned(self):
        row = history_row("scale", PAYLOAD, timestamp="2026-08-08T00:00:00+00:00", git_sha="deadbeef")
        assert row == {
            "schema_version": HISTORY_SCHEMA_VERSION,
            "suite": "scale",
            "quick": True,
            "seed": 3,
            "checksum": "abc123",
            "best_seconds": {"serial": 0.5, "parallel": 0.2},
            "wall_clock_seconds": 1.25,
            "git_sha": "deadbeef",
            "timestamp": "2026-08-08T00:00:00+00:00",
        }

    def test_timings_may_be_absent(self):
        row = history_row("x", {"seed": 0}, timestamp="t", git_sha="s")
        assert row["best_seconds"] == {}
        assert row["checksum"] is None


class TestAppend:
    def test_appends_one_line_per_call(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        first = append_history(path, "scale", PAYLOAD, timestamp="t1", git_sha="s1")
        second = append_history(path, "scale", PAYLOAD, timestamp="t2", git_sha="s1")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == first
        assert json.loads(lines[1]) == second

    def test_default_sha_and_timestamp_are_filled_in(self, tmp_path):
        row = append_history(tmp_path / "h.jsonl", "scale", PAYLOAD)
        assert row["git_sha"]
        assert "T" in row["timestamp"]

    def test_read_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(path, "scale", PAYLOAD, timestamp="t", git_sha="s")
        with path.open("a") as stream:
            stream.write('{"truncated": \n')
        append_history(path, "scale", PAYLOAD, timestamp="t2", git_sha="s")
        rows = read_history(path)
        assert [row["timestamp"] for row in rows] == ["t", "t2"]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []


class TestGitSha:
    def test_inside_this_repo_returns_a_sha(self):
        sha = current_git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_outside_a_repo_returns_unknown(self, tmp_path):
        assert current_git_sha(cwd=tmp_path) == "unknown"


class TestCliFlag:
    def test_history_flag_appends_rows(self, tmp_path):
        target = tmp_path / "history.jsonl"
        code = bench_main(
            [
                "decide_loops",
                "sim_engine",
                "--quick",
                "--output-dir",
                str(tmp_path),
                "--history",
                str(target),
            ]
        )
        assert code == 0
        rows = read_history(target)
        assert [row["suite"] for row in rows] == ["decide_loops", "sim_engine"]
        for row in rows:
            assert row["schema_version"] == HISTORY_SCHEMA_VERSION
            assert row["quick"] is True
            assert row["checksum"]
            assert row["wall_clock_seconds"] > 0
