# reprolint: disable-file=RL003 -- tests assert exact verdicts of constructed comparisons on purpose
"""Tests for the baseline comparison gate (``repro-bench --compare``)."""

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.compare import (
    compare_report,
    compare_to_baseline,
    format_comparison,
)
from repro.bench.report import write_report


def _payload(best=1.0, checksum="abc", seed=0, quick=True, params=None):
    return {
        "suite": "unit",
        "seed": seed,
        "quick": quick,
        "params": params if params is not None else {"tasks": 10},
        "timings": {
            "case": {
                "repeats": 1,
                "best_seconds": best,
                "mean_seconds": best,
                "total_seconds": best,
            }
        },
        "results": {},
        "checksum": checksum,
    }


class TestCompareReport:
    def test_ok_when_faster(self):
        comparison = compare_report(_payload(best=1.0), _payload(best=0.5))
        assert comparison["verdict"] == "ok"
        assert comparison["timings"]["case"]["speedup"] == pytest.approx(2.0)
        assert not comparison["timings"]["case"]["regressed"]

    def test_ok_within_tolerance(self):
        comparison = compare_report(
            _payload(best=1.0), _payload(best=1.10), tolerance=0.15
        )
        assert comparison["verdict"] == "ok"

    def test_regression_beyond_tolerance(self):
        comparison = compare_report(
            _payload(best=1.0), _payload(best=1.30), tolerance=0.15
        )
        assert comparison["verdict"] == "regression"
        assert comparison["timings"]["case"]["regressed"]
        assert any("regressed" in p for p in comparison["problems"])

    def test_checksum_mismatch_fails_regardless_of_speed(self):
        comparison = compare_report(
            _payload(best=1.0, checksum="abc"),
            _payload(best=0.1, checksum="DIFFERENT"),
        )
        assert comparison["verdict"] == "checksum_mismatch"
        assert comparison["timings"] == {}

    def test_params_mismatch_is_incomparable(self):
        comparison = compare_report(
            _payload(params={"tasks": 10}), _payload(params={"tasks": 99})
        )
        assert comparison["verdict"] == "incomparable"

    def test_quick_vs_full_is_incomparable(self):
        comparison = compare_report(_payload(quick=False), _payload(quick=True))
        assert comparison["verdict"] == "incomparable"

    def test_missing_timing_is_a_regression(self):
        current = _payload()
        current["timings"] = {}
        comparison = compare_report(_payload(), current)
        assert comparison["verdict"] == "regression"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_report(_payload(), _payload(), tolerance=-0.1)

    def test_format_comparison_mentions_verdict_and_speedup(self):
        text = format_comparison(compare_report(_payload(1.0), _payload(0.5)))
        assert "OK" in text
        assert "x2.00" in text


class TestCompareToBaseline:
    def test_missing_baseline_returns_none(self, tmp_path):
        assert compare_to_baseline("unit", _payload(), tmp_path) is None

    def test_round_trip_through_report_files(self, tmp_path):
        write_report("unit", _payload(best=1.0), output_dir=tmp_path)
        comparison = compare_to_baseline("unit", _payload(best=0.9), tmp_path)
        assert comparison is not None
        assert comparison["verdict"] == "ok"

    def test_quick_and_full_baselines_live_side_by_side(self, tmp_path):
        # Quick payloads route to BENCH_<name>.quick.json and full ones
        # to BENCH_<name>.json, so one baseline dir serves both the
        # per-PR quick gate and the nightly full gate without ever
        # comparing across sizes.
        quick_path = write_report("unit", _payload(quick=True), output_dir=tmp_path)
        full_path = write_report("unit", _payload(quick=False), output_dir=tmp_path)
        assert quick_path.name == "BENCH_unit.quick.json"
        assert full_path.name == "BENCH_unit.json"
        quick = compare_to_baseline("unit", _payload(quick=True), tmp_path)
        full = compare_to_baseline("unit", _payload(quick=False), tmp_path)
        assert quick is not None and quick["verdict"] == "ok"
        assert full is not None and full["verdict"] == "ok"

    def test_quick_current_skips_full_only_baseline(self, tmp_path):
        write_report("unit", _payload(quick=False), output_dir=tmp_path)
        assert compare_to_baseline("unit", _payload(quick=True), tmp_path) is None


class TestCliGate:
    """End-to-end: the CLI exit codes CI relies on."""

    def test_compare_ok_exits_zero_and_writes_artifact(self, tmp_path, capsys):
        from repro.bench.suites import run_suite

        baseline_dir = tmp_path / "baselines"
        baseline = run_suite("decide_loops", seed=3, quick=True, repeats=1)
        baseline["timings"] = {
            name: {**stats, "best_seconds": stats["best_seconds"] * 100}
            for name, stats in baseline["timings"].items()
        }
        write_report("decide_loops", baseline, output_dir=baseline_dir)
        out_dir = tmp_path / "out"
        code = bench_main(
            [
                "decide_loops",
                "--quick",
                "--seed",
                "3",
                "--compare",
                str(baseline_dir),
                "--output-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        artifact = json.loads((out_dir / "BENCH_comparison.json").read_text())
        assert artifact["comparisons"][0]["verdict"] == "ok"

    def test_compare_checksum_mismatch_exits_nonzero(self, tmp_path, capsys):
        from repro.bench.suites import run_suite

        baseline_dir = tmp_path / "baselines"
        baseline = run_suite("decide_loops", seed=3, quick=True, repeats=1)
        baseline["checksum"] = "0" * 64
        write_report("decide_loops", baseline, output_dir=baseline_dir)
        code = bench_main(
            [
                "decide_loops",
                "--quick",
                "--seed",
                "3",
                "--compare",
                str(baseline_dir),
                "--output-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "checksum_mismatch" in captured.err

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.bench.suites import run_suite

        baseline_dir = tmp_path / "baselines"
        baseline = run_suite("decide_loops", seed=3, quick=True, repeats=1)
        # An impossibly fast baseline: any real run regresses against it.
        baseline["timings"] = {
            name: {**stats, "best_seconds": 1e-9}
            for name, stats in baseline["timings"].items()
        }
        write_report("decide_loops", baseline, output_dir=baseline_dir)
        code = bench_main(
            [
                "decide_loops",
                "--quick",
                "--seed",
                "3",
                "--compare",
                str(baseline_dir),
                "--output-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "regression" in captured.err

    def test_missing_baseline_is_not_a_failure(self, tmp_path, capsys):
        code = bench_main(
            [
                "decide_loops",
                "--quick",
                "--seed",
                "3",
                "--compare",
                str(tmp_path / "empty"),
                "--output-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        assert "no baseline" in capsys.readouterr().out

    def test_profile_smoke(self, tmp_path, capsys):
        code = bench_main(
            [
                "decide_loops",
                "--quick",
                "--profile",
                "5",
                "--output-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "profile: decide_loops" in captured.out
        assert "cumulative" in captured.out
