# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for the benchmark harness: timing primitives, report schema,
suite payloads, and the CLI's divergence gate."""

import json

import pytest

from repro.bench import SCHEMA_VERSION, SUITES, run_suite, time_callable, write_report
from repro.bench.cli import main as bench_main
from repro.bench.report import report_path


class TestTiming:
    def test_time_callable_counts_and_returns_value(self):
        calls = []

        def body():
            calls.append(1)
            return "value"

        stats, value = time_callable(body, repeats=3, warmup=2)
        assert value == "value"
        assert len(calls) == 5
        assert stats.repeats == 3
        assert 0 <= stats.best <= stats.mean <= stats.total

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestReport:
    def test_write_report_schema(self, tmp_path):
        path = write_report(
            "unit", {"seed": 0, "checksum": "abc"}, output_dir=tmp_path
        )
        assert path == report_path("unit", tmp_path)
        assert path.name == "BENCH_unit.json"
        document = json.loads(path.read_text())
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["suite"] == "unit"
        assert document["seed"] == 0
        assert document["checksum"] == "abc"
        machine = document["machine"]
        assert machine["python"] and machine["cpu_count"] >= 1


class TestSuites:
    def test_decide_loops_payload_deterministic(self):
        first = run_suite("decide_loops", seed=1, quick=True, repeats=1)
        second = run_suite("decide_loops", seed=1, quick=True, repeats=1)
        assert first["checksum"] == second["checksum"]
        assert set(first["results"]) == {
            "iterative_d3",
            "progressive_k7",
            "traditional_k7",
        }

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            run_suite("warp_drive")

    def test_scale_sharded_equals_unsharded_and_is_stable(self):
        payload = run_suite("scale", seed=1, quick=True, repeats=1)
        assert payload["diverged"] is False
        assert payload["serial_checksum"] == payload["parallel_checksum"]
        assert payload["checksum"] == payload["serial_checksum"]
        merged = payload["results"]["merged"]
        assert merged["tasks"] == payload["params"]["tasks"]
        assert merged["shards"] == payload["params"]["shards"]
        assert 0 < merged["reliability"] <= 1
        assert payload["results"]["tasks_per_second"] > 0
        # Quick runs gate on checksum identity only: sub-50ms timings are
        # noise, so they ride along ungated instead of in "timings".
        assert payload["timings"] == {}
        assert payload["results"]["timings_ungated"]
        again = run_suite("scale", seed=1, quick=True, repeats=1)
        assert payload["checksum"] == again["checksum"]

    @pytest.mark.parametrize("name", ["scale_churn", "scale_spot", "scale_deadline"])
    def test_regime_scale_suites_are_stable_and_converge(self, name):
        payload = run_suite(name, seed=1, quick=True, repeats=1)
        assert payload["diverged"] is False
        assert payload["serial_checksum"] == payload["parallel_checksum"]
        # Quick runs gate checksum identity only; timings ride ungated.
        assert payload["timings"] == {}
        assert "timings_ungated" in payload["results"]
        assert payload["below_des_floor"] is False
        assert payload["results"]["speedup_vs_des"] > 0
        merged = payload["results"]["merged"]
        if payload["params"]["transport"] == "shm":
            assert merged["columns"]["tasks"] == merged["tasks"]
        again = run_suite(name, seed=1, quick=True, repeats=1)
        assert again["checksum"] == payload["checksum"]

    def test_regime_scale_suites_carry_their_regime(self):
        churn = run_suite("scale_churn", seed=1, quick=True, repeats=1)
        merged = churn["results"]["merged"]
        assert merged["nodes_joined"] > 0
        assert merged["nodes_departed"] > 0
        spot = run_suite("scale_spot", seed=1, quick=True, repeats=1)
        assert spot["results"]["merged"]["spot_checks"] > 0
        deadline = run_suite("scale_deadline", seed=1, quick=True, repeats=1)
        merged = deadline["results"]["merged"]
        assert merged["tasks"] <= merged["tasks_submitted"]
        assert merged["makespan"] <= 6.0

    def test_obs_overhead_gates_a_ratio_and_agrees_across_variants(self):
        payload = run_suite("obs_overhead", seed=1, quick=True, repeats=1)
        ratio = payload["timings"]["null_recorder_ratio"]["best_seconds"]
        assert ratio > 0
        results = payload["results"]
        assert set(results) >= {
            "bare",
            "null_recorder",
            "telemetry_recorder",
            "null_recorder_overhead",
            "telemetry_recorder_overhead",
        }
        # Checksum is over the bare run's metrics, which the suite asserts
        # equal across all three variants; same seed -> same checksum.
        again = run_suite("obs_overhead", seed=1, quick=True, repeats=1)
        assert payload["checksum"] == again["checksum"]


class TestCli:
    def test_quick_run_writes_reports(self, tmp_path, capsys):
        code = bench_main(
            ["decide_loops", "sim_engine", "--quick", "--output-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("decide_loops", "sim_engine"):
            assert (tmp_path / f"BENCH_{name}.quick.json").exists()
            assert name in out

    def test_figure_sweep_serial_parallel_agree(self, tmp_path):
        code = bench_main(
            ["figure_sweep", "--quick", "--jobs", "2", "--output-dir", str(tmp_path)]
        )
        assert code == 0
        document = json.loads(
            (tmp_path / "BENCH_figure_sweep.quick.json").read_text()
        )
        assert document["diverged"] is False
        assert document["serial_checksum"] == document["parallel_checksum"]
        assert document["results"]["speedup"] > 0

    def test_divergence_is_a_failure(self, tmp_path, capsys, monkeypatch):
        def fake_suite(**kwargs):
            return {
                "seed": 0,
                "checksum": "aa",
                "serial_checksum": "aa",
                "parallel_checksum": "bb",
                "diverged": True,
                "results": {},
            }

        monkeypatch.setitem(SUITES, "fake_sweep", fake_suite)
        code = bench_main(["fake_sweep", "--output-dir", str(tmp_path)])
        assert code == 1
        assert "diverged" in capsys.readouterr().err

    def test_below_des_floor_is_a_failure(self, tmp_path, capsys, monkeypatch):
        def fake_suite(**kwargs):
            return {
                "seed": 0,
                "checksum": "aa",
                "diverged": False,
                "below_des_floor": True,
                "results": {"speedup_vs_des": 12.0},
            }

        monkeypatch.setitem(SUITES, "fake_scale", fake_suite)
        code = bench_main(["fake_scale", "--output-dir", str(tmp_path)])
        assert code == 1
        assert "below the" in capsys.readouterr().err

    def test_unknown_suite_exits_two(self, capsys):
        assert bench_main(["warp_drive"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in SUITES:
            assert name in out

    def test_telemetry_flag_writes_a_capture(self, tmp_path, capsys):
        from repro.obs import Capture

        target = tmp_path / "cap.json"
        code = bench_main(
            [
                "decide_loops",
                "--quick",
                "--output-dir",
                str(tmp_path),
                "--telemetry",
                str(target),
            ]
        )
        assert code == 0
        assert "telemetry capture" in capsys.readouterr().out
        capture = Capture.load(target)
        assert capture.meta["label"] == "bench:dca_run"
        assert capture.metrics["dca.accept"]["series"][0]["value"] == 300
