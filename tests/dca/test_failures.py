"""Tests for the failure models."""

import random

import pytest

from repro.dca.failures import (
    ByzantineCollusion,
    CorrelatedFailures,
    NonColludingFailures,
    SpotCheckEvading,
    UnresponsiveWrapper,
)
from repro.dca.node import Node
from repro.dca.workload import Task


def node(reliability=0.7, unresponsive=0.0, node_id=0):
    return Node(node_id=node_id, reliability=reliability, unresponsive_prob=unresponsive)


TASK = Task(task_id=1)


class TestByzantineCollusion:
    def test_reliable_node_reports_truth(self):
        model = ByzantineCollusion()
        assert model.report(TASK, node(reliability=1.0), random.Random(0)) is True

    def test_failed_jobs_collude_on_single_wrong_value(self):
        model = ByzantineCollusion()
        rng = random.Random(0)
        values = {
            model.report(TASK, node(reliability=0.0), rng) for _ in range(50)
        }
        assert values == {TASK.wrong_value}

    def test_failure_rate_matches_reliability(self):
        model = ByzantineCollusion()
        rng = random.Random(1)
        worker = node(reliability=0.7)
        correct = sum(
            1 for _ in range(20_000) if model.report(TASK, worker, rng) is True
        )
        assert correct / 20_000 == pytest.approx(0.7, abs=0.02)

    def test_unresponsive_node_goes_silent(self):
        model = ByzantineCollusion()
        rng = random.Random(2)
        worker = node(reliability=1.0, unresponsive=1.0)
        assert model.report(TASK, worker, rng) is None


class TestNonColludingFailures:
    def test_wrong_values_are_diverse(self):
        """Section 5.3: non-colluding failures rarely agree."""
        model = NonColludingFailures(value_space=10**9)
        rng = random.Random(3)
        wrongs = [
            model.report(TASK, node(reliability=0.0), rng) for _ in range(100)
        ]
        assert len(set(wrongs)) == len(wrongs)
        assert all(w != TASK.true_value for w in wrongs)

    def test_correct_results_still_agree(self):
        model = NonColludingFailures()
        rng = random.Random(4)
        assert model.report(TASK, node(reliability=1.0), rng) is True

    def test_value_space_validation(self):
        with pytest.raises(ValueError):
            NonColludingFailures(value_space=1)


class TestUnresponsiveWrapper:
    def test_silence_probability(self):
        model = UnresponsiveWrapper(ByzantineCollusion(), silent_prob=0.3)
        rng = random.Random(5)
        silent = sum(
            1
            for _ in range(10_000)
            if model.report(TASK, node(reliability=1.0), rng) is None
        )
        assert silent / 10_000 == pytest.approx(0.3, abs=0.02)

    def test_zero_silence_passthrough(self):
        model = UnresponsiveWrapper(ByzantineCollusion(), silent_prob=0.0)
        assert model.report(TASK, node(reliability=1.0), random.Random(0)) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            UnresponsiveWrapper(ByzantineCollusion(), silent_prob=1.0)


class TestSpotCheckEvading:
    def test_malicious_node_passes_spot_checks(self):
        """Spot-check jobs (task id -1) get the correct answer even from a
        node that is always wrong on real work."""
        model = SpotCheckEvading(ByzantineCollusion())
        rng = random.Random(10)
        bad_node = node(reliability=0.0)
        spot_check = Task(task_id=-1)
        assert model.report(spot_check, bad_node, rng) is True
        assert model.report(TASK, bad_node, rng) == TASK.wrong_value

    def test_partial_evasion(self):
        model = SpotCheckEvading(ByzantineCollusion(), evasion=0.5)
        rng = random.Random(11)
        bad_node = node(reliability=0.0)
        spot_check = Task(task_id=-1)
        passes = sum(
            1 for _ in range(2000) if model.report(spot_check, bad_node, rng) is True
        )
        assert 850 < passes < 1150

    def test_validation(self):
        with pytest.raises(ValueError):
            SpotCheckEvading(ByzantineCollusion(), evasion=1.5)


class TestCorrelatedFailures:
    def test_same_cluster_same_task_fails_together(self):
        clusters = {i: 0 for i in range(10)}
        model = CorrelatedFailures(clusters, cluster_fault_prob=0.5)
        rng = random.Random(6)
        # Find a task where cluster 0 is faulted, then check every node
        # in the cluster fails identically.
        for task_id in range(100):
            task = Task(task_id=task_id)
            first = model.report(task, node(reliability=1.0, node_id=0), rng)
            if first == task.wrong_value:
                for node_id in range(1, 10):
                    value = model.report(
                        task, node(reliability=1.0, node_id=node_id), rng
                    )
                    assert value == task.wrong_value
                return
        pytest.fail("no faulted cluster event observed in 100 tasks")

    def test_unfaulted_cluster_uses_base_model(self):
        clusters = {0: 0}
        model = CorrelatedFailures(clusters, cluster_fault_prob=0.0)
        rng = random.Random(7)
        assert model.report(TASK, node(reliability=1.0), rng) is True

    def test_different_clusters_independent(self):
        clusters = {0: 0, 1: 1}
        model = CorrelatedFailures(clusters, cluster_fault_prob=0.5)
        rng = random.Random(8)
        outcomes = set()
        for task_id in range(200):
            task = Task(task_id=task_id)
            a = model.report(task, node(reliability=1.0, node_id=0), rng)
            b = model.report(task, node(reliability=1.0, node_id=1), rng)
            outcomes.add((a == task.wrong_value, b == task.wrong_value))
        # All four combinations appear: clusters fail independently.
        assert len(outcomes) == 4

    def test_prune_drops_memoised_events(self):
        clusters = {0: 0}
        model = CorrelatedFailures(clusters, cluster_fault_prob=0.5)
        rng = random.Random(9)
        model.report(TASK, node(reliability=1.0), rng)
        assert model._events
        model.prune(TASK.task_id)
        assert not model._events

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedFailures({}, cluster_fault_prob=1.0)
