# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Integration tests for the task server on small simulations."""

import pytest

from repro.core import (
    CredibilityManager,
    CredibilityStrategy,
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.dca import ByzantineCollusion, DcaConfig, DcaSimulation, run_dca
from repro.dca.node import Node


def run(strategy, **overrides):
    defaults = dict(strategy=strategy, tasks=50, nodes=20, reliability=0.7, seed=3)
    defaults.update(overrides)
    return run_dca(DcaConfig(**defaults))


class TestBasicOperation:
    def test_all_tasks_complete(self):
        report = run(TraditionalRedundancy(3))
        assert report.tasks_completed == 50

    def test_traditional_cost_is_exactly_k(self):
        report = run(TraditionalRedundancy(5))
        assert report.cost_factor == 5.0
        assert report.max_jobs_per_task == 5

    def test_progressive_never_exceeds_k_jobs(self):
        report = run(ProgressiveRedundancy(7), tasks=200)
        assert report.max_jobs_per_task <= 7
        assert report.cost_factor < 7.0

    def test_perfectly_reliable_pool_gives_perfect_reliability(self):
        report = run(IterativeRedundancy(2), reliability=1.0)
        assert report.system_reliability == 1.0
        # Unanimous first waves: exactly d jobs per task.
        assert report.cost_factor == 2.0
        assert report.mean_waves == 1.0

    def test_hostile_pool_gives_wrong_answers(self):
        report = run(IterativeRedundancy(2), reliability=0.0)
        assert report.system_reliability == 0.0

    def test_response_time_positive_and_bounded_by_makespan(self):
        report = run(IterativeRedundancy(3))
        assert 0 < report.mean_response_time <= report.max_response_time
        assert report.max_response_time <= report.makespan

    def test_duplicate_submit_rejected(self):
        simulation = DcaSimulation(DcaConfig(strategy=IterativeRedundancy(2), tasks=5, nodes=5))
        from repro.dca.workload import Task

        simulation.server.submit(Task(task_id=0))
        with pytest.raises(ValueError):
            simulation.server.submit(Task(task_id=0))

    def test_deterministic_given_seed(self):
        a = run(IterativeRedundancy(3), seed=11)
        b = run(IterativeRedundancy(3), seed=11)
        assert a.as_dict() == b.as_dict()

    def test_different_seeds_differ(self):
        a = run(IterativeRedundancy(3), seed=1, tasks=200)
        b = run(IterativeRedundancy(3), seed=2, tasks=200)
        assert a.records != b.records


class TestTimeouts:
    def test_unresponsive_jobs_time_out_and_are_replaced(self):
        report = run(
            TraditionalRedundancy(3),
            unresponsive_prob=0.2,
            tasks=100,
            timeout=5.0,
        )
        assert report.jobs_timed_out > 0
        assert report.tasks_completed == 100
        # Every verdict still rests on k actual responses.
        for record in report.records:
            assert record.jobs_used >= 3

    def test_fully_silent_pool_still_terminates_iterative(self):
        # Nodes alternate: silent with p=0.5; IR must still finish.
        report = run(
            IterativeRedundancy(2),
            unresponsive_prob=0.5,
            tasks=30,
            timeout=4.0,
        )
        assert report.tasks_completed == 30
        assert report.jobs_timed_out > 0


class TestSpotChecking:
    def test_spot_checks_issued_with_credibility_strategy(self):
        manager = CredibilityManager(assumed_fault_fraction=0.3)
        strategy = CredibilityStrategy(manager, target=0.95)
        report = run(strategy, spot_check_rate=0.2, tasks=100)
        assert report.spot_checks > 0
        assert report.tasks_completed == 100

    def test_spot_checks_are_pure_overhead(self):
        """Total dispatched jobs exceed the jobs counted against tasks."""
        manager = CredibilityManager(assumed_fault_fraction=0.3)
        strategy = CredibilityStrategy(manager, target=0.95)
        report = run(strategy, spot_check_rate=0.2, tasks=100)
        assert report.total_jobs_dispatched >= report.total_jobs + report.spot_checks

    def test_spot_checks_without_credibility_manager_are_overhead(self):
        """Plain strategies still divert spot-checks: pure overhead.

        The diverted jobs count in the dispatch totals but feed no
        reputation state and never perturb task verdicts.
        """
        report = run(IterativeRedundancy(3), spot_check_rate=0.5, tasks=20)
        assert report.spot_checks > 0
        assert report.tasks_completed == 20
        assert report.total_jobs_dispatched >= report.total_jobs + report.spot_checks

    def test_zero_rate_never_draws_the_spot_stream(self):
        baseline = run(IterativeRedundancy(3), tasks=20)
        explicit = run(IterativeRedundancy(3), spot_check_rate=0.0, tasks=20)
        assert baseline.to_json() == explicit.to_json()

    def test_bad_nodes_get_blacklisted(self):
        manager = CredibilityManager(assumed_fault_fraction=0.5)
        strategy = CredibilityStrategy(manager, target=0.9)
        run(strategy, spot_check_rate=0.3, reliability=0.3, tasks=200, seed=5)
        assert manager.blacklist_events > 0


class TestFollowupPriority:
    def test_priority_reduces_response_time(self):
        kwargs = dict(tasks=400, nodes=40, reliability=0.7, seed=9)
        fast = DcaSimulation(DcaConfig(strategy=IterativeRedundancy(4), **kwargs))
        fast.server.prioritize_followups = True
        slow = DcaSimulation(DcaConfig(strategy=IterativeRedundancy(4), **kwargs))
        slow.server.prioritize_followups = False
        fast_report = fast.run()
        slow_report = slow.run()
        assert fast_report.mean_response_time < slow_report.mean_response_time

    def test_fifo_mode_still_completes_everything(self):
        simulation = DcaSimulation(
            DcaConfig(strategy=ProgressiveRedundancy(5), tasks=100, nodes=10, seed=4)
        )
        simulation.server.prioritize_followups = False
        report = simulation.run()
        assert report.tasks_completed == 100
