"""Unit and property tests for the node pool."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dca.node import Node
from repro.dca.pool import NodePool


def make_pool(n):
    pool = NodePool()
    for _ in range(n):
        pool.join(Node(node_id=pool.allocate_id(), reliability=0.7))
    return pool


class TestMembership:
    def test_join_and_len(self):
        pool = make_pool(5)
        assert len(pool) == 5
        assert pool.available_count == 5

    def test_duplicate_join_rejected(self):
        pool = NodePool()
        node = Node(node_id=0, reliability=0.7)
        pool.join(node)
        with pytest.raises(ValueError):
            pool.join(node)

    def test_leave_removes_and_kills(self):
        pool = make_pool(3)
        node = pool.get(1)
        left = pool.leave(1)
        assert left is node
        assert not node.alive
        assert len(pool) == 2
        assert pool.available_count == 2
        assert pool.get(1) is None

    def test_leave_unknown_returns_none(self):
        assert make_pool(1).leave(99) is None

    def test_allocate_id_monotone(self):
        pool = NodePool()
        ids = [pool.allocate_id() for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_churn_counters(self):
        pool = make_pool(2)
        pool.leave(0)
        assert pool.joins == 2
        assert pool.departures == 1


class TestAcquisition:
    def test_acquire_marks_busy(self):
        pool = make_pool(3)
        rng = random.Random(0)
        node = pool.acquire_random(rng)
        assert node.busy
        assert pool.available_count == 2

    def test_acquire_exhausts_pool(self):
        pool = make_pool(2)
        rng = random.Random(0)
        assert pool.acquire_random(rng) is not None
        assert pool.acquire_random(rng) is not None
        assert pool.acquire_random(rng) is None

    def test_release_returns_to_available(self):
        pool = make_pool(1)
        rng = random.Random(0)
        node = pool.acquire_random(rng)
        pool.release(node)
        assert pool.available_count == 1
        assert pool.acquire_random(rng) is node

    def test_release_of_departed_node_not_reavailable(self):
        pool = make_pool(2)
        rng = random.Random(0)
        node = pool.acquire_random(rng)
        pool.leave(node.node_id)
        pool.release(node)
        assert pool.available_count == 1
        # The departed node must never be handed out again.
        remaining = pool.acquire_random(rng)
        assert remaining is not node

    def test_busy_node_not_removed_from_pool_count_on_leave(self):
        pool = make_pool(2)
        rng = random.Random(0)
        node = pool.acquire_random(rng)
        pool.leave(node.node_id)
        assert len(pool) == 1

    def test_selection_is_roughly_uniform(self):
        pool = make_pool(10)
        rng = random.Random(42)
        counts = {}
        for _ in range(10_000):
            node = pool.acquire_random(rng)
            counts[node.node_id] = counts.get(node.node_id, 0) + 1
            pool.release(node)
        assert len(counts) == 10
        for count in counts.values():
            assert 800 < count < 1200  # ~1000 each

    def test_random_alive_includes_busy(self):
        pool = make_pool(2)
        rng = random.Random(0)
        busy = pool.acquire_random(rng)
        seen = {pool.random_alive(rng).node_id for _ in range(100)}
        assert busy.node_id in seen


@given(st.lists(st.sampled_from(["join", "acquire", "release", "leave"]), max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_pool_invariants(ops):
    """Under arbitrary operation sequences, the available set always holds
    exactly the alive, non-busy members."""
    pool = NodePool()
    rng = random.Random(7)
    held = []
    for op in ops:
        if op == "join":
            pool.join(Node(node_id=pool.allocate_id(), reliability=0.5))
        elif op == "acquire":
            node = pool.acquire_random(rng)
            if node is not None:
                held.append(node)
        elif op == "release" and held:
            pool.release(held.pop())
        elif op == "leave" and len(pool) > 0:
            node = pool.random_alive(rng)
            pool.leave(node.node_id)
            held = [h for h in held if h.node_id != node.node_id]
    expected_available = sum(1 for node in pool if node.available)
    assert pool.available_count == expected_available
    acquired_ids = set()
    while True:
        node = pool.acquire_random(rng)
        if node is None:
            break
        assert node.alive and node.busy
        assert node.node_id not in acquired_ids
        acquired_ids.add(node.node_id)
