# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for DcaConfig validation and the workload generator."""

import pytest

from repro.core import IterativeRedundancy
from repro.core.distributions import BetaReliability, FixedReliability
from repro.dca.config import DcaConfig
from repro.dca.workload import Task, Workload


def config(**overrides):
    defaults = dict(strategy=IterativeRedundancy(3), tasks=10, nodes=5)
    defaults.update(overrides)
    return DcaConfig(**defaults)


class TestDcaConfig:
    def test_defaults_match_paper_setup(self):
        c = config()
        assert c.duration_low == 0.5
        assert c.duration_high == 1.5
        assert c.reliability == 0.7

    def test_float_reliability_becomes_fixed_distribution(self):
        c = config(reliability=0.8)
        dist = c.reliability_distribution
        assert isinstance(dist, FixedReliability)
        assert dist.mean() == 0.8

    def test_distribution_passes_through(self):
        dist = BetaReliability.with_mean(0.7)
        assert config(reliability=dist).reliability_distribution is dist

    def test_effective_timeout_default(self):
        c = config()
        assert c.effective_timeout == pytest.approx(10.0 * 1.5)

    def test_effective_timeout_respects_speed_spread(self):
        c = config(speed_spread=0.5)
        assert c.effective_timeout == pytest.approx(10.0 * 1.5 * 1.5)

    def test_explicit_timeout_wins(self):
        assert config(timeout=99.0).effective_timeout == 99.0

    @pytest.mark.parametrize(
        "bad",
        [
            dict(tasks=0),
            dict(nodes=0),
            dict(duration_low=0.0),
            dict(duration_low=2.0, duration_high=1.0),
            dict(unresponsive_prob=1.0),
            dict(speed_spread=1.0),
            dict(arrival_rate=-1.0),
            dict(spot_check_rate=-0.1),
            dict(deadline_factor=1.0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            config(**bad)


class TestWorkload:
    def test_generates_requested_count(self):
        tasks = list(Workload(7).tasks())
        assert len(tasks) == 7
        assert [t.task_id for t in tasks] == list(range(7))

    def test_binary_values(self):
        task = next(Workload(1).tasks())
        assert task.true_value is True
        assert task.wrong_value is False

    def test_needs_positive_count(self):
        with pytest.raises(ValueError):
            Workload(0)

    def test_task_values_must_differ(self):
        with pytest.raises(ValueError):
            Task(task_id=0, true_value="x", wrong_value="x")
