# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""System-level tests: simulation vs closed forms, churn, correlated
failures, heterogeneous pools."""

import pytest

from repro.core import (
    IterativeRedundancy,
    NoRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
    analysis,
)
from repro.core.distributions import BetaReliability, TwoClassReliability
from repro.dca import CorrelatedFailures, DcaConfig, NonColludingFailures, run_dca


def run(strategy, **overrides):
    defaults = dict(strategy=strategy, tasks=4000, nodes=400, reliability=0.7, seed=21)
    defaults.update(overrides)
    return run_dca(DcaConfig(**defaults))


class TestAgreementWithClosedForms:
    """The simulation is an independent implementation; it must agree with
    Equations (1)-(6) within sampling error."""

    def test_traditional(self):
        report = run(TraditionalRedundancy(9))
        assert report.cost_factor == 9.0
        assert report.system_reliability == pytest.approx(
            analysis.traditional_reliability(0.7, 9), abs=0.02
        )

    def test_progressive(self):
        report = run(ProgressiveRedundancy(9))
        assert report.cost_factor == pytest.approx(
            analysis.progressive_cost(0.7, 9), rel=0.03
        )
        assert report.system_reliability == pytest.approx(
            analysis.progressive_reliability(0.7, 9), abs=0.02
        )

    def test_iterative(self):
        report = run(IterativeRedundancy(4))
        assert report.cost_factor == pytest.approx(
            analysis.iterative_cost(0.7, 4), rel=0.03
        )
        assert report.system_reliability == pytest.approx(
            analysis.iterative_reliability(0.7, 4), abs=0.02
        )

    def test_no_redundancy_reliability_is_r(self):
        report = run(NoRedundancy())
        assert report.cost_factor == 1.0
        assert report.system_reliability == pytest.approx(0.7, abs=0.02)

    def test_iterative_beats_progressive_beats_traditional(self):
        """The headline ordering at comparable cost (r = 0.7)."""
        tr = run(TraditionalRedundancy(9))
        pr = run(ProgressiveRedundancy(13))  # cost ~9.9
        ir = run(IterativeRedundancy(4))  # cost ~9.3
        assert pr.cost_factor < tr.cost_factor + 1.5
        assert ir.cost_factor < tr.cost_factor + 1.5
        assert ir.system_reliability > pr.system_reliability > tr.system_reliability


class TestChurn:
    def test_simulation_survives_heavy_churn(self):
        report = run(
            IterativeRedundancy(3),
            tasks=500,
            nodes=50,
            arrival_rate=2.0,
            departure_rate=2.0,
        )
        assert report.tasks_completed == 500
        assert report.nodes_joined > 0
        assert report.nodes_departed > 0

    def test_departing_nodes_lose_inflight_jobs(self):
        report = run(
            TraditionalRedundancy(3),
            tasks=300,
            nodes=30,
            departure_rate=3.0,
            arrival_rate=3.0,
            timeout=4.0,
        )
        assert report.jobs_timed_out > 0
        assert report.tasks_completed == 300

    def test_reliability_unaffected_by_churn(self):
        """Churn replaces nodes with same-distribution nodes, so system
        reliability should stay near the closed form."""
        report = run(
            IterativeRedundancy(4),
            tasks=2000,
            nodes=200,
            arrival_rate=1.0,
            departure_rate=1.0,
        )
        assert report.system_reliability == pytest.approx(
            analysis.iterative_reliability(0.7, 4), abs=0.03
        )


class TestHeterogeneousPools:
    def test_beta_pool_matches_mean_reliability_analysis(self):
        """Section 5.3: with random assignment, per-job failure probability
        is the pool mean, so the homogeneous analysis applies."""
        dist = BetaReliability.with_mean(0.7, concentration=8.0)
        report = run(IterativeRedundancy(4), reliability=dist, tasks=3000)
        assert report.system_reliability == pytest.approx(
            analysis.iterative_reliability(0.7, 4), abs=0.03
        )

    def test_two_class_pool(self):
        dist = TwoClassReliability(good_r=0.95, faulty_r=0.0, faulty_fraction=0.25)
        report = run(TraditionalRedundancy(5), reliability=dist, tasks=2000)
        expected = analysis.traditional_reliability(dist.mean(), 5)
        assert report.system_reliability == pytest.approx(expected, abs=0.03)


class TestNonBinaryResults:
    def test_noncolluding_failures_boost_traditional_reliability(self):
        """Section 5.3: the binary colluding model is the worst case; with
        diverse wrong values the same k yields higher reliability."""
        colluding = run(TraditionalRedundancy(5), tasks=3000)
        diverse = run(
            TraditionalRedundancy(5),
            tasks=3000,
            failure_model=NonColludingFailures(),
        )
        assert diverse.system_reliability > colluding.system_reliability

    def test_noncolluding_helps_iterative_too(self):
        colluding = run(IterativeRedundancy(3), tasks=3000)
        diverse = run(
            IterativeRedundancy(3),
            tasks=3000,
            failure_model=NonColludingFailures(),
        )
        assert diverse.system_reliability >= colluding.system_reliability
        # Diverse wrong values also close votes faster (margin grows
        # against a scattered opposition), so cost cannot be worse.
        assert diverse.cost_factor <= colluding.cost_factor + 0.1


class TestCorrelatedFailures:
    def test_correlated_failures_hurt_reliability(self):
        """Whole-cluster faults defeat redundancy more often than
        independent faults of the same average rate."""
        clusters = {i: i % 4 for i in range(400)}
        correlated = run(
            TraditionalRedundancy(5),
            tasks=2000,
            failure_model=CorrelatedFailures(clusters, cluster_fault_prob=0.15),
            reliability=0.85,
        )
        independent = run(TraditionalRedundancy(5), tasks=2000, reliability=0.85 * 0.85)
        # Average per-job reliability is comparable (~0.72 both), but the
        # correlated system fails more tasks.
        assert correlated.system_reliability < independent.system_reliability


class TestReportShape:
    def test_summary_contains_section_41_measures(self):
        report = run(IterativeRedundancy(2), tasks=50, nodes=20)
        text = report.summary()
        for needle in (
            "time to complete",
            "total jobs",
            "avg jobs per task",
            "max jobs for any task",
            "tasks correct",
            "avg response time",
            "max response time",
        ):
            assert needle in text

    def test_confidence_interval_brackets_reliability(self):
        report = run(IterativeRedundancy(3), tasks=500)
        lo, hi = report.reliability_confidence_interval()
        assert lo <= report.system_reliability <= hi

    def test_as_dict_keys(self):
        report = run(IterativeRedundancy(2), tasks=20)
        d = report.as_dict()
        assert set(d) >= {"strategy", "reliability", "cost_factor", "mean_response_time"}
