"""Determinism regression: same-seed runs replay byte-identically for
every headline policy; a different seed actually changes the run (guards
against an accidentally hard-coded seed anywhere in the stack)."""

import pytest

from repro.core import (
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.dca.config import DcaConfig
from repro.lint.sanitizer import dca_runner, trace_fingerprint

POLICIES = [
    pytest.param(lambda: IterativeRedundancy(4), id="iterative"),
    pytest.param(lambda: ProgressiveRedundancy(5), id="progressive"),
    pytest.param(lambda: TraditionalRedundancy(3), id="traditional"),
]


def capture(strategy_factory, seed):
    config = DcaConfig(
        strategy=strategy_factory(),
        tasks=150,
        nodes=30,
        reliability=0.7,
        seed=seed,
        arrival_rate=0.5,
        departure_rate=0.5,
    )
    return dca_runner(config)()


@pytest.mark.parametrize("strategy_factory", POLICIES)
def test_same_seed_replays_byte_identically(strategy_factory):
    events_a, metrics_a = capture(strategy_factory, seed=123)
    events_b, metrics_b = capture(strategy_factory, seed=123)
    fingerprint_a = trace_fingerprint(events_a).encode("utf-8")
    fingerprint_b = trace_fingerprint(events_b).encode("utf-8")
    assert fingerprint_a == fingerprint_b
    assert metrics_a == metrics_b


@pytest.mark.parametrize("strategy_factory", POLICIES)
def test_different_seed_diverges(strategy_factory):
    baseline = trace_fingerprint(capture(strategy_factory, seed=123)[0])
    other = trace_fingerprint(capture(strategy_factory, seed=124)[0])
    assert baseline != other
