# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for report aggregation and JSON persistence."""

import math

import pytest

from repro.dca.report import DcaReport, TaskRecord


def record(task_id=0, correct=True, jobs=3, waves=1, response=1.0):
    return TaskRecord(
        task_id=task_id,
        value=correct,
        correct=correct,
        jobs_used=jobs,
        waves=waves,
        response_time=response,
        turnaround=response + 0.5,
    )


def sample_report():
    return DcaReport(
        strategy="iterative(d=3)",
        tasks_submitted=3,
        records=[
            record(0, correct=True, jobs=3, response=1.0),
            record(1, correct=False, jobs=7, waves=3, response=4.0),
            record(2, correct=True, jobs=5, waves=2, response=2.5),
        ],
        makespan=10.0,
        total_jobs_dispatched=15,
        jobs_timed_out=1,
        seed=42,
    )


class TestAggregation:
    def test_section_41_measures(self):
        report = sample_report()
        assert report.tasks_completed == 3
        assert report.tasks_correct == 2
        assert report.system_reliability == pytest.approx(2 / 3)
        assert report.total_jobs == 15
        assert report.cost_factor == pytest.approx(5.0)
        assert report.max_jobs_per_task == 7
        assert report.mean_response_time == pytest.approx(2.5)
        assert report.max_response_time == 4.0
        assert report.mean_waves == pytest.approx(2.0)

    def test_empty_report_nans(self):
        report = DcaReport(strategy="x", tasks_submitted=0)
        assert math.isnan(report.system_reliability)
        assert math.isnan(report.cost_factor)
        assert math.isnan(report.mean_response_time)
        assert report.max_jobs_per_task == 0

    def test_confidence_interval_needs_two_records(self):
        report = DcaReport(strategy="x", tasks_submitted=1, records=[record()])
        lo, hi = report.reliability_confidence_interval()
        assert math.isnan(lo) and math.isnan(hi)

    def test_confidence_interval_clamped(self):
        report = DcaReport(
            strategy="x",
            tasks_submitted=5,
            records=[record(i, correct=True) for i in range(5)],
        )
        lo, hi = report.reliability_confidence_interval()
        assert 0.0 <= lo <= 1.0
        assert hi == 1.0


class TestPersistence:
    def test_round_trip(self):
        report = sample_report()
        clone = DcaReport.from_json(report.to_json())
        assert clone.as_dict() == report.as_dict()
        assert clone.records == report.records
        assert clone.seed == 42
        assert clone.jobs_timed_out == 1

    def test_records_optional(self):
        report = sample_report()
        slim = DcaReport.from_json(report.to_json(include_records=False))
        assert slim.records == []
        assert slim.tasks_submitted == 3

    def test_json_is_stable_text(self):
        report = sample_report()
        assert report.to_json() == report.to_json()

    def test_real_run_round_trips(self):
        from repro.core import IterativeRedundancy
        from repro.dca import DcaConfig, run_dca

        report = run_dca(
            DcaConfig(strategy=IterativeRedundancy(2), tasks=30, nodes=10, seed=3)
        )
        clone = DcaReport.from_json(report.to_json())
        assert clone.system_reliability == report.system_reliability
        assert clone.cost_factor == report.cost_factor
