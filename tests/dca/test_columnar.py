# reprolint: disable-file=RL003 -- determinism tests assert byte-exact equality on purpose
"""Tests for the columnar batch engine (:mod:`repro.dca.columnar`).

The engine trades the object DES for struct-of-arrays wave batching, so
it cannot be byte-identical to :func:`run_dca` -- but it must be (a)
deterministic given the seed, (b) statistically indistinguishable from
the DES on the paper's measures, (c) honest about the regime it
supports, and (d) faithful to the strategies' decide() semantics (the
vectorized deciders are cross-checked against the per-task
``VoteState`` fallback).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core import (
    ComplexIterativeRedundancy,
    CredibilityManager,
    CredibilityStrategy,
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.core.distributions import BetaReliability
from repro.dca import (
    ByzantineCollusion,
    ColumnarUnsupported,
    DcaConfig,
    NonColludingFailures,
    run_columnar_dca,
    run_dca,
)
from repro.dca.columnar import _DECIDERS, _decide_fallback
from repro.obs import TelemetryRecorder


def _config(strategy, **overrides):
    params = dict(tasks=2_000, nodes=300, reliability=0.7, seed=17)
    params.update(overrides)
    return DcaConfig(strategy=strategy, **params)


class TestDeterminism:
    def test_same_seed_same_report(self):
        first = run_columnar_dca(_config(IterativeRedundancy(3)))
        second = run_columnar_dca(_config(IterativeRedundancy(3)))
        assert first == second
        assert first.as_dict() == second.as_dict()

    def test_different_seeds_differ(self):
        first = run_columnar_dca(_config(IterativeRedundancy(3), seed=1))
        second = run_columnar_dca(_config(IterativeRedundancy(3), seed=2))
        assert first.as_dict() != second.as_dict()

    def test_heterogeneous_pool_is_deterministic(self):
        config = _config(
            IterativeRedundancy(3),
            reliability=BetaReliability.with_mean(0.7),
            speed_spread=0.5,
        )
        assert run_columnar_dca(config) == run_columnar_dca(config)


class TestCrossValidation:
    """The engine must agree with the DES on the paper's measures.

    Tolerances are a few standard errors at these sizes; both runs are
    seeded, so the assertion is deterministic (no flakes) -- it would
    only move if either engine's semantics changed.
    """

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: IterativeRedundancy(3),
            lambda: ProgressiveRedundancy(7),
            lambda: TraditionalRedundancy(7),
            lambda: ComplexIterativeRedundancy(0.7, 0.95),
        ],
    )
    def test_matches_des_statistically(self, strategy_factory):
        columnar = run_columnar_dca(_config(strategy_factory(), tasks=4_000))
        des = run_dca(_config(strategy_factory(), tasks=4_000))
        assert columnar.system_reliability == pytest.approx(
            des.system_reliability, abs=0.02
        )
        assert columnar.cost_factor == pytest.approx(des.cost_factor, rel=0.05)
        assert columnar.as_dict()["mean_waves"] == pytest.approx(
            des.as_dict()["mean_waves"], rel=0.05
        )

    def test_report_dict_keys_match_des(self):
        columnar = run_columnar_dca(_config(IterativeRedundancy(3)))
        des = run_dca(_config(IterativeRedundancy(3)))
        assert set(columnar.as_dict()) == set(des.as_dict())


class TestDeciderEquivalence:
    """Vectorized deciders == per-task VoteState/decide() fallback."""

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: IterativeRedundancy(3),
            lambda: ProgressiveRedundancy(7),
            lambda: TraditionalRedundancy(7),
            lambda: ComplexIterativeRedundancy(0.7, 0.95),
        ],
    )
    def test_vectorized_matches_fallback(self, strategy_factory):
        strategy = strategy_factory()
        decider = _DECIDERS[type(strategy)]
        rng = np.random.default_rng(5)
        a = rng.integers(0, 9, size=500)
        b = rng.integers(0, 9, size=500)
        fast_accept, fast_value, fast_more = decider(strategy, a, b)
        slow_accept, slow_value, slow_more = _decide_fallback(strategy, a, b)
        # The engine consumes value only where accepted and more only
        # where not; outside those masks the columns are don't-cares.
        assert np.array_equal(np.asarray(fast_accept), slow_accept)
        accept = slow_accept
        assert np.array_equal(np.asarray(fast_value)[accept], slow_value[accept])
        assert np.array_equal(
            np.asarray(fast_more)[~accept], slow_more[~accept]
        )


class TestSupportedRegime:
    def test_rejects_churn(self):
        with pytest.raises(ColumnarUnsupported, match="churn"):
            run_columnar_dca(_config(IterativeRedundancy(3), arrival_rate=0.5))

    def test_rejects_spot_checks(self):
        with pytest.raises(ColumnarUnsupported, match="spot-check"):
            run_columnar_dca(_config(IterativeRedundancy(3), spot_check_rate=0.1))

    def test_rejects_max_time(self):
        with pytest.raises(ColumnarUnsupported, match="max_time"):
            run_columnar_dca(_config(IterativeRedundancy(3), max_time=100.0))

    def test_rejects_non_colluding_failures(self):
        with pytest.raises(ColumnarUnsupported, match="colluding"):
            run_columnar_dca(
                _config(
                    IterativeRedundancy(3),
                    failure_model=NonColludingFailures(value_space=8),
                )
            )

    def test_rejects_node_aware_strategies(self):
        with pytest.raises(ColumnarUnsupported, match="node-aware"):
            run_columnar_dca(_config(CredibilityStrategy(CredibilityManager())))

    def test_accepts_byzantine_collusion(self):
        report = run_columnar_dca(
            _config(
                IterativeRedundancy(3),
                failure_model=ByzantineCollusion(),
                unresponsive_prob=0.1,
                timeout=1.2,
            )
        )
        assert report.tasks_submitted == 2_000
        assert report.jobs_timed_out > 0


class TestEdgeRegimes:
    """Edge regimes stay inside the engine's contract: the vectorized
    decider path and the per-task ``_decide_fallback`` path must
    produce byte-identical reports (popping the strategy from
    ``_DECIDERS`` forces the fallback), and the boundary RL305 reasons
    about statically (configs the engine must reject) is enforced at
    runtime -- ``TestSupportedRegime`` exercises every ``_validate``
    branch, matching the linter's reachability claim."""

    def _fallback_identical(self, monkeypatch, config):
        fast = run_columnar_dca(config)
        monkeypatch.delitem(_DECIDERS, type(config.strategy))
        assert type(config.strategy) not in _DECIDERS
        slow = run_columnar_dca(config)
        assert fast == slow
        assert fast.as_dict() == slow.as_dict()
        return fast

    def test_zero_tasks_rejected_at_config(self):
        # The zero-task regime is rejected before either engine runs;
        # the report aggregations therefore never see empty columns.
        with pytest.raises(ValueError, match="task"):
            _config(IterativeRedundancy(3), tasks=0)

    def test_single_node_pool(self, monkeypatch):
        config = _config(
            IterativeRedundancy(3),
            tasks=200,
            nodes=1,
            reliability=BetaReliability.with_mean(0.7),
            speed_spread=0.3,
        )
        report = self._fallback_identical(monkeypatch, config)
        assert report.tasks_completed == 200

    def test_all_silent_heavy_wave(self, monkeypatch):
        config = _config(
            IterativeRedundancy(3),
            tasks=200,
            unresponsive_prob=0.95,
            timeout=1.2,
        )
        report = self._fallback_identical(monkeypatch, config)
        assert report.jobs_timed_out > 0
        assert report.tasks_completed == 200

    def test_initial_jobs_exceed_pool(self, monkeypatch):
        # initial_jobs() of 7 against a 2-node pool: the contention-free
        # pool model re-uses nodes within a wave rather than starving.
        config = _config(IterativeRedundancy(7), tasks=100, nodes=2)
        report = self._fallback_identical(monkeypatch, config)
        assert report.max_jobs_per_task >= 7


class TestReportAndTelemetry:
    def test_summary_mentions_strategy(self):
        report = run_columnar_dca(_config(IterativeRedundancy(3)))
        assert "iterative" in report.summary()

    def test_recorder_receives_aggregates(self):
        recorder = TelemetryRecorder()
        report = run_columnar_dca(_config(IterativeRedundancy(3)), recorder=recorder)
        payload = recorder.as_payload()
        assert payload["metrics"]
        assert report.total_jobs > report.tasks_submitted

    def test_recorder_does_not_perturb_results(self):
        bare = run_columnar_dca(_config(IterativeRedundancy(3)))
        recorded = run_columnar_dca(
            _config(IterativeRedundancy(3)), recorder=TelemetryRecorder()
        )
        assert bare == recorded
