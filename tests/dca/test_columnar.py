# reprolint: disable-file=RL003 -- determinism tests assert byte-exact equality on purpose
"""Tests for the columnar batch engine (:mod:`repro.dca.columnar`).

The engine trades the object DES for struct-of-arrays wave batching, so
it cannot be byte-identical to :func:`run_dca` -- but it must be (a)
deterministic given the seed, (b) statistically indistinguishable from
the DES on the paper's measures, (c) honest about the regime it
supports, and (d) faithful to the strategies' decide() semantics (the
vectorized deciders are cross-checked against the per-task
``VoteState`` fallback).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core import (
    ComplexIterativeRedundancy,
    CredibilityManager,
    CredibilityStrategy,
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.core.distributions import BetaReliability
from repro.dca import (
    ByzantineCollusion,
    ColumnarUnsupported,
    DcaConfig,
    NonColludingFailures,
    run_columnar_dca,
    run_columnar_dca_columns,
    run_dca,
)
from repro.dca.columnar import (
    _DECIDERS,
    _KERNEL_FALLBACKS,
    _KERNELS,
    _decide_fallback,
)
from repro.obs import TelemetryRecorder


def _config(strategy, **overrides):
    params = dict(tasks=2_000, nodes=300, reliability=0.7, seed=17)
    params.update(overrides)
    return DcaConfig(strategy=strategy, **params)


def _kernel_cross_check(monkeypatch, config):
    """Vectorised kernels vs scalar fallbacks: byte-identical reports.

    Both implementations consume the same pre-drawn arrays (the decider
    cross-check pattern), so equality here is exact, not statistical.
    """
    fast = run_columnar_dca(config)
    for name, fallback in _KERNEL_FALLBACKS.items():
        monkeypatch.setitem(_KERNELS, name, fallback)
    slow = run_columnar_dca(config)
    assert fast == slow
    assert fast.as_dict() == slow.as_dict()
    return fast


class TestDeterminism:
    def test_same_seed_same_report(self):
        first = run_columnar_dca(_config(IterativeRedundancy(3)))
        second = run_columnar_dca(_config(IterativeRedundancy(3)))
        assert first == second
        assert first.as_dict() == second.as_dict()

    def test_different_seeds_differ(self):
        first = run_columnar_dca(_config(IterativeRedundancy(3), seed=1))
        second = run_columnar_dca(_config(IterativeRedundancy(3), seed=2))
        assert first.as_dict() != second.as_dict()

    def test_heterogeneous_pool_is_deterministic(self):
        config = _config(
            IterativeRedundancy(3),
            reliability=BetaReliability.with_mean(0.7),
            speed_spread=0.5,
        )
        assert run_columnar_dca(config) == run_columnar_dca(config)


class TestCrossValidation:
    """The engine must agree with the DES on the paper's measures.

    Tolerances are a few standard errors at these sizes; both runs are
    seeded, so the assertion is deterministic (no flakes) -- it would
    only move if either engine's semantics changed.
    """

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: IterativeRedundancy(3),
            lambda: ProgressiveRedundancy(7),
            lambda: TraditionalRedundancy(7),
            lambda: ComplexIterativeRedundancy(0.7, 0.95),
        ],
    )
    def test_matches_des_statistically(self, strategy_factory):
        columnar = run_columnar_dca(_config(strategy_factory(), tasks=4_000))
        des = run_dca(_config(strategy_factory(), tasks=4_000))
        assert columnar.system_reliability == pytest.approx(
            des.system_reliability, abs=0.02
        )
        assert columnar.cost_factor == pytest.approx(des.cost_factor, rel=0.05)
        assert columnar.as_dict()["mean_waves"] == pytest.approx(
            des.as_dict()["mean_waves"], rel=0.05
        )

    def test_report_dict_keys_match_des(self):
        columnar = run_columnar_dca(_config(IterativeRedundancy(3)))
        des = run_dca(_config(IterativeRedundancy(3)))
        assert set(columnar.as_dict()) == set(des.as_dict())


class TestDeciderEquivalence:
    """Vectorized deciders == per-task VoteState/decide() fallback."""

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: IterativeRedundancy(3),
            lambda: ProgressiveRedundancy(7),
            lambda: TraditionalRedundancy(7),
            lambda: ComplexIterativeRedundancy(0.7, 0.95),
        ],
    )
    def test_vectorized_matches_fallback(self, strategy_factory):
        strategy = strategy_factory()
        decider = _DECIDERS[type(strategy)]
        rng = np.random.default_rng(5)
        a = rng.integers(0, 9, size=500)
        b = rng.integers(0, 9, size=500)
        fast_accept, fast_value, fast_more = decider(strategy, a, b)
        slow_accept, slow_value, slow_more = _decide_fallback(strategy, a, b)
        # The engine consumes value only where accepted and more only
        # where not; outside those masks the columns are don't-cares.
        assert np.array_equal(np.asarray(fast_accept), slow_accept)
        accept = slow_accept
        assert np.array_equal(np.asarray(fast_value)[accept], slow_value[accept])
        assert np.array_equal(
            np.asarray(fast_more)[~accept], slow_more[~accept]
        )


class TestSupportedRegime:
    def test_rejects_non_colluding_failures(self):
        with pytest.raises(ColumnarUnsupported, match="colluding"):
            run_columnar_dca(
                _config(
                    IterativeRedundancy(3),
                    failure_model=NonColludingFailures(value_space=8),
                )
            )

    def test_rejects_node_aware_strategies(self):
        with pytest.raises(ColumnarUnsupported, match="node-aware"):
            run_columnar_dca(_config(CredibilityStrategy(CredibilityManager())))

    def test_accepts_byzantine_collusion(self):
        report = run_columnar_dca(
            _config(
                IterativeRedundancy(3),
                failure_model=ByzantineCollusion(),
                unresponsive_prob=0.1,
                timeout=1.2,
            )
        )
        assert report.tasks_submitted == 2_000
        assert report.jobs_timed_out > 0


class TestChurnRegime:
    """Wave-boundary churn: statistically the DES's continuous churn."""

    def _config(self, **overrides):
        params = dict(
            tasks=2_000,
            nodes=400,
            arrival_rate=2.0,
            departure_rate=2.0,
            unresponsive_prob=0.1,
            seed=7,
        )
        params.update(overrides)
        return _config(IterativeRedundancy(3), **params)

    def test_deterministic_and_counts_churn(self):
        first = run_columnar_dca(self._config())
        second = run_columnar_dca(self._config())
        assert first == second
        assert first.nodes_joined > 0
        assert first.nodes_departed > 0

    def test_kernels_match_scalar_fallbacks(self, monkeypatch):
        report = _kernel_cross_check(monkeypatch, self._config(tasks=400))
        assert report.nodes_joined > 0

    def test_matches_des_statistically(self):
        # Reliability, cost, and wave counts are contention-insensitive
        # (assumption 1: contention delays *when* jobs run, not what they
        # report).  Makespans differ under contention -- the DES queues
        # on the 400-node pool -- so the churn *totals* differ too; what
        # must match is the churn flux per unit of simulated time.
        columnar = run_columnar_dca(self._config())
        des = run_dca(self._config())
        assert columnar.system_reliability == pytest.approx(
            des.system_reliability, abs=0.03
        )
        assert columnar.cost_factor == pytest.approx(des.cost_factor, rel=0.05)
        assert columnar.as_dict()["mean_waves"] == pytest.approx(
            des.as_dict()["mean_waves"], rel=0.05
        )
        for report in (columnar, des):
            assert report.nodes_joined / report.makespan == pytest.approx(2.0, rel=0.3)
            assert report.nodes_departed / report.makespan == pytest.approx(
                2.0, rel=0.3
            )

    def test_churn_streams_do_not_perturb_legacy_draws(self):
        # Spawn seeds are stateless name hashes: a no-churn run after the
        # churn feature landed draws exactly what it drew before it.
        baseline = run_columnar_dca(_config(IterativeRedundancy(3)))
        explicit = run_columnar_dca(
            _config(IterativeRedundancy(3), arrival_rate=0.0, departure_rate=0.0)
        )
        assert baseline == explicit

    def test_heterogeneous_churn_pool(self):
        config = self._config(
            tasks=400,
            reliability=BetaReliability.with_mean(0.7),
            speed_spread=0.4,
        )
        assert run_columnar_dca(config) == run_columnar_dca(config)


class TestSpotCheckRegime:
    """Spot-check diversion and per-node tallies, taskserver semantics."""

    def _config(self, **overrides):
        params = dict(tasks=2_000, nodes=300, spot_check_rate=0.2, seed=11)
        params.update(overrides)
        return _config(IterativeRedundancy(3), **params)

    def test_deterministic_and_counts_checks(self):
        first = run_columnar_dca(self._config())
        second = run_columnar_dca(self._config())
        assert first == second
        assert first.spot_checks > 0
        # reliability 0.7: plenty of failed checks -> blacklist entries
        assert 0 < first.nodes_blacklisted <= 300

    def test_kernels_match_scalar_fallbacks(self, monkeypatch):
        report = _kernel_cross_check(monkeypatch, self._config(tasks=400))
        assert report.spot_checks > 0

    def test_spot_stream_does_not_perturb_task_outcomes(self):
        # All spot draws come from the dedicated stream, so enabling
        # spot-checks changes overhead counters but no task verdict.
        baseline = run_columnar_dca(_config(IterativeRedundancy(3)))
        spotted = run_columnar_dca(self._config(seed=17, spot_check_rate=0.3))
        assert spotted.tasks_correct == baseline.tasks_correct
        assert spotted.total_jobs == baseline.total_jobs
        assert spotted.mean_response_time == baseline.mean_response_time

    def test_zero_rate_never_draws_the_spot_stream(self):
        baseline = run_columnar_dca(_config(IterativeRedundancy(3)))
        explicit = run_columnar_dca(_config(IterativeRedundancy(3), spot_check_rate=0.0))
        assert baseline == explicit

    def test_matches_des_statistically(self):
        # Contention-free sizing (nodes >> concurrent jobs): the DES's
        # queueing delays vanish and the engines are comparable on all
        # measures, including the spot-check volume.
        config = dict(tasks=400, nodes=6_000, spot_check_rate=0.2, seed=11)
        columnar = run_columnar_dca(self._config(**config))
        des = run_dca(self._config(**config))
        assert columnar.system_reliability == pytest.approx(
            des.system_reliability, abs=0.05
        )
        assert columnar.cost_factor == pytest.approx(des.cost_factor, rel=0.1)
        assert columnar.spot_checks == pytest.approx(des.spot_checks, rel=0.2)

    def test_tally_matches_credibility_manager_replay(self):
        # The column tallies are the exact analogue of one
        # CredibilityManager.spot_check call per check.
        rng = np.random.default_rng(3)
        ids = rng.integers(0, 40, size=500).astype(np.int64)
        passed = rng.random(500) < 0.8
        passes = np.zeros(40, dtype=np.int64)
        fails = np.zeros(40, dtype=np.int64)
        _KERNELS["spot_tally"](ids, passed, passes, fails)
        manager = CredibilityManager()
        for node_id, ok in zip(ids.tolist(), passed.tolist()):
            manager.spot_check(node_id, passed=ok)
        assert manager.spot_checks_issued == 500
        assert int((fails > 0).sum()) == manager.blacklist_events
        for node_id in range(40):
            assert bool(fails[node_id] > 0) == manager.is_blacklisted(node_id)


class TestMaxTimeRegime:
    """Deadline horizons with partial-wave truncation, DES clock rules."""

    def _config(self, **overrides):
        # Contention-free sizing, so completion counts are comparable
        # with the DES (queueing would otherwise dominate who finishes).
        params = dict(tasks=400, nodes=6_000, max_time=2.8, seed=2)
        params.update(overrides)
        return _config(IterativeRedundancy(3), **params)

    def test_deterministic_and_truncates(self):
        first = run_columnar_dca(self._config())
        second = run_columnar_dca(self._config())
        assert first == second
        assert 0 < first.tasks_completed < first.tasks_submitted
        assert first.makespan == 2.8

    def test_kernels_match_scalar_fallbacks(self, monkeypatch):
        report = _kernel_cross_check(monkeypatch, self._config())
        assert report.tasks_completed < report.tasks_submitted

    def test_generous_horizon_is_a_noop(self):
        baseline = run_columnar_dca(_config(IterativeRedundancy(3)))
        bounded = run_columnar_dca(_config(IterativeRedundancy(3), max_time=1e9))
        assert bounded.makespan == baseline.makespan
        assert bounded.tasks_completed == baseline.tasks_completed
        assert bounded.as_dict() == baseline.as_dict()

    def test_nothing_completes_before_a_tiny_horizon(self):
        import math

        report = run_columnar_dca(self._config(max_time=0.1))
        # duration_low is 0.5: no wave can land by 0.1.
        assert report.tasks_completed == 0
        assert report.makespan == 0.1
        assert math.isnan(report.mean_response_time)
        assert report.total_jobs == 0
        assert report.max_jobs_per_task == 0

    def test_matches_des_statistically(self):
        for seed in (1, 2, 3):
            columnar = run_columnar_dca(self._config(seed=seed))
            des = run_dca(self._config(seed=seed))
            assert columnar.tasks_completed == pytest.approx(
                des.tasks_completed, rel=0.15
            )
            assert columnar.system_reliability == pytest.approx(
                des.system_reliability, abs=0.05
            )
            assert columnar.makespan == des.makespan == 2.8

    def test_timeouts_with_horizon_match_des_statistically(self):
        config = dict(max_time=4.2, unresponsive_prob=0.2, timeout=3.0, seed=2)
        columnar = run_columnar_dca(self._config(**config))
        des = run_dca(self._config(**config))
        assert columnar.jobs_timed_out > 0
        assert columnar.jobs_timed_out == pytest.approx(des.jobs_timed_out, rel=0.15)
        assert columnar.tasks_completed == pytest.approx(des.tasks_completed, rel=0.15)


class TestResultColumns:
    """run_columnar_dca_columns: the shm transport's raw material."""

    def test_columns_are_consistent_with_the_report(self):
        report, columns = run_columnar_dca_columns(_config(IterativeRedundancy(3)))
        assert report == run_columnar_dca(_config(IterativeRedundancy(3)))
        assert set(columns) == {"response_time", "jobs_used", "waves", "correct"}
        for column in columns.values():
            assert column.shape[0] == report.tasks_completed
        assert int(columns["correct"].sum()) == report.tasks_correct
        assert int(columns["jobs_used"].sum()) == report.total_jobs
        assert int(columns["jobs_used"].max()) == report.max_jobs_per_task
        assert float(columns["response_time"].max()) == report.max_response_time
        assert float(
            columns["response_time"].sum()
        ) / report.tasks_completed == pytest.approx(report.mean_response_time)

    def test_columns_cover_completed_tasks_only_under_horizon(self):
        config = _config(IterativeRedundancy(3), tasks=400, nodes=6_000, max_time=2.8)
        report, columns = run_columnar_dca_columns(config)
        assert 0 < report.tasks_completed < 400
        assert columns["response_time"].shape[0] == report.tasks_completed


class TestEdgeRegimes:
    """Edge regimes stay inside the engine's contract: the vectorized
    decider path and the per-task ``_decide_fallback`` path must
    produce byte-identical reports (popping the strategy from
    ``_DECIDERS`` forces the fallback), and the boundary RL305 reasons
    about statically (configs the engine must reject) is enforced at
    runtime -- ``TestSupportedRegime`` exercises every ``_validate``
    branch, matching the linter's reachability claim."""

    def _fallback_identical(self, monkeypatch, config):
        fast = run_columnar_dca(config)
        monkeypatch.delitem(_DECIDERS, type(config.strategy))
        assert type(config.strategy) not in _DECIDERS
        slow = run_columnar_dca(config)
        assert fast == slow
        assert fast.as_dict() == slow.as_dict()
        return fast

    def test_zero_tasks_rejected_at_config(self):
        # The zero-task regime is rejected before either engine runs;
        # the report aggregations therefore never see empty columns.
        with pytest.raises(ValueError, match="task"):
            _config(IterativeRedundancy(3), tasks=0)

    def test_single_node_pool(self, monkeypatch):
        config = _config(
            IterativeRedundancy(3),
            tasks=200,
            nodes=1,
            reliability=BetaReliability.with_mean(0.7),
            speed_spread=0.3,
        )
        report = self._fallback_identical(monkeypatch, config)
        assert report.tasks_completed == 200

    def test_all_silent_heavy_wave(self, monkeypatch):
        config = _config(
            IterativeRedundancy(3),
            tasks=200,
            unresponsive_prob=0.95,
            timeout=1.2,
        )
        report = self._fallback_identical(monkeypatch, config)
        assert report.jobs_timed_out > 0
        assert report.tasks_completed == 200

    def test_initial_jobs_exceed_pool(self, monkeypatch):
        # initial_jobs() of 7 against a 2-node pool: the contention-free
        # pool model re-uses nodes within a wave rather than starving.
        config = _config(IterativeRedundancy(7), tasks=100, nodes=2)
        report = self._fallback_identical(monkeypatch, config)
        assert report.max_jobs_per_task >= 7


class TestReportAndTelemetry:
    def test_summary_mentions_strategy(self):
        report = run_columnar_dca(_config(IterativeRedundancy(3)))
        assert "iterative" in report.summary()

    def test_recorder_receives_aggregates(self):
        recorder = TelemetryRecorder()
        report = run_columnar_dca(_config(IterativeRedundancy(3)), recorder=recorder)
        payload = recorder.as_payload()
        assert payload["metrics"]
        assert report.total_jobs > report.tasks_submitted

    def test_recorder_does_not_perturb_results(self):
        bare = run_columnar_dca(_config(IterativeRedundancy(3)))
        recorded = run_columnar_dca(
            _config(IterativeRedundancy(3)), recorder=TelemetryRecorder()
        )
        assert bare == recorded
