"""Tests for the checkpointing analysis and simulator."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dca.checkpointing import (
    CheckpointPolicy,
    expected_completion_time,
    expected_segment_time,
    optimal_interval,
    simulate_job,
)


class TestPolicy:
    def test_disabled_by_default(self):
        assert not CheckpointPolicy().enabled

    def test_enabled_with_interval(self):
        assert CheckpointPolicy(interval=5.0).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(interval=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(checkpoint_cost=-1.0)


class TestExpectedSegmentTime:
    def test_no_crashes_is_work(self):
        assert expected_segment_time(10.0, 0.0) == 10.0

    def test_crashes_inflate_time(self):
        assert expected_segment_time(10.0, 0.1) > 10.0

    def test_closed_form(self):
        # (1/lambda + R)(e^{lambda w} - 1)
        lam, w, restart = 0.2, 5.0, 1.0
        expected = (1 / lam + restart) * (math.exp(lam * w) - 1)
        assert expected_segment_time(w, lam, restart_cost=restart) == pytest.approx(expected)

    def test_small_rate_limit(self):
        assert expected_segment_time(10.0, 1e-9) == pytest.approx(10.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_segment_time(-1.0, 0.1)
        with pytest.raises(ValueError):
            expected_segment_time(1.0, -0.1)


class TestExpectedCompletionTime:
    def test_no_checkpoints_equals_single_segment(self):
        policy = CheckpointPolicy(restart_cost=0.5)
        assert expected_completion_time(10.0, 0.2, policy) == pytest.approx(
            expected_segment_time(10.0, 0.2, restart_cost=0.5)
        )

    def test_checkpointing_helps_long_jobs(self):
        """The Section 6 claim: checkpoints pay off when subcomputations
        are long relative to the crash rate."""
        crash_rate = 0.1
        work = 50.0
        none = expected_completion_time(work, crash_rate, CheckpointPolicy())
        checked = expected_completion_time(
            work, crash_rate, CheckpointPolicy(interval=5.0, checkpoint_cost=0.2)
        )
        assert checked < none / 2

    def test_checkpointing_hurts_short_jobs(self):
        """Pure overhead when crashes are rare and the job is short."""
        none = expected_completion_time(1.0, 0.001, CheckpointPolicy())
        checked = expected_completion_time(
            1.0, 0.001, CheckpointPolicy(interval=0.2, checkpoint_cost=0.5)
        )
        assert checked > none

    def test_exact_multiple_skips_last_checkpoint(self):
        policy = CheckpointPolicy(interval=5.0, checkpoint_cost=1.0)
        even = expected_completion_time(10.0, 0.0, policy)
        # 2 segments, only 1 checkpoint written: 10 + 1.
        assert even == pytest.approx(11.0)

    def test_zero_work(self):
        assert expected_completion_time(0.0, 0.1, CheckpointPolicy(interval=1.0)) == 0.0


class TestOptimalInterval:
    def test_youngs_formula(self):
        assert optimal_interval(0.01, 0.5) == pytest.approx(math.sqrt(2 * 0.5 / 0.01))

    def test_near_optimality(self):
        """Young's interval is within a few percent of a grid-search
        optimum of the exact expectation."""
        crash_rate, cost, work = 0.05, 0.3, 100.0
        tau_star = optimal_interval(crash_rate, cost)
        best = min(
            expected_completion_time(
                work, crash_rate, CheckpointPolicy(interval=tau, checkpoint_cost=cost)
            )
            for tau in [tau_star * f for f in (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0)]
        )
        at_star = expected_completion_time(
            work, crash_rate, CheckpointPolicy(interval=tau_star, checkpoint_cost=cost)
        )
        assert at_star <= best * 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_interval(0.0, 0.5)
        with pytest.raises(ValueError):
            optimal_interval(0.1, 0.0)


class TestSimulateJob:
    def test_no_crashes_exact(self):
        policy = CheckpointPolicy(interval=3.0, checkpoint_cost=0.5)
        stats = simulate_job(9.0, 0.0, policy, random.Random(0))
        # 3 segments, 2 checkpoints: 9 + 2 * 0.5.
        assert stats.wall_clock == pytest.approx(10.0)
        assert stats.crashes == 0
        assert stats.checkpoints_written == 2

    def test_crashes_recorded(self):
        stats = simulate_job(20.0, 0.5, CheckpointPolicy(interval=2.0), random.Random(1))
        assert stats.crashes > 0
        assert stats.work_lost > 0

    @pytest.mark.parametrize(
        "policy",
        [
            CheckpointPolicy(),
            CheckpointPolicy(interval=5.0, checkpoint_cost=0.2, restart_cost=0.5),
            CheckpointPolicy(interval=2.0, checkpoint_cost=0.1),
        ],
    )
    def test_monte_carlo_matches_expectation(self, policy):
        crash_rate, work = 0.08, 20.0
        rng = random.Random(7)
        runs = 4_000
        mean = (
            sum(simulate_job(work, crash_rate, policy, rng).wall_clock for _ in range(runs))
            / runs
        )
        assert mean == pytest.approx(
            expected_completion_time(work, crash_rate, policy), rel=0.06
        )

    @given(
        st.floats(min_value=0.5, max_value=30.0),
        st.floats(min_value=0.0, max_value=0.3),
        st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_wall_clock_at_least_work(self, work, crash_rate, seed):
        policy = CheckpointPolicy(interval=2.0, checkpoint_cost=0.1)
        stats = simulate_job(work, crash_rate, policy, random.Random(seed))
        assert stats.wall_clock >= work - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_job(-1.0, 0.1, CheckpointPolicy(), random.Random(0))
