"""Unit tests for worker nodes."""

import pytest

from repro.dca.node import Node


class TestNode:
    def test_defaults(self):
        node = Node(node_id=1, reliability=0.7)
        assert node.alive
        assert not node.busy
        assert node.available

    def test_busy_node_not_available(self):
        node = Node(node_id=1, reliability=0.7)
        node.busy = True
        assert not node.available

    def test_dead_node_not_available(self):
        node = Node(node_id=1, reliability=0.7)
        node.alive = False
        assert not node.available

    def test_job_duration_scales_with_speed(self):
        slow = Node(node_id=1, reliability=0.7, speed_factor=2.0)
        assert slow.job_duration(1.0) == pytest.approx(2.0)

    def test_job_duration_rejects_negative(self):
        node = Node(node_id=1, reliability=0.7)
        with pytest.raises(ValueError):
            node.job_duration(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Node(node_id=1, reliability=1.5)
        with pytest.raises(ValueError):
            Node(node_id=1, reliability=0.5, speed_factor=0.0)
        with pytest.raises(ValueError):
            Node(node_id=1, reliability=0.5, unresponsive_prob=-0.1)
