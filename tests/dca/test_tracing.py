"""Tests for job-lifecycle tracing."""

import pytest

from repro.core import IterativeRedundancy, TraditionalRedundancy
from repro.dca import DcaConfig, DcaSimulation
from repro.dca.tracing import (
    ACCEPT,
    COMPLETE,
    DECIDE,
    DISPATCH,
    SUBMIT,
    TIMEOUT,
    TraceEvent,
    TraceLog,
    instrument_server,
)


def run_traced(strategy, capacity=None, **overrides):
    defaults = dict(strategy=strategy, tasks=20, nodes=10, reliability=0.7, seed=2)
    defaults.update(overrides)
    simulation = DcaSimulation(DcaConfig(**defaults))
    log = instrument_server(simulation.server, TraceLog(capacity=capacity))
    report = simulation.run()
    return report, log


class TestTraceEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(0.0, "explode", 1)


class TestTraceLog:
    def test_record_and_len(self):
        log = TraceLog()
        log.record(TraceEvent(1.0, SUBMIT, 0))
        assert len(log) == 1

    def test_capacity_drops_oldest(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(TraceEvent(float(i), SUBMIT, i))
        assert len(log) == 2
        assert log.dropped == 3
        assert [e.task_id for e in log] == [3, 4]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_filter_by_kind_task_and_window(self):
        log = TraceLog()
        log.record(TraceEvent(1.0, SUBMIT, 0))
        log.record(TraceEvent(2.0, DISPATCH, 0, {"node": 1}))
        log.record(TraceEvent(3.0, DISPATCH, 1, {"node": 2}))
        assert len(log.filter(kind=DISPATCH)) == 2
        assert len(log.filter(task_id=0)) == 2
        assert len(log.filter(since=2.5)) == 1
        assert len(log.filter(until=1.5)) == 1
        assert len(log.filter(kind=DISPATCH, task_id=1)) == 1


class TestInstrumentedRuns:
    def test_every_task_has_submit_and_accept(self):
        report, log = run_traced(TraditionalRedundancy(3))
        counts = log.counts()
        assert counts[SUBMIT] == 20
        assert counts[ACCEPT] == 20

    def test_dispatch_count_matches_server_counter(self):
        report, log = run_traced(IterativeRedundancy(3))
        assert log.counts()[DISPATCH] == report.total_jobs_dispatched

    def test_complete_plus_timeout_equals_jobs_used(self):
        report, log = run_traced(
            TraditionalRedundancy(3), unresponsive_prob=0.2, timeout=5.0
        )
        counts = log.counts()
        total = counts.get(COMPLETE, 0) + counts.get(TIMEOUT, 0)
        assert total == report.total_jobs
        assert counts.get(TIMEOUT, 0) == report.jobs_timed_out

    def test_timeline_is_ordered_and_ends_with_accept(self):
        report, log = run_traced(IterativeRedundancy(2))
        timeline = log.timeline(5)
        assert timeline[0].kind == SUBMIT
        assert timeline[-1].kind == ACCEPT
        times = [event.time for event in timeline]
        assert times == sorted(times)

    def test_multi_wave_task_has_decide_events(self):
        report, log = run_traced(IterativeRedundancy(3), tasks=60)
        multi_wave = [r for r in report.records if r.waves > 1]
        assert multi_wave, "expected at least one multi-wave task at r=0.7"
        record = multi_wave[0]
        timeline = log.timeline(record.task_id)
        assert any(event.kind == DECIDE for event in timeline)

    def test_accept_detail_matches_record(self):
        report, log = run_traced(IterativeRedundancy(2))
        for record in report.records[:5]:
            accepts = log.filter(kind=ACCEPT, task_id=record.task_id)
            assert len(accepts) == 1
            assert accepts[0].detail["jobs"] == record.jobs_used
            assert accepts[0].detail["waves"] == record.waves

    def test_render_timeline(self):
        report, log = run_traced(TraditionalRedundancy(3))
        text = log.render(0)
        assert text.startswith("task 0")
        assert "submit" in text
        assert "accept" in text
