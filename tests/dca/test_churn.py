# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Unit tests for the churn process in isolation."""

import pytest

from repro.core.distributions import FixedReliability
from repro.dca.churn import ChurnProcess
from repro.dca.pool import NodePool
from repro.sim.engine import Simulator


def build(arrival=0.0, departure=0.0, initial=5, **kwargs):
    sim = Simulator(seed=8)
    pool = NodePool()
    churn = ChurnProcess(
        sim,
        pool,
        FixedReliability(0.7),
        arrival_rate=arrival,
        departure_rate=departure,
        **kwargs,
    )
    for _ in range(initial):
        pool.join(churn.make_node())
    pool.joins = 0
    return sim, pool, churn


class TestArrivals:
    def test_arrivals_grow_pool(self):
        sim, pool, churn = build(arrival=1.0)
        churn.start()
        sim.run(until=50.0)
        assert pool.joins > 20  # ~50 expected
        assert len(pool) == 5 + pool.joins

    def test_arrival_rate_statistics(self):
        sim, pool, churn = build(arrival=2.0)
        churn.start()
        sim.run(until=100.0)
        assert pool.joins == pytest.approx(200, abs=60)

    def test_on_join_hook_fires(self):
        joined = []
        sim, pool, churn = build(arrival=1.0)
        churn.on_join = lambda node: joined.append(node.node_id)
        churn.start()
        sim.run(until=10.0)
        assert len(joined) == pool.joins


class TestDepartures:
    def test_departures_shrink_pool(self):
        sim, pool, churn = build(departure=1.0, initial=50)
        churn.start()
        sim.run(until=20.0)
        assert pool.departures > 5
        assert len(pool) == 50 - pool.departures

    def test_last_node_never_leaves(self):
        sim, pool, churn = build(departure=10.0, initial=2)
        churn.start()
        sim.run(until=100.0)
        assert len(pool) >= 1

    def test_stop_halts_churn(self):
        sim, pool, churn = build(arrival=5.0)
        churn.start()
        sim.run(until=5.0)
        joins_so_far = pool.joins
        churn.stop()
        sim.run(until=50.0)
        assert pool.joins == joins_so_far


class TestNodeFactory:
    def test_speed_spread(self):
        sim, pool, churn = build(speed_spread=0.4)
        speeds = [churn.make_node().speed_factor for _ in range(200)]
        assert all(0.6 <= s <= 1.4 for s in speeds)
        assert max(speeds) - min(speeds) > 0.3

    def test_homogeneous_by_default(self):
        sim, pool, churn = build()
        assert churn.make_node().speed_factor == 1.0

    def test_unresponsive_prob_propagates(self):
        sim, pool, churn = build(unresponsive_prob=0.1)
        assert churn.make_node().unresponsive_prob == 0.1

    def test_negative_rates_rejected(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            ChurnProcess(sim, NodePool(), FixedReliability(0.5), arrival_rate=-1.0)
