"""Tests for CNF formulas and random 3-SAT generation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.formula import CnfFormula, random_3sat


class TestCnfFormula:
    def test_basic_properties(self):
        formula = CnfFormula(num_vars=3, clauses=((1, -2, 3), (-1, 2, -3)))
        assert formula.num_clauses == 2
        assert formula.assignment_space == 8
        assert set(formula.literals()) == {1, -2, 3, -1, 2, -3}

    def test_validation(self):
        with pytest.raises(ValueError):
            CnfFormula(num_vars=0, clauses=())
        with pytest.raises(ValueError):
            CnfFormula(num_vars=2, clauses=((),))
        with pytest.raises(ValueError):
            CnfFormula(num_vars=2, clauses=((3,),))
        with pytest.raises(ValueError):
            CnfFormula(num_vars=2, clauses=((0,),))

    def test_dimacs_round_trip(self):
        formula = CnfFormula(num_vars=4, clauses=((1, -2, 3), (2, 3, -4)))
        parsed = CnfFormula.from_dimacs(formula.to_dimacs())
        assert parsed == formula

    def test_dimacs_parses_comments_and_multiline_clauses(self):
        text = """c a comment
p cnf 3 2
1 -2
3 0
-1 2 3 0
"""
        formula = CnfFormula.from_dimacs(text)
        assert formula.num_vars == 3
        assert formula.clauses == ((1, -2, 3), (-1, 2, 3))

    def test_dimacs_infers_num_vars_without_problem_line(self):
        formula = CnfFormula.from_dimacs("1 -5 2 0\n")
        assert formula.num_vars == 5

    def test_dimacs_rejects_malformed_problem_line(self):
        with pytest.raises(ValueError):
            CnfFormula.from_dimacs("p sat 3\n1 0\n")


class TestRandom3Sat:
    def test_shape(self):
        formula = random_3sat(22, 91, random.Random(0))
        assert formula.num_vars == 22
        assert formula.num_clauses == 91
        assert all(len(clause) == 3 for clause in formula.clauses)

    def test_clause_variables_distinct(self):
        formula = random_3sat(5, 50, random.Random(1))
        for clause in formula.clauses:
            variables = [abs(l) for l in clause]
            assert len(set(variables)) == 3

    def test_deterministic_for_seed(self):
        a = random_3sat(10, 42, random.Random(7))
        b = random_3sat(10, 42, random.Random(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            random_3sat(2, 5, random.Random(0))
        with pytest.raises(ValueError):
            random_3sat(5, 0, random.Random(0))

    @given(st.integers(3, 12), st.integers(1, 60), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_generated_formulas_valid(self, num_vars, num_clauses, seed):
        formula = random_3sat(num_vars, num_clauses, random.Random(seed))
        # Construction validates literals; round-trip must hold too.
        assert CnfFormula.from_dimacs(formula.to_dimacs()) == formula
