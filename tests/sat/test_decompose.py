"""Tests for problem decomposition and recombination."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.decompose import SatTaskSpec, decompose, recombine
from repro.sat.formula import random_3sat
from repro.sat.solver import check_range_numpy, dpll_satisfiable


class TestDecompose:
    def test_paper_configuration_140_tasks(self):
        formula = random_3sat(22, 91, random.Random(0))
        specs = decompose(formula, 140)
        assert len(specs) == 140

    def test_slices_partition_the_space(self):
        formula = random_3sat(10, 40, random.Random(1))
        specs = decompose(formula, 7)
        assert specs[0].start == 0
        assert specs[-1].stop == formula.assignment_space
        for prev, cur in zip(specs, specs[1:]):
            assert prev.stop == cur.start

    def test_slice_sizes_near_equal(self):
        formula = random_3sat(10, 40, random.Random(2))
        specs = decompose(formula, 9)  # 1024 / 9 is not integral
        sizes = {spec.size for spec in specs}
        assert max(sizes) - min(sizes) <= 1
        assert sum(spec.size for spec in specs) == 1024

    def test_more_tasks_than_assignments_clamps(self):
        formula = random_3sat(3, 5, random.Random(3))
        specs = decompose(formula, 140)
        assert len(specs) == 8
        assert all(spec.size == 1 for spec in specs)

    def test_invalid_count(self):
        formula = random_3sat(5, 10, random.Random(4))
        with pytest.raises(ValueError):
            decompose(formula, 0)

    def test_compute_checks_the_slice(self):
        formula = random_3sat(8, 30, random.Random(5))
        spec = decompose(formula, 4)[1]
        assert spec.compute(formula) == check_range_numpy(
            formula, spec.start, spec.stop
        )


class TestRecombine:
    def test_or_semantics(self):
        assert recombine({0: False, 1: True, 2: False}) is True
        assert recombine({0: False, 1: False}) is False

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            recombine({})

    @given(st.integers(3, 9), st.integers(5, 50), st.integers(0, 300), st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_property_recombination_equals_direct_solve(
        self, num_vars, num_clauses, seed, num_tasks
    ):
        """OR of the slice verdicts equals the problem's satisfiability --
        both against enumeration and against the independent DPLL oracle."""
        formula = random_3sat(num_vars, num_clauses, random.Random(seed))
        specs = decompose(formula, num_tasks)
        verdicts = {spec.task_id: spec.compute(formula) for spec in specs}
        combined = recombine(verdicts)
        assert combined == check_range_numpy(formula, 0, formula.assignment_space)
        assert combined == dpll_satisfiable(formula)
