"""Tests for the assignment checkers and the DPLL oracle."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.formula import CnfFormula, random_3sat
from repro.sat.solver import (
    check_range,
    check_range_numpy,
    dpll_satisfiable,
    evaluate_assignment,
)

#  (x1 | x2 | x3) & (!x1 | !x2 | !x3): satisfied by mixed assignments.
MIXED = CnfFormula(num_vars=3, clauses=((1, 2, 3), (-1, -2, -3)))


class TestEvaluateAssignment:
    def test_known_values(self):
        # assignment 0b011 = x1=1, x2=1, x3=0 -> both clauses satisfied.
        assert evaluate_assignment(MIXED, 0b011)
        # 0b000 falsifies clause 1; 0b111 falsifies clause 2.
        assert not evaluate_assignment(MIXED, 0b000)
        assert not evaluate_assignment(MIXED, 0b111)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            evaluate_assignment(MIXED, 8)
        with pytest.raises(ValueError):
            evaluate_assignment(MIXED, -1)


class TestRangeCheckers:
    def test_full_space(self):
        assert check_range(MIXED, 0, 8)
        assert check_range_numpy(MIXED, 0, 8)

    def test_empty_range_is_false(self):
        assert not check_range(MIXED, 3, 3)
        assert not check_range_numpy(MIXED, 3, 3)

    def test_unsat_slice(self):
        # Only assignments 0 and 7 are unsatisfying; slice {0} is unsat.
        assert not check_range(MIXED, 0, 1)
        assert not check_range_numpy(MIXED, 0, 1)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            check_range(MIXED, -1, 4)
        with pytest.raises(ValueError):
            check_range_numpy(MIXED, 0, 9)
        with pytest.raises(ValueError):
            check_range_numpy(MIXED, 0, 8, chunk=0)

    def test_numpy_chunking_boundaries(self):
        formula = random_3sat(10, 43, random.Random(3))
        whole = check_range_numpy(formula, 0, 1024, chunk=1024)
        chunked = check_range_numpy(formula, 0, 1024, chunk=7)
        assert whole == chunked

    @given(st.integers(3, 10), st.integers(5, 45), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_property_numpy_matches_reference(self, num_vars, num_clauses, seed):
        rng = random.Random(seed)
        formula = random_3sat(num_vars, num_clauses, rng)
        space = formula.assignment_space
        start = rng.randrange(space)
        stop = rng.randrange(start, space + 1)
        assert check_range(formula, start, stop) == check_range_numpy(
            formula, start, stop
        )


class TestDpll:
    def test_satisfiable_example(self):
        assert dpll_satisfiable(MIXED)

    def test_unsatisfiable_example(self):
        # (x1)(!x1) is unsatisfiable (not 3-SAT, but DPLL is general CNF).
        formula = CnfFormula(num_vars=1, clauses=((1,), (-1,)))
        assert not dpll_satisfiable(formula)

    def test_trivially_true(self):
        formula = CnfFormula(num_vars=1, clauses=((1,),))
        assert dpll_satisfiable(formula)

    @given(st.integers(3, 9), st.integers(5, 60), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_property_dpll_matches_enumeration(self, num_vars, num_clauses, seed):
        """DPLL and exhaustive enumeration agree on satisfiability."""
        formula = random_3sat(num_vars, num_clauses, random.Random(seed))
        assert dpll_satisfiable(formula) == check_range_numpy(
            formula, 0, formula.assignment_space
        )
