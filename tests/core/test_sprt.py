# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for the SPRT interpretation of iterative redundancy."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import analysis
from repro.core.confidence import required_margin
from repro.core.sprt import (
    SprtDesign,
    design_from_margin,
    llr_per_vote,
    margin_for_error_rate,
    wald_expected_samples,
)

mid_r = st.floats(min_value=0.55, max_value=0.95)
margins = st.integers(1, 12)


class TestLlr:
    def test_symmetric_at_half(self):
        assert llr_per_vote(0.5) == 0.0

    def test_sign(self):
        assert llr_per_vote(0.7) > 0
        assert llr_per_vote(0.3) < 0

    def test_antisymmetry(self):
        assert llr_per_vote(0.7) == pytest.approx(-llr_per_vote(0.3))

    def test_validation(self):
        with pytest.raises(ValueError):
            llr_per_vote(1.0)


class TestDesign:
    def test_error_rate_matches_equation_6(self):
        design = design_from_margin(0.7, 4)
        assert design.reliability == pytest.approx(analysis.iterative_reliability(0.7, 4))

    def test_expected_samples_is_cost_factor(self):
        design = design_from_margin(0.7, 4)
        assert design.expected_samples == pytest.approx(analysis.iterative_cost(0.7, 4))

    def test_threshold_scales_with_margin(self):
        d3 = design_from_margin(0.8, 3)
        d6 = design_from_margin(0.8, 6)
        assert d6.threshold == pytest.approx(2 * d3.threshold)

    def test_validation(self):
        with pytest.raises(ValueError):
            design_from_margin(0.7, 0)


class TestMarginForErrorRate:
    @given(mid_r, st.floats(min_value=0.001, max_value=0.3))
    @settings(max_examples=100, deadline=None)
    def test_property_agrees_with_required_margin(self, r, alpha):
        """Wald's threshold derivation and the paper's q-based derivation
        give the same margin."""
        assert margin_for_error_rate(r, alpha) == max(
            1, required_margin(r, 1.0 - alpha)
        )

    @given(mid_r, st.floats(min_value=0.001, max_value=0.3))
    @settings(max_examples=50, deadline=None)
    def test_property_minimality(self, r, alpha):
        d = margin_for_error_rate(r, alpha)
        assert 1.0 - analysis.iterative_reliability(r, d) <= alpha + 1e-12
        if d > 1:
            assert 1.0 - analysis.iterative_reliability(r, d - 1) > alpha

    def test_validation(self):
        with pytest.raises(ValueError):
            margin_for_error_rate(0.7, 0.5)
        with pytest.raises(ValueError):
            margin_for_error_rate(0.5, 0.1)


class TestWaldIdentity:
    @given(mid_r, margins)
    def test_property_wald_equals_gamblers_ruin(self, r, d):
        """Two independent derivations of Equation (5)'s closed form."""
        assert wald_expected_samples(r, d) == pytest.approx(
            analysis.iterative_cost(r, d), rel=1e-12
        )

    def test_symmetric_case(self):
        assert wald_expected_samples(0.5, 5) == 25.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wald_expected_samples(0.7, 0)
