"""Tests for reliability estimation from vote observations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IterativeRedundancy, analysis
from repro.core.estimation import (
    DegradationAlarm,
    degradation_monitor,
    estimate_from_job_counts,
    estimate_from_votes,
)
from repro.core.runner import bernoulli_source, run_task


def observed_job_counts(r, d, tasks, seed):
    rng = random.Random(seed)
    strategy = IterativeRedundancy(d)
    return [
        run_task(strategy, bernoulli_source(rng, r)).jobs_used for _ in range(tasks)
    ]


class TestEstimateFromJobCounts:
    @pytest.mark.parametrize("r", [0.65, 0.7, 0.8, 0.9])
    def test_recovers_true_r(self, r):
        counts = observed_job_counts(r, 4, 4_000, seed=hash(r) & 0xFFFF)
        estimate = estimate_from_job_counts(counts, 4)
        assert estimate == pytest.approx(r, abs=0.02)

    def test_perfect_pool_estimates_one(self):
        counts = [4] * 100  # every task unanimous on the first wave
        assert estimate_from_job_counts(counts, 4) == pytest.approx(1.0, abs=1e-3)

    def test_coin_flip_pool_estimates_half(self):
        counts = [16] * 100  # mean d^2 = worst case
        assert estimate_from_job_counts(counts, 4) == pytest.approx(0.5, abs=1e-3)

    def test_rejects_impossible_counts(self):
        with pytest.raises(ValueError):
            estimate_from_job_counts([3], 4)  # below d
        with pytest.raises(ValueError):
            estimate_from_job_counts([5], 4)  # wrong parity
        with pytest.raises(ValueError):
            estimate_from_job_counts([], 4)
        with pytest.raises(ValueError):
            estimate_from_job_counts([4], 0)

    @given(st.integers(2, 6), st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_property_monotone_in_mean(self, d, b_small, extra):
        """Cheaper samples imply more reliable pools, always in [0.5, 1]."""
        cheap = [d + 2 * b_small] * 10
        dear = [d + 2 * (b_small + extra + 1)] * 10
        cheap_estimate = estimate_from_job_counts(cheap, d)
        dear_estimate = estimate_from_job_counts(dear, d)
        assert 0.5 <= dear_estimate <= cheap_estimate <= 1.0


class TestEstimateFromVotes:
    def test_naive_fraction_without_d(self):
        assert estimate_from_votes(70, 30) == pytest.approx(0.7)

    def test_correction_raises_naive_estimate(self):
        """Some 'agreeing' votes backed wrong winners, so the corrected r
        exceeds the raw agreement fraction slightly... actually the raw
        fraction underestimates r because lost votes pollute agreement."""
        naive = estimate_from_votes(70, 30)
        corrected = estimate_from_votes(70, 30, d=3)
        assert corrected >= naive

    def test_empirical_recovery(self):
        r, d = 0.75, 4
        rng = random.Random(9)
        strategy = IterativeRedundancy(d)
        winner = loser = 0
        for _ in range(2_000):
            outcomes = []
            source = bernoulli_source(rng, r)

            def recording(index):
                outcome = source(index)
                outcomes.append(outcome)
                return outcome

            verdict = run_task(strategy, recording)
            for outcome in outcomes:
                if outcome.value == verdict.value:
                    winner += 1
                else:
                    loser += 1
        estimate = estimate_from_votes(winner, loser, d=d)
        assert estimate == pytest.approx(r, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_from_votes(-1, 5)
        with pytest.raises(ValueError):
            estimate_from_votes(0, 0)
        with pytest.raises(ValueError):
            estimate_from_votes(5, 5, d=0)


class TestDegradationMonitor:
    def test_healthy_stream_quiet(self):
        counts = observed_job_counts(0.85, 3, 600, seed=1)
        assert degradation_monitor(counts, 3, window=200, floor=0.7) == []

    def test_degraded_stream_alarms(self):
        healthy = observed_job_counts(0.85, 3, 300, seed=2)
        degraded = observed_job_counts(0.58, 3, 300, seed=3)
        alarms = degradation_monitor(healthy + degraded, 3, window=150, floor=0.7)
        assert alarms
        # Alarms come from the degraded tail.
        assert all(alarm.task_index >= 300 for alarm in alarms)
        assert all(alarm.estimated_r < 0.7 for alarm in alarms)

    def test_window_must_fill(self):
        counts = observed_job_counts(0.55, 3, 50, seed=4)
        assert degradation_monitor(counts, 3, window=100, floor=0.7) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            degradation_monitor([3, 3], 3, window=1)
        with pytest.raises(ValueError):
            degradation_monitor([3, 3], 3, floor=0.4)
