"""Tests for the BOINC-style adaptive-replication comparator."""

import random

import pytest

from repro.core.adaptive import AdaptiveReplication
from repro.core.runner import bernoulli_source, run_task
from repro.core.types import JobOutcome, TaskVerdict, VoteState


def finish(strategy, task_id, value):
    strategy.task_finished(
        task_id, TaskVerdict(value=value, correct=None, jobs_used=1, waves=1)
    )


class TestTrustLifecycle:
    def test_nodes_start_untrusted(self):
        strategy = AdaptiveReplication()
        assert not strategy.is_trusted(1)
        assert not strategy.is_trusted(None)

    def test_trust_earned_after_streak(self):
        strategy = AdaptiveReplication(trust_after=3, audit_rate=0.0)
        for task_id in range(3):
            strategy.record_outcome(task_id, JobOutcome(value=True, node_id=1))
            strategy.record_outcome(task_id, JobOutcome(value=True, node_id=2))
            finish(strategy, task_id, True)
        assert strategy.is_trusted(1)

    def test_invalid_result_resets_streak(self):
        strategy = AdaptiveReplication(trust_after=2, audit_rate=0.0)
        strategy.record_outcome(0, JobOutcome(value=True, node_id=1))
        finish(strategy, 0, True)
        strategy.record_outcome(1, JobOutcome(value=False, node_id=1))
        finish(strategy, 1, True)  # node 1 disagreed with the verdict
        assert strategy.trust_record(1).streak == 0
        assert strategy.trust_record(1).invalidated == 1


class TestDecisions:
    def test_untrusted_node_triggers_replication(self):
        strategy = AdaptiveReplication(quorum=2, audit_rate=0.0)
        vote = VoteState()
        outcome = JobOutcome(value=True, node_id=1)
        strategy.record_outcome(0, outcome)
        vote.record(outcome)
        decision = strategy.decide(vote)
        assert not decision.done
        assert decision.more_jobs == 1  # needs a second matching result

    def test_trusted_node_single_result_accepted(self):
        strategy = AdaptiveReplication(trust_after=1, audit_rate=0.0)
        # Earn trust on task 0.
        strategy.record_outcome(0, JobOutcome(value=True, node_id=1))
        finish(strategy, 0, True)
        assert strategy.is_trusted(1)
        # Task 1: single result from the now-trusted node.
        vote = VoteState()
        outcome = JobOutcome(value=True, node_id=1)
        strategy.record_outcome(1, outcome)
        vote.record(outcome)
        decision = strategy.decide(vote)
        assert decision.done
        assert decision.accepted is True

    def test_audit_forces_replication_even_when_trusted(self):
        strategy = AdaptiveReplication(trust_after=1, audit_rate=1.0)
        strategy.record_outcome(0, JobOutcome(value=True, node_id=1))
        finish(strategy, 0, True)
        vote = VoteState()
        outcome = JobOutcome(value=True, node_id=1)
        strategy.record_outcome(1, outcome)
        vote.record(outcome)
        decision = strategy.decide(vote)
        assert not decision.done

    def test_quorum_acceptance(self):
        strategy = AdaptiveReplication(quorum=2, audit_rate=0.0)
        vote = VoteState()
        for node in (1, 2):
            outcome = JobOutcome(value="x", node_id=node)
            strategy.record_outcome(0, outcome)
            vote.record(outcome)
        decision = strategy.decide(vote)
        assert decision.done
        assert decision.accepted == "x"

    def test_disagreement_extends_quorum_hunt(self):
        strategy = AdaptiveReplication(quorum=2, audit_rate=0.0)
        vote = VoteState()
        for node, value in ((1, "x"), (2, "y")):
            outcome = JobOutcome(value=value, node_id=node)
            strategy.record_outcome(0, outcome)
            vote.record(outcome)
        decision = strategy.decide(vote)
        assert not decision.done
        assert decision.more_jobs == 1


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveReplication(quorum=1)
        with pytest.raises(ValueError):
            AdaptiveReplication(trust_after=0)
        with pytest.raises(ValueError):
            AdaptiveReplication(audit_rate=1.5)


class TestEndToEnd:
    def test_malicious_node_can_exploit_earned_trust(self):
        """The paper's critique: a node can earn trust honestly and then
        defect; its wrong results are then accepted without replication."""
        strategy = AdaptiveReplication(trust_after=2, audit_rate=0.0)
        # Earn trust honestly.
        for task_id in range(2):
            strategy.record_outcome(task_id, JobOutcome(value=True, node_id=66))
            finish(strategy, task_id, True)
        assert strategy.is_trusted(66)
        # Defect: single wrong answer sails through.
        vote = VoteState()
        outcome = JobOutcome(value=False, node_id=66)
        strategy.record_outcome(9, outcome)
        vote.record(outcome)
        decision = strategy.decide(vote)
        assert decision.done
        assert decision.accepted is False  # the wrong answer was accepted

    def test_run_task_integration(self):
        rng = random.Random(4)
        strategy = AdaptiveReplication(audit_rate=0.0, rng=random.Random(0))
        verdict = run_task(strategy, bernoulli_source(rng, 0.8), true_value=True, task_id=0)
        assert verdict.jobs_used >= 1
