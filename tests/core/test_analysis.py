# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for the closed-form analysis (Equations (1)-(6)) including the
paper's worked examples and cross-checks between independent computations."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import analysis as A
from repro.core.runner import monte_carlo
from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy

odd_k = st.integers(1, 10).map(lambda i: 2 * i - 1)
margins = st.integers(1, 12)
mid_r = st.floats(min_value=0.55, max_value=0.95)


class TestTraditional:
    def test_cost_is_k(self):
        assert A.traditional_cost(19) == 19.0

    def test_k1_reliability_is_r(self):
        assert A.traditional_reliability(0.7, 1) == pytest.approx(0.7)

    def test_paper_example_k19(self):
        """Paper: k=19, r=0.7 gives system reliability 0.97 (rounded)."""
        assert A.traditional_reliability(0.7, 19) == pytest.approx(0.9674, abs=5e-4)

    def test_even_k_rejected(self):
        with pytest.raises(ValueError):
            A.traditional_reliability(0.7, 4)

    @given(mid_r, odd_k)
    def test_property_reliability_increases_with_k(self, r, k):
        assert A.traditional_reliability(r, k + 2) >= A.traditional_reliability(r, k) - 1e-12

    @given(st.floats(min_value=0.05, max_value=0.45), odd_k)
    def test_property_low_r_reliability_decreases_with_k(self, r, k):
        """Below r = 0.5 redundancy actively hurts."""
        assert A.traditional_reliability(r, k + 2) <= A.traditional_reliability(r, k) + 1e-12

    @given(mid_r, odd_k)
    def test_property_complement_symmetry(self, r, k):
        """R(r, k) + R(1-r, k) = 1 in the binary model."""
        assert A.traditional_reliability(r, k) + A.traditional_reliability(
            1.0 - r, k
        ) == pytest.approx(1.0)


class TestProgressive:
    def test_reliability_equals_traditional(self):
        for k in (3, 7, 19):
            assert A.progressive_reliability(0.7, k) == A.traditional_reliability(0.7, k)

    def test_paper_example_cost_14_2(self):
        """Paper: k=19, r=0.7 costs 14.2x (1.3x below traditional)."""
        cost = A.progressive_cost(0.7, 19)
        assert cost == pytest.approx(14.2, abs=0.05)
        assert 19.0 / cost == pytest.approx(1.3, abs=0.05)

    def test_k1_cost_is_one(self):
        assert A.progressive_cost(0.7, 1) == pytest.approx(1.0)

    @given(mid_r, odd_k)
    @settings(max_examples=40, deadline=None)
    def test_property_equation3_matches_wave_dp(self, r, k):
        """The paper's printed formula equals the wave-process DP."""
        assert A.progressive_cost(r, k) == pytest.approx(
            A.progressive_cost_dp(r, k), rel=1e-9
        )

    @given(mid_r, odd_k)
    @settings(max_examples=40, deadline=None)
    def test_property_cost_bounds(self, r, k):
        """(k+1)/2 <= C_PR <= k."""
        cost = A.progressive_cost(r, k)
        assert (k + 1) / 2 - 1e-9 <= cost <= k + 1e-9

    def test_cost_approaches_consensus_at_high_r(self):
        assert A.progressive_cost(0.999, 19) == pytest.approx(10.0, abs=0.1)

    def test_cost_approaches_k_at_half_r(self):
        # "If r is close to 0.5, the cost factor of k-vote progressive
        #  redundancy is close to k" -- i.e. the improvement over TR is
        #  smallest there.  Exact value at r=0.5 is ~16.5 for k=19.
        cost_half = A.progressive_cost(0.501, 19)
        assert cost_half > A.progressive_cost(0.9, 19)
        assert 15.5 < cost_half <= 19.0

    def test_monte_carlo_agreement(self):
        est = monte_carlo(lambda: ProgressiveRedundancy(9), 0.7, 20_000, seed=11)
        assert est.cost_factor == pytest.approx(A.progressive_cost(0.7, 9), rel=0.02)
        assert est.reliability == pytest.approx(A.progressive_reliability(0.7, 9), abs=0.01)
        assert est.max_jobs <= 9


class TestIterative:
    def test_equation6_reliability(self):
        r, d = 0.7, 4
        assert A.iterative_reliability(r, d) == pytest.approx(
            r**d / (r**d + (1 - r) ** d)
        )

    def test_paper_example_cost_9_4(self):
        """Paper: r=0.7, d=4 (R ~ 0.97) costs 9.4x; 1.5x below progressive
        and 2.0x below traditional."""
        cost = A.iterative_cost(0.7, 4)
        assert cost == pytest.approx(9.4, abs=0.1)
        assert A.progressive_cost(0.7, 19) / cost == pytest.approx(1.5, abs=0.05)
        assert 19.0 / cost == pytest.approx(2.0, abs=0.05)

    @given(mid_r, margins)
    @settings(max_examples=40, deadline=None)
    def test_property_closed_form_matches_series(self, r, d):
        """Gambler's-ruin closed form equals the Equation (5) series."""
        assert A.iterative_cost(r, d) == pytest.approx(
            A.iterative_cost_series(r, d), rel=1e-6
        )

    @given(margins)
    def test_property_symmetric_walk_cost_is_d_squared(self, d):
        assert A.iterative_cost(0.5, d) == pytest.approx(float(d * d))

    @given(mid_r, margins)
    def test_property_approximation_is_upper_bound_and_converges(self, r, d):
        """d/(2r-1) >= exact cost, tight as d grows (R -> 1)."""
        exact = A.iterative_cost(r, d)
        approx = A.iterative_cost_approx(r, d)
        assert approx >= exact - 1e-12
        if A.iterative_reliability(r, d) > 0.999:
            # The relative error approaches 2*(1-R) from above, so just
            # past the R=0.999 gate it can reach ~2.004e-3; 2e-3 exactly
            # was a knife-edge that Hypothesis eventually found.
            assert approx == pytest.approx(exact, rel=2.5e-3)

    def test_job_distribution_parity_and_mass(self):
        """Totals are d + 2b and the probabilities sum to ~1."""
        pairs = list(A.iterative_job_distribution(0.7, 3))
        assert all((jobs - 3) % 2 == 0 for jobs, _ in pairs)
        assert sum(p for _, p in pairs) == pytest.approx(1.0, abs=1e-9)

    def test_monte_carlo_agreement(self):
        est = monte_carlo(lambda: IterativeRedundancy(4), 0.7, 20_000, seed=5)
        assert est.cost_factor == pytest.approx(A.iterative_cost(0.7, 4), rel=0.02)
        assert est.reliability == pytest.approx(A.iterative_reliability(0.7, 4), abs=0.01)

    @given(mid_r, margins)
    @settings(max_examples=30, deadline=None)
    def test_property_ir_beats_pr_beats_tr_at_equal_reliability(self, r, d):
        """The paper's headline: at matched reliability, C_IR <= C_PR <= C_TR.

        Matched exactly via the continuous-k Beta interpolation.
        """
        target = A.iterative_reliability(r, d)
        if target >= 0.99999:  # interpolation loses meaning at saturation
            return
        k_real = A.continuous_traditional_k(r, target)
        c_ir = A.iterative_cost(r, d)
        assert c_ir <= k_real + 1e-6
        # PR sits between: compare at the bracketing odd k's.
        k_hi = int(2 * math.ceil((k_real + 1) / 2) - 1)
        if k_hi >= 3:
            assert A.progressive_cost(r, k_hi) <= k_hi + 1e-9


class TestWaveAndResponseModels:
    def test_traditional_single_wave(self):
        assert A.expected_response_time(0.7, "traditional", 19) == pytest.approx(
            A.expected_wave_duration(19)
        )

    def test_wave_duration_formula(self):
        # E[max of n U(0.5, 1.5)] = 0.5 + n/(n+1)
        assert A.expected_wave_duration(1) == pytest.approx(1.0)
        assert A.expected_wave_duration(19) == pytest.approx(0.5 + 19 / 20)

    def test_wave_duration_invalid(self):
        with pytest.raises(ValueError):
            A.expected_wave_duration(0)

    def test_progressive_waves_bounded(self):
        waves = A.progressive_expected_waves(0.7, 19)
        assert 1.0 <= waves <= 10.0

    def test_iterative_waves_reasonable(self):
        waves = A.iterative_expected_waves(0.7, 4)
        assert 1.0 <= waves <= 10.0

    def test_response_time_ordering_matches_figure6(self):
        """PR and IR respond slower than TR at the same parameters; the
        paper measures 1.4-2.8x."""
        tr = A.expected_response_time(0.7, "traditional", 19)
        pr = A.expected_response_time(0.7, "progressive", 19)
        ir = A.expected_response_time(0.7, "iterative", 4)
        assert pr > tr
        assert ir > tr
        assert 1.2 < pr / tr < 3.0
        assert 1.2 < ir / tr < 3.0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            A.expected_response_time(0.7, "quantum", 3)


class TestContinuousInterpolation:
    def test_continuous_k_inverts_reliability(self):
        target = A.traditional_reliability(0.7, 9)
        assert A.continuous_traditional_k(0.7, target) == pytest.approx(9.0, abs=1e-6)

    def test_continuous_margin_inverts_equation6(self):
        target = A.iterative_reliability(0.7, 5)
        assert A.continuous_iterative_margin(0.7, target) == pytest.approx(5.0, abs=1e-9)

    def test_rejects_r_at_or_below_half(self):
        with pytest.raises(ValueError):
            A.continuous_traditional_k(0.5, 0.9)
        with pytest.raises(ValueError):
            A.continuous_iterative_margin(0.45, 0.9)


class TestFigure5cImprovement:
    def test_pr_improvement_rises_toward_two(self):
        low = A.improvement_over_traditional(0.55)[0]
        high = A.improvement_over_traditional(0.99)[0]
        assert low < 1.3
        assert 1.8 < high <= 2.0

    def test_ir_improvement_shape(self):
        """At least ~1.6 near r = 0.5, peaks near r ~ 0.86-0.9, then dips."""
        near_half = A.improvement_over_traditional(0.55)[1]
        peak_region = A.improvement_over_traditional(0.9)[1]
        near_one = A.improvement_over_traditional(0.99)[1]
        assert near_half >= 1.5
        assert peak_region > 2.5
        assert 2.2 < near_one < peak_region

    def test_ir_always_beats_pr(self):
        for r in (0.55, 0.7, 0.85, 0.95):
            pr, ir = A.improvement_over_traditional(r)
            assert ir > pr


class TestHeterogeneous:
    def test_matches_homogeneous_case(self):
        assert A.traditional_reliability_heterogeneous([0.7] * 5) == pytest.approx(
            A.traditional_reliability(0.7, 5)
        )

    def test_mixed_pool(self):
        """One perfect node among coin-flippers: P(majority of 3 correct)
        = P(perfect ok) * P(at least 1 of 2 flips ok) = 0.75."""
        value = A.traditional_reliability_heterogeneous([0.999999, 0.5, 0.5])
        assert value == pytest.approx(0.75, abs=1e-4)

    def test_even_count_rejected(self):
        with pytest.raises(ValueError):
            A.traditional_reliability_heterogeneous([0.7, 0.7])

    @given(st.lists(st.floats(min_value=0.05, max_value=0.95), min_size=1, max_size=9))
    @settings(max_examples=30, deadline=None)
    def test_property_dp_is_valid_probability(self, rs):
        if len(rs) % 2 == 0:
            rs = rs + [0.7]
        value = A.traditional_reliability_heterogeneous(rs)
        assert 0.0 <= value <= 1.0
