"""End-to-end verification of Theorem 1's consequence: the complex,
r-aware iterative-redundancy algorithm dispatches *identically* to the
simple margin algorithm in every situation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ComplexIterativeRedundancy, IterativeRedundancy
from repro.core.runner import bernoulli_source, run_task
from repro.core.types import VoteState


def replay_decisions(strategy, script):
    """Run a strategy over a scripted result stream, returning the wave
    sizes it requested and the accepted value."""
    vote = VoteState()
    waves = [strategy.initial_jobs()]
    index = 0
    while True:
        pending = waves[-1]
        vote.dispatched(pending)
        for _ in range(pending):
            vote.record_value(script[index % len(script)])
            index += 1
        decision = strategy.decide(vote)
        if decision.done:
            return waves, decision.accepted
        waves.append(decision.more_jobs)
        if len(waves) > 500:
            raise AssertionError("strategy failed to terminate")


class TestComplexSimpleEquivalence:
    @pytest.mark.parametrize("r", [0.6, 0.7, 0.85, 0.95])
    @pytest.mark.parametrize("target", [0.9, 0.97, 0.999])
    def test_same_waves_on_random_streams(self, r, target):
        complex_strategy = ComplexIterativeRedundancy(r, target)
        simple_strategy = IterativeRedundancy(complex_strategy.equivalent_margin)
        rng = random.Random(hash((r, target)) & 0xFFFF)
        for _ in range(50):
            script = [rng.random() < r for _ in range(400)]
            waves_c, value_c = replay_decisions(complex_strategy, script)
            waves_s, value_s = replay_decisions(simple_strategy, script)
            assert waves_c == waves_s
            assert value_c == value_s

    def test_initial_jobs_match(self):
        for r, target in [(0.7, 0.97), (0.6, 0.9), (0.9, 0.999)]:
            complex_strategy = ComplexIterativeRedundancy(r, target)
            simple_strategy = IterativeRedundancy(complex_strategy.equivalent_margin)
            assert complex_strategy.initial_jobs() == simple_strategy.initial_jobs()

    @given(
        st.floats(min_value=0.55, max_value=0.95),
        st.floats(min_value=0.6, max_value=0.995),
        st.integers(0, 20),
        st.integers(0, 20),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_pointwise_decision_equivalence(self, r, target, a, b):
        """For any vote state, both algorithms make the same decision."""
        complex_strategy = ComplexIterativeRedundancy(r, target)
        simple_strategy = IterativeRedundancy(complex_strategy.equivalent_margin)
        vote = VoteState.from_counts({True: a, False: b})
        decision_c = complex_strategy.decide(vote)
        decision_s = simple_strategy.decide(vote)
        assert decision_c.done == decision_s.done
        if decision_c.done:
            assert decision_c.accepted == decision_s.accepted
        else:
            assert decision_c.more_jobs == decision_s.more_jobs

    def test_validation(self):
        with pytest.raises(ValueError):
            ComplexIterativeRedundancy(0.4, 0.9)  # r <= 0.5
        with pytest.raises(ValueError):
            ComplexIterativeRedundancy(0.7, 0.4)  # target <= 0.5

    def test_run_task_end_to_end(self):
        rng = random.Random(17)
        complex_strategy = ComplexIterativeRedundancy(0.7, 0.97)
        verdict = run_task(complex_strategy, bernoulli_source(rng, 0.7), true_value=True)
        assert verdict.jobs_used >= complex_strategy.initial_jobs()
