# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for the substrate-free strategy runner and Monte-Carlo engine."""

import random

import pytest

from repro.core import IterativeRedundancy, TraditionalRedundancy
from repro.core.runner import (
    MonteCarloEstimate,
    WaveLimitExceeded,
    bernoulli_source,
    monte_carlo,
    run_task,
    scripted_source,
)
from repro.core.strategy import RedundancyStrategy
from repro.core.types import Decision, VoteState


class TestRunTask:
    def test_marks_correctness_against_truth(self):
        verdict = run_task(
            TraditionalRedundancy(3), scripted_source([True, True, False]), true_value=True
        )
        assert verdict.correct is True

    def test_correct_is_none_without_truth(self):
        verdict = run_task(TraditionalRedundancy(3), scripted_source([True] * 3))
        assert verdict.correct is None

    def test_wave_limit_guards_runaway(self):
        class Forever(RedundancyStrategy):
            name = "forever"

            def initial_jobs(self):
                return 1

            def decide(self, vote):
                return Decision.dispatch(1)

        with pytest.raises(WaveLimitExceeded):
            run_task(Forever(), scripted_source([True] * 100), max_waves=10)

    def test_scripted_source_exhaustion_raises(self):
        with pytest.raises(IndexError):
            run_task(TraditionalRedundancy(5), scripted_source([True, True]))


class TestBernoulliSource:
    def test_extreme_probabilities(self):
        rng = random.Random(0)
        always = bernoulli_source(rng, 1.0)
        never = bernoulli_source(rng, 0.0)
        assert all(always(i).value is True for i in range(20))
        assert all(never(i).value is False for i in range(20))

    def test_custom_values(self):
        rng = random.Random(0)
        source = bernoulli_source(rng, 1.0, correct="yes", wrong="no")
        assert source(0).value == "yes"

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            bernoulli_source(random.Random(0), 1.5)

    def test_node_ids_attached(self):
        source = bernoulli_source(random.Random(0), 0.5)
        assert source(7).node_id == 7


class TestMonteCarlo:
    def test_deterministic_for_seed(self):
        a = monte_carlo(lambda: IterativeRedundancy(3), 0.7, 500, seed=1)
        b = monte_carlo(lambda: IterativeRedundancy(3), 0.7, 500, seed=1)
        assert a == b

    def test_estimate_properties(self):
        est = MonteCarloEstimate(tasks=100, correct=90, total_jobs=500, total_waves=150, max_jobs=9)
        assert est.reliability == pytest.approx(0.9)
        assert est.cost_factor == pytest.approx(5.0)
        assert est.mean_waves == pytest.approx(1.5)

    def test_traditional_cost_exact(self):
        est = monte_carlo(lambda: TraditionalRedundancy(5), 0.7, 300, seed=2)
        assert est.cost_factor == 5.0
        assert est.max_jobs == 5

    def test_requires_positive_tasks(self):
        with pytest.raises(ValueError):
            monte_carlo(lambda: IterativeRedundancy(2), 0.7, 0)

    def test_perfect_nodes_always_correct(self):
        est = monte_carlo(lambda: IterativeRedundancy(2), 0.9999, 200, seed=3)
        assert est.reliability > 0.99
