"""Tests for node-reliability distributions (Section 5.3 relaxations)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distributions import (
    BetaReliability,
    DiscreteReliability,
    FixedReliability,
    TwoClassReliability,
)


class TestFixed:
    def test_sample_is_constant(self):
        dist = FixedReliability(0.7)
        rng = random.Random(0)
        assert all(dist.sample(rng) == 0.7 for _ in range(10))
        assert dist.mean() == 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedReliability(1.5)

    def test_sample_pool_size(self):
        assert len(FixedReliability(0.5).sample_pool(10, random.Random(0))) == 10
        with pytest.raises(ValueError):
            FixedReliability(0.5).sample_pool(0, random.Random(0))


class TestBeta:
    def test_with_mean_hits_mean(self):
        dist = BetaReliability.with_mean(0.7, concentration=20.0)
        assert dist.mean() == pytest.approx(0.7)

    def test_empirical_mean_close(self):
        dist = BetaReliability.with_mean(0.7)
        rng = random.Random(1)
        samples = dist.sample_pool(20_000, rng)
        assert sum(samples) / len(samples) == pytest.approx(0.7, abs=0.01)

    def test_samples_in_unit_interval(self):
        dist = BetaReliability(2.0, 5.0)
        rng = random.Random(2)
        assert all(0.0 <= dist.sample(rng) <= 1.0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            BetaReliability(0.0, 1.0)
        with pytest.raises(ValueError):
            BetaReliability.with_mean(1.0)
        with pytest.raises(ValueError):
            BetaReliability.with_mean(0.5, concentration=0.0)


class TestTwoClass:
    def test_mean_formula(self):
        dist = TwoClassReliability(good_r=0.9, faulty_r=0.1, faulty_fraction=0.25)
        assert dist.mean() == pytest.approx(0.75 * 0.9 + 0.25 * 0.1)

    def test_all_faulty(self):
        dist = TwoClassReliability(good_r=0.9, faulty_r=0.2, faulty_fraction=1.0)
        rng = random.Random(0)
        assert all(dist.sample(rng) == 0.2 for _ in range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoClassReliability(good_r=1.2, faulty_r=0.1, faulty_fraction=0.5)
        with pytest.raises(ValueError):
            TwoClassReliability(good_r=0.9, faulty_r=0.1, faulty_fraction=-0.1)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_property_mean_within_class_range(self, good, faulty, fraction):
        dist = TwoClassReliability(good_r=good, faulty_r=faulty, faulty_fraction=fraction)
        lo, hi = min(good, faulty), max(good, faulty)
        assert lo - 1e-12 <= dist.mean() <= hi + 1e-12


class TestDiscrete:
    def test_mean(self):
        dist = DiscreteReliability(levels=[0.5, 1.0], weights=[1.0, 1.0])
        assert dist.mean() == pytest.approx(0.75)

    def test_single_level(self):
        dist = DiscreteReliability(levels=[0.6], weights=[2.0])
        assert dist.sample(random.Random(0)) == 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteReliability(levels=[], weights=[])
        with pytest.raises(ValueError):
            DiscreteReliability(levels=[0.5], weights=[0.5, 0.5])
        with pytest.raises(ValueError):
            DiscreteReliability(levels=[1.5], weights=[1.0])
        with pytest.raises(ValueError):
            DiscreteReliability(levels=[0.5], weights=[-1.0])
