"""Unit tests for vote-tallying helpers."""

import pytest

from repro.core.types import JobOutcome, VoteState
from repro.core.voting import (
    consensus_reached,
    majority_value,
    plurality_value,
    tally_results,
    unanimous_value,
)


class TestTallyResults:
    def test_folds_outcomes(self):
        state = tally_results(
            [JobOutcome("a"), JobOutcome("a"), JobOutcome("b"), JobOutcome(None)]
        )
        assert state.counts == {"a": 2, "b": 1}
        assert state.no_response == 1


class TestMajority:
    def test_reaches_majority(self):
        vote = VoteState.from_counts({"x": 2, "y": 1})
        assert majority_value(vote, 3) == "x"
        assert consensus_reached(vote, 3)

    def test_below_majority_is_none(self):
        vote = VoteState.from_counts({"x": 1, "y": 1})
        assert majority_value(vote, 3) is None
        assert not consensus_reached(vote, 3)

    def test_majority_threshold_is_half_of_k_not_responses(self):
        # 5 votes for x out of 9 planned: majority of k=9 is 5.
        vote = VoteState.from_counts({"x": 5, "y": 4})
        assert majority_value(vote, 9) == "x"
        assert majority_value(vote, 11) is None

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            majority_value(VoteState(), 0)

    def test_empty_vote_no_majority(self):
        assert majority_value(VoteState(), 3) is None


class TestPlurality:
    def test_requires_strict_lead(self):
        tied = VoteState.from_counts({"x": 2, "y": 2})
        assert plurality_value(tied) is None
        ahead = VoteState.from_counts({"x": 3, "y": 2})
        assert plurality_value(ahead) == "x"

    def test_min_lead_parameter(self):
        vote = VoteState.from_counts({"x": 4, "y": 2})
        assert plurality_value(vote, min_lead=2) == "x"
        assert plurality_value(vote, min_lead=3) is None

    def test_min_lead_validation(self):
        with pytest.raises(ValueError):
            plurality_value(VoteState(), min_lead=0)

    def test_empty_vote(self):
        assert plurality_value(VoteState()) is None

    def test_plurality_without_majority(self):
        """Section 5.3: with non-colluding failures the correct answer can
        lead by plurality even when it lacks a majority."""
        vote = VoteState.from_counts({4: 3, 17: 1, 23: 1, 99: 1})
        assert plurality_value(vote, min_lead=2) == 4
        assert majority_value(vote, 7) is None


class TestUnanimous:
    def test_unanimous(self):
        assert unanimous_value(VoteState.from_counts({"x": 4})) == "x"

    def test_not_unanimous(self):
        assert unanimous_value(VoteState.from_counts({"x": 4, "y": 1})) is None

    def test_empty(self):
        assert unanimous_value(VoteState()) is None
