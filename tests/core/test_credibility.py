# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for the credibility-based fault-tolerance comparator."""

import random

import pytest

from repro.core.credibility import CredibilityManager, CredibilityStrategy
from repro.core.runner import run_task
from repro.core.types import JobOutcome, TaskVerdict, VoteState


def build(target=0.99, f=0.3):
    manager = CredibilityManager(assumed_fault_fraction=f)
    return manager, CredibilityStrategy(manager, target=target)


class TestCredibilityManager:
    def test_new_node_credibility(self):
        manager = CredibilityManager(assumed_fault_fraction=0.3)
        assert manager.node_credibility(1) == pytest.approx(0.7)

    def test_credibility_grows_with_spot_checks(self):
        manager = CredibilityManager(assumed_fault_fraction=0.3)
        manager.spot_check(1, passed=True)
        manager.spot_check(1, passed=True)
        assert manager.node_credibility(1) == pytest.approx(1.0 - 0.3 / 3)

    def test_failed_spot_check_blacklists(self):
        manager = CredibilityManager()
        manager.spot_check(1, passed=False)
        assert manager.is_blacklisted(1)
        assert manager.node_credibility(1) == 0.5
        assert manager.blacklist_events == 1

    def test_whitewashing_resets_reputation(self):
        """A blacklisted node that rejoins under a new id is fresh again --
        the weakness Section 5.1 calls out."""
        manager = CredibilityManager(assumed_fault_fraction=0.3)
        manager.spot_check(1, passed=False)
        manager.forget(1)
        # Same physical machine, new identity 2: back to default trust.
        assert manager.node_credibility(2) == pytest.approx(0.7)
        assert not manager.is_blacklisted(2)

    def test_group_credibility_reduces_to_q(self):
        """With uniform credibilities the group formula is the paper's q."""
        from repro.core.confidence import confidence

        manager = CredibilityManager(assumed_fault_fraction=0.3)
        supporters = [10, 11, 12]  # all new nodes: credibility 0.7
        dissenters = [13]
        assert manager.group_credibility(supporters, dissenters) == pytest.approx(
            confidence(0.7, 3, 1)
        )

    def test_group_credibility_weights_trusted_nodes_more(self):
        manager = CredibilityManager(assumed_fault_fraction=0.3)
        for _ in range(20):
            manager.spot_check(1, passed=True)
        trusted = manager.group_credibility([1], [2])
        fresh = manager.group_credibility([3], [2])
        assert trusted > fresh

    def test_validation(self):
        with pytest.raises(ValueError):
            CredibilityManager(assumed_fault_fraction=0.0)
        with pytest.raises(ValueError):
            CredibilityManager(spot_check_rate=1.0)


class TestCredibilityStrategy:
    def test_accepts_once_target_reached(self):
        manager, strategy = build(target=0.9)
        # Three fresh supporters (0.7 each) vs nobody: q = 0.7^3/(0.7^3+0.3^3)
        # = 0.927 >= 0.9.
        script = [JobOutcome(value=True, node_id=i) for i in range(3)]
        vote = VoteState()
        for i, outcome in enumerate(script):
            strategy.record_outcome(0, outcome)
            vote.record(outcome)
            decision = strategy.decide(vote)
            if decision.done:
                assert i == 2
                assert decision.accepted is True
                return
        pytest.fail("strategy never accepted")

    def test_dispatches_one_at_a_time(self):
        manager, strategy = build(target=0.999)
        vote = VoteState()
        outcome = JobOutcome(value=True, node_id=1)
        strategy.record_outcome(0, outcome)
        vote.record(outcome)
        decision = strategy.decide(vote)
        assert not decision.done
        assert decision.more_jobs == 1

    def test_max_group_forces_acceptance(self):
        manager = CredibilityManager(assumed_fault_fraction=0.49)
        strategy = CredibilityStrategy(manager, target=0.9999999, max_group=4)
        vote = VoteState()
        for i in range(4):
            outcome = JobOutcome(value=(i % 2 == 0), node_id=i)
            strategy.record_outcome(0, outcome)
            vote.record(outcome)
        decision = strategy.decide(vote)
        assert decision.done

    def test_task_finished_clears_state(self):
        manager, strategy = build()
        strategy.record_outcome(5, JobOutcome(value=True, node_id=1))
        strategy.task_finished(5, TaskVerdict(value=True, correct=None, jobs_used=1, waves=1))
        assert 5 not in strategy._task_votes

    def test_run_task_integration(self):
        rng = random.Random(3)
        manager, strategy = build(target=0.97)
        from repro.core.runner import bernoulli_source

        verdict = run_task(strategy, bernoulli_source(rng, 0.8), true_value=True, task_id=1)
        assert verdict.jobs_used >= 1
        assert verdict.value in (True, False)

    def test_validation(self):
        manager = CredibilityManager()
        with pytest.raises(ValueError):
            CredibilityStrategy(manager, target=0.4)
