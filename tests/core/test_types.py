"""Unit tests for VoteState, Decision, and JobOutcome."""

import pytest

from repro.core.types import Decision, JobOutcome, TaskVerdict, VoteState


class TestVoteState:
    def test_empty_state(self):
        vote = VoteState()
        assert vote.leader is None
        assert vote.leader_count == 0
        assert vote.runner_up_count == 0
        assert vote.margin == 0
        assert vote.responses == 0

    def test_record_counts_values(self):
        vote = VoteState()
        for value in ["x", "x", "y"]:
            vote.record_value(value)
        assert vote.leader == "x"
        assert vote.leader_count == 2
        assert vote.runner_up_count == 1
        assert vote.margin == 1
        assert vote.responses == 3

    def test_no_response_tracked_separately(self):
        vote = VoteState()
        vote.record_value(None)
        vote.record_value("x")
        assert vote.no_response == 1
        assert vote.responses == 1
        assert vote.total_completed == 2

    def test_outstanding_decrements_on_record(self):
        vote = VoteState()
        vote.dispatched(3)
        assert vote.outstanding == 3
        vote.record_value("x")
        assert vote.outstanding == 2

    def test_dispatch_negative_rejected(self):
        with pytest.raises(ValueError):
            VoteState().dispatched(-1)

    def test_ranked_is_deterministic_on_ties(self):
        vote = VoteState.from_counts({"b": 2, "a": 2})
        assert vote.ranked() == (("a", 2), ("b", 2))
        assert vote.margin == 0

    def test_three_values_margin_uses_runner_up(self):
        vote = VoteState.from_counts({"x": 5, "y": 3, "z": 1})
        assert vote.leader == "x"
        assert vote.runner_up_count == 3
        assert vote.margin == 2

    def test_binary_constructor(self):
        vote = VoteState.binary(4, 2)
        assert vote.leader is True
        assert vote.leader_count == 4
        assert vote.runner_up_count == 2

    def test_binary_zero_counts_omitted(self):
        vote = VoteState.binary(3, 0)
        assert vote.counts == {True: 3}

    def test_copy_is_independent(self):
        vote = VoteState.binary(1, 0)
        clone = vote.copy()
        clone.record_value(False)
        assert vote.responses == 1
        assert clone.responses == 2


class TestDecision:
    def test_dispatch(self):
        d = Decision.dispatch(3)
        assert d.more_jobs == 3
        assert not d.done

    def test_accept(self):
        d = Decision.accept("value")
        assert d.done
        assert d.accepted == "value"
        assert d.more_jobs == 0

    def test_dispatch_zero_rejected(self):
        with pytest.raises(ValueError):
            Decision.dispatch(0)

    def test_cannot_accept_and_dispatch(self):
        with pytest.raises(ValueError):
            Decision(more_jobs=2, accepted="x", done=True)


class TestJobOutcome:
    def test_responded_flag(self):
        assert JobOutcome(value="x").responded
        assert not JobOutcome(value=None).responded

    def test_frozen(self):
        outcome = JobOutcome(value="x", node_id=3)
        with pytest.raises(AttributeError):
            outcome.value = "y"


class TestTaskVerdict:
    def test_fields(self):
        verdict = TaskVerdict(value=True, correct=True, jobs_used=4, waves=1)
        assert verdict.jobs_used == 4
        assert verdict.response_time is None
