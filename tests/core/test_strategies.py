"""Unit tests for the three paper strategies against scripted result
streams, mirroring the walk-throughs in Section 3."""

import pytest

from repro.core import (
    IterativeRedundancy,
    NoRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.core.runner import run_task, scripted_source
from repro.core.types import Decision, VoteState

A, B = True, False  # the two values of the binary Byzantine model


class TestTraditional:
    def test_k_must_be_odd_positive(self):
        for bad in (0, -3, 2, 4):
            with pytest.raises(ValueError):
                TraditionalRedundancy(bad)

    def test_initial_wave_is_k(self):
        assert TraditionalRedundancy(19).initial_jobs() == 19

    def test_accepts_majority_after_single_wave(self):
        verdict = run_task(
            TraditionalRedundancy(5), scripted_source([A, B, A, B, A]), true_value=A
        )
        assert verdict.value is A
        assert verdict.correct
        assert verdict.jobs_used == 5
        assert verdict.waves == 1

    def test_majority_of_wrong_answers_fails(self):
        verdict = run_task(
            TraditionalRedundancy(3), scripted_source([B, B, A]), true_value=A
        )
        assert verdict.value is B
        assert not verdict.correct

    def test_cost_is_always_k(self):
        for script in ([A, A, A], [B, B, B], [A, B, A]):
            verdict = run_task(TraditionalRedundancy(3), scripted_source(script))
            assert verdict.jobs_used == 3

    def test_silent_failures_are_replaced(self):
        # Two timeouts: the server re-issues to keep k counted responses.
        verdict = run_task(
            TraditionalRedundancy(3), scripted_source([A, None, None, A, B])
        )
        assert verdict.value is A
        assert verdict.jobs_used == 5
        assert verdict.waves == 2

    def test_max_total_jobs(self):
        assert TraditionalRedundancy(7).max_total_jobs() == 7


class TestNoRedundancy:
    def test_single_job(self):
        verdict = run_task(NoRedundancy(), scripted_source([B]), true_value=A)
        assert verdict.jobs_used == 1
        assert not verdict.correct

    def test_retries_on_silence(self):
        verdict = run_task(NoRedundancy(), scripted_source([None, A]))
        assert verdict.value is A
        assert verdict.jobs_used == 2


class TestProgressive:
    def test_initial_wave_is_consensus_size(self):
        assert ProgressiveRedundancy(19).initial_jobs() == 10
        assert ProgressiveRedundancy(3).initial_jobs() == 2

    def test_unanimous_first_wave_finishes_early(self):
        # k=5: consensus 3; three agreeing jobs decide at cost 3, not 5.
        verdict = run_task(ProgressiveRedundancy(5), scripted_source([A, A, A]))
        assert verdict.value is A
        assert verdict.jobs_used == 3
        assert verdict.waves == 1

    def test_split_wave_tops_up_by_deficit(self):
        # k=5, consensus 3: wave 1 = [A, B, A] -> a=2, deficit 1.
        verdict = run_task(ProgressiveRedundancy(5), scripted_source([A, B, A, A]))
        assert verdict.value is A
        assert verdict.jobs_used == 4
        assert verdict.waves == 2

    def test_worst_case_uses_exactly_k_responses(self):
        # k=5: A B A B B -> a=2,b=3 after... trace: wave1 [A,B,A]: a=2,b=1;
        # wave2 [B]: 2-2; wave3 [B]: b=3 -> accept B with 5 jobs.
        verdict = run_task(
            ProgressiveRedundancy(5), scripted_source([A, B, A, B, B]), true_value=A
        )
        assert verdict.value is B
        assert verdict.jobs_used == 5
        assert verdict.waves == 3

    def test_decide_accepts_at_consensus(self):
        strategy = ProgressiveRedundancy(5)
        vote = VoteState.from_counts({A: 3, B: 2})
        decision = strategy.decide(vote)
        assert decision.done and decision.accepted is A

    def test_decide_dispatches_leader_deficit(self):
        strategy = ProgressiveRedundancy(9)  # consensus 5
        vote = VoteState.from_counts({A: 3, B: 2})
        assert strategy.decide(vote).more_jobs == 2

    def test_all_silent_first_wave_redispatches_fully(self):
        strategy = ProgressiveRedundancy(5)
        vote = VoteState()
        vote.record_value(None)
        vote.record_value(None)
        vote.record_value(None)
        assert strategy.decide(vote).more_jobs == 3

    def test_wave_bound(self):
        assert ProgressiveRedundancy(19).max_waves() == 10


class TestIterative:
    def test_d_must_be_positive(self):
        for bad in (0, -1):
            with pytest.raises(ValueError):
                IterativeRedundancy(bad)

    def test_initial_wave_is_d(self):
        assert IterativeRedundancy(4).initial_jobs() == 4

    def test_unanimous_first_wave_accepts(self):
        verdict = run_task(IterativeRedundancy(4), scripted_source([A] * 4))
        assert verdict.value is A
        assert verdict.jobs_used == 4
        assert verdict.waves == 1

    def test_paper_walkthrough_6_margin(self):
        """Paper: seeking 6 unanimous results but getting 4-2 leads to 4
        additional jobs toward an 8-to-2 majority."""
        strategy = IterativeRedundancy(6)
        vote = VoteState.from_counts({A: 4, B: 2})
        decision = strategy.decide(vote)
        assert decision.more_jobs == 4

    def test_three_one_split_dispatches_two(self):
        """Paper example: three agreeing plus one disagreeing result means
        at least two more agreeing jobs are needed (margin 4)."""
        strategy = IterativeRedundancy(4)
        vote = VoteState.from_counts({A: 3, B: 1})
        assert strategy.decide(vote).more_jobs == 2

    def test_terminates_with_exact_margin(self):
        # d=2: A B B A A A -> margins 0, -1... trace: wave1 [A,B]: 1-1;
        # wave2 [B,A]: 2-2; wave3 [A,A]: 4-2 margin 2 -> accept.
        verdict = run_task(
            IterativeRedundancy(2), scripted_source([A, B, B, A, A, A])
        )
        assert verdict.value is A
        assert verdict.jobs_used == 6
        assert verdict.waves == 3

    def test_wrong_value_can_win(self):
        verdict = run_task(
            IterativeRedundancy(2), scripted_source([B, B]), true_value=A
        )
        assert verdict.value is B
        assert not verdict.correct

    def test_minority_swap_matches_pseudocode(self):
        # Figure 4 swaps a and b so a is always the leader.
        strategy = IterativeRedundancy(3)
        vote = VoteState.from_counts({A: 1, B: 2})
        decision = strategy.decide(vote)
        assert not decision.done
        assert decision.more_jobs == 2  # d - (b - a) = 3 - 1

    def test_unbounded(self):
        assert IterativeRedundancy(5).max_total_jobs() is None

    def test_for_target_uses_required_margin(self):
        strategy = IterativeRedundancy.for_target(0.7, 0.967)
        assert strategy.d == 4

    def test_all_silent_redispatches(self):
        strategy = IterativeRedundancy(3)
        vote = VoteState()
        for _ in range(3):
            vote.record_value(None)
        assert strategy.decide(vote).more_jobs == 3


class TestMarginParity:
    """Accepted margin equals d exactly (never overshoots): each wave tops
    the potential margin up to d, so acceptance can only land on d."""

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_margin_at_acceptance_is_exactly_d(self, d):
        import random

        from repro.core.runner import bernoulli_source
        from repro.core.strategy import RedundancyStrategy
        from repro.core.types import VoteState

        rng = random.Random(d)
        for _ in range(200):
            strategy = IterativeRedundancy(d)
            vote = VoteState()
            source = bernoulli_source(rng, 0.6)
            index = 0
            pending = strategy.initial_jobs()
            while True:
                vote.dispatched(pending)
                for _ in range(pending):
                    vote.record(source(index))
                    index += 1
                decision = strategy.decide(vote)
                if decision.done:
                    assert vote.margin == d
                    break
                pending = decision.more_jobs
