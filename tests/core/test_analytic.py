# reprolint: disable-file=RL003 -- asserting that two closed-form evaluations are the *same* expression is the point
"""The analytic fast path: closed-form self-consistency and, the part
that earns it a place in sweeps, cross-validation against full DES
replications.

Tolerances (documented in ``docs/performance.md``): in the idealised
regime the equations model -- homogeneous reliability, no churn, ample
nodes so the system is unloaded -- simulation means over thousands of
tasks agree with the closed forms within

* reliability: +-0.02 absolute (binomial noise at 2000 tasks),
* cost factor: +-5% relative,
* response time: +-10% relative (the analytic model assumes every wave
  starts instantly; ample nodes make that nearly true).

``max_jobs`` is not cross-validated numerically: the simulation reports
the realised maximum over its tasks while the analytic value is the
0.999 quantile of the per-task distribution -- same order, different
statistic.
"""

import pytest

from repro.core import (
    AdaptiveReplication,
    ComplexIterativeRedundancy,
    IterativeRedundancy,
    NoRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
    analysis,
    analytic_prediction,
    supports_analytic,
)
from repro.core.analytic import check_analytic_overrides
from repro.experiments.common import replicate_dca

UNLOADED = dict(tasks=2000, nodes=4000, reliability=0.7, replications=2, seed=7)


class TestClosedFormConsistency:
    def test_traditional_matches_equations_1_and_2(self):
        p = analytic_prediction(TraditionalRedundancy(5), 0.7)
        assert p.cost_factor == analysis.traditional_cost(5)
        assert p.reliability == analysis.traditional_reliability(0.7, 5)
        assert p.max_jobs == 5

    def test_progressive_matches_equations_3_and_4(self):
        p = analytic_prediction(ProgressiveRedundancy(7), 0.7)
        assert p.cost_factor == analysis.progressive_cost(0.7, 7)
        assert p.reliability == analysis.traditional_reliability(0.7, 7)
        assert p.max_jobs == 7

    def test_iterative_matches_equations_5_and_6(self):
        p = analytic_prediction(IterativeRedundancy(3), 0.7)
        assert p.cost_factor == analysis.iterative_cost(0.7, 3)
        assert p.reliability == analysis.iterative_reliability(0.7, 3)
        # The 0.999 quantile of an unbounded distribution is finite and
        # at least the minimum possible total (d jobs).
        assert p.max_jobs >= 3

    def test_complex_iterative_equals_simple_at_equivalent_margin(self):
        """Theorem 1, analytically: the r-aware algorithm's prediction is
        the margin algorithm's at ``equivalent_margin``."""
        complex_strategy = ComplexIterativeRedundancy(0.7, 0.967)
        simple = IterativeRedundancy(complex_strategy.equivalent_margin)
        p_complex = analytic_prediction(complex_strategy, 0.7)
        p_simple = analytic_prediction(simple, 0.7)
        assert p_complex.reliability == p_simple.reliability
        assert p_complex.cost_factor == p_simple.cost_factor

    def test_no_redundancy_is_the_k1_degenerate_case(self):
        p = analytic_prediction(NoRedundancy(), 0.7)
        assert p.reliability == pytest.approx(0.7)
        assert p.cost_factor == 1.0
        assert p.max_jobs == 1

    def test_supports_analytic_classification(self):
        assert supports_analytic(TraditionalRedundancy(3))
        assert supports_analytic(IterativeRedundancy(2))
        assert not supports_analytic(AdaptiveReplication())

    def test_unsupported_strategy_rejected(self):
        with pytest.raises(ValueError, match="no closed form"):
            analytic_prediction(AdaptiveReplication(), 0.7)

    def test_unsupported_override_rejected(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            check_analytic_overrides({"arrival_rate": 0.5})

    def test_zero_valued_and_duration_overrides_accepted(self):
        check_analytic_overrides(
            {"arrival_rate": 0.0, "duration_low": 0.25, "duration_high": 2.0}
        )


class TestCrossValidationAgainstSimulation:
    """mode="analytic" must predict what mode="sim" measures."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: TraditionalRedundancy(5),
            lambda: ProgressiveRedundancy(7),
            lambda: IterativeRedundancy(3),
        ],
        ids=["TR5", "PR7", "IR3"],
    )
    def test_analytic_matches_unloaded_simulation(self, factory):
        sim = replicate_dca(factory, mode="sim", **UNLOADED)
        ana = replicate_dca(factory, mode="analytic", **UNLOADED)
        assert ana.mean_reliability == pytest.approx(
            sim.mean_reliability, abs=0.02
        )
        assert ana.mean_cost == pytest.approx(sim.mean_cost, rel=0.05)
        assert ana.mean_response_time == pytest.approx(
            sim.mean_response_time, rel=0.10
        )
        # Zero error bars: the closed form is exact, not sampled.
        assert ana.reliability_err == 0.0
        assert ana.cost_err == 0.0

    def test_analytic_mode_rejects_churned_configuration(self):
        with pytest.raises(ValueError, match="departure_rate"):
            replicate_dca(
                lambda: IterativeRedundancy(2),
                mode="analytic",
                departure_rate=0.5,
                **UNLOADED,
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            replicate_dca(lambda: IterativeRedundancy(2), mode="magic", **UNLOADED)
