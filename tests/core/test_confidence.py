# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Unit and property tests for the confidence math (q, d, Theorems 1-2)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.confidence import (
    achievable_reliability,
    confidence,
    margin_confidence,
    required_agreement,
    required_margin,
)

reliabilities = st.floats(min_value=0.01, max_value=0.99)
high_reliabilities = st.floats(min_value=0.51, max_value=0.999)
targets = st.floats(min_value=0.501, max_value=0.9999)


def q_direct(r: float, a: int, b: int) -> float:
    """The paper's formula, computed literally (reference implementation)."""
    num = r**a * (1 - r) ** b
    den = num + (1 - r) ** a * r**b
    return num / den


class TestConfidence:
    def test_matches_paper_example_single_job(self):
        # "if the task server distributes only one job, there is a
        #  0.7 / (0.7 + 0.3) = 0.7 chance that the result is correct"
        assert confidence(0.7, 1, 0) == pytest.approx(0.7)

    def test_matches_paper_example_four_jobs(self):
        # 0.7^4 / (0.7^4 + 0.3^4); the paper rounds this to "> 0.97",
        # the exact value is 0.96736...
        expected = 0.7**4 / (0.7**4 + 0.3**4)
        assert confidence(0.7, 4, 0) == pytest.approx(expected)
        assert 0.967 < confidence(0.7, 4, 0) < 0.968

    def test_symmetric_counts_give_half(self):
        assert confidence(0.7, 3, 3) == pytest.approx(0.5)

    def test_minority_side_below_half(self):
        assert confidence(0.7, 1, 3) < 0.5

    def test_rejects_degenerate_r(self):
        for r in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                confidence(r, 1, 0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            confidence(0.7, -1, 0)

    @given(reliabilities, st.integers(0, 50), st.integers(0, 50))
    def test_property_matches_direct_formula(self, r, a, b):
        assert confidence(r, a, b) == pytest.approx(q_direct(r, a, b), rel=1e-9)

    @given(reliabilities, st.integers(0, 30), st.integers(0, 30), st.integers(0, 30))
    def test_property_theorem_1_invariance(self, r, a, b, j):
        """Theorem 1: q(r, a, b) = q(r, a+j, b+j)."""
        assert confidence(r, a, b) == pytest.approx(
            confidence(r, a + j, b + j), rel=1e-12
        )

    @given(reliabilities, st.integers(-40, 40))
    def test_property_complement(self, r, d):
        """Confidence of one side plus the other is 1."""
        assert margin_confidence(r, d) + margin_confidence(r, -d) == pytest.approx(1.0)

    @given(reliabilities, st.integers(-2000, 2000))
    def test_property_complement_within_one_ulp(self, r, d):
        """The expm1-based kernel makes the pair sum to 1 within 1 ulp,
        even for margins far beyond any experiment's."""
        total = margin_confidence(r, d) + margin_confidence(r, -d)
        assert abs(total - 1.0) <= math.ulp(1.0)

    @given(reliabilities, st.integers(0, 100), st.integers(0, 100))
    def test_property_confidence_complement_within_one_ulp(self, r, a, b):
        """Same guarantee through the public q(r, a, b) surface."""
        total = confidence(r, a, b) + confidence(r, b, a)
        assert abs(total - 1.0) <= math.ulp(1.0)

    def test_memoized_kernel_returns_identical_object_semantics(self):
        """Memoization must be observationally invisible: repeated calls
        give the exact same float, and validation still runs first."""
        first = margin_confidence(0.73, 5)
        second = margin_confidence(0.73, 5)
        assert first == second
        with pytest.raises(ValueError):
            margin_confidence(1.0, 5)

    @given(high_reliabilities, st.integers(0, 40))
    def test_property_monotone_in_margin(self, r, d):
        assert margin_confidence(r, d + 1) >= margin_confidence(r, d)

    def test_extreme_margin_is_stable(self):
        assert margin_confidence(0.9, 10_000) == pytest.approx(1.0)
        assert margin_confidence(0.9, -10_000) == pytest.approx(0.0, abs=1e-300)

    def test_paper_106_to_100_equals_6_to_0(self):
        """The paper's illustration: a 106-to-100 split instills the same
        confidence as a 6-to-0 split."""
        assert confidence(0.7, 106, 100) == pytest.approx(confidence(0.7, 6, 0))


class TestRequiredMargin:
    def test_paper_example_d_for_097(self):
        # required_margin is exact: q(0.7, 4, 0) = 0.9674 < 0.97, so the
        # strict answer is 5.  (The paper rounds 0.9674 to 0.97 and uses 4;
        # the experiments honour the paper's rounding explicitly.)
        assert required_margin(0.7, 0.967) == 4
        assert required_margin(0.7, 0.97) == 5

    def test_target_half_or_below_needs_zero(self):
        assert required_margin(0.7, 0.5) == 0
        assert required_margin(0.7, 0.3) == 0

    def test_unreachable_at_low_r(self):
        with pytest.raises(ValueError):
            required_margin(0.5, 0.9)
        with pytest.raises(ValueError):
            required_margin(0.4, 0.9)

    def test_invalid_target(self):
        for target in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                required_margin(0.7, target)

    @given(high_reliabilities, targets)
    def test_property_minimality(self, r, target):
        """d is the *minimum* margin meeting the target."""
        d = required_margin(r, target)
        assert margin_confidence(r, d) >= target
        if d > 0:
            assert margin_confidence(r, d - 1) < target

    @given(high_reliabilities, targets, st.integers(0, 20))
    def test_property_required_agreement_is_margin_plus_b(self, r, target, b):
        """Theorem 1 corollary: d(r, R, b) = d(r, R, 0) + b."""
        assert required_agreement(r, target, b) == required_margin(r, target) + b


class TestAchievableReliability:
    def test_matches_equation_6(self):
        r, d = 0.7, 4
        expected = r**d / (r**d + (1 - r) ** d)
        assert achievable_reliability(r, d) == pytest.approx(expected)

    def test_zero_margin_is_coin_flip(self):
        assert achievable_reliability(0.7, 0) == pytest.approx(0.5)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            achievable_reliability(0.7, -1)


class TestTheorem2:
    """Theorem 2: for a Bernoulli X, observing b + d heads out of 2b + d
    samples yields a P(X biased to heads) that depends only on d."""

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(0, 15),
    )
    def test_posterior_depends_only_on_margin(self, p, d, b1, b2):
        def posterior(b):
            heads = b + d
            tails = b
            # P(biased-to-heads | data) under the two-point prior used in
            # the theorem's proof.
            like_heads = p**heads * (1 - p) ** tails
            like_tails = p**tails * (1 - p) ** heads
            return like_heads / (like_heads + like_tails)

        assert posterior(b1) == pytest.approx(posterior(b2), rel=1e-9)

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(0, 30))
    def test_closed_form_from_proof(self, p, d):
        """The proof's final form: c = P(X)^d / (P(X)^d + (1-P(X))^d)."""
        heads = 10 + d
        tails = 10
        like_heads = p**heads * (1 - p) ** tails
        like_tails = p**tails * (1 - p) ** heads
        posterior = like_heads / (like_heads + like_tails)
        closed = p**d / (p**d + (1 - p) ** d)
        assert posterior == pytest.approx(closed, rel=1e-9)
