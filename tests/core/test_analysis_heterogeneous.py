"""Tests for the Section 5.3 heterogeneous-reliability generalisations and
the iterative job-count tail quantiles."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ProgressiveRedundancy, analysis
from repro.core.runner import run_task
from repro.core.types import JobOutcome


class TestProgressiveHeterogeneous:
    def test_reduces_to_homogeneous(self):
        for k in (3, 7, 13):
            assert analysis.progressive_cost_heterogeneous([0.7] * k) == pytest.approx(
                analysis.progressive_cost(0.7, k), rel=1e-9
            )

    def test_perfect_early_jobs_minimise_cost(self):
        """If the first (k+1)/2 jobs are near-perfect, consensus lands in
        the first wave and cost approaches the consensus size."""
        k = 9
        reliabilities = [0.999999] * 5 + [0.7] * 4
        cost = analysis.progressive_cost_heterogeneous(reliabilities)
        assert cost == pytest.approx(5.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            analysis.progressive_cost_heterogeneous([0.7, 0.7])  # even k
        with pytest.raises(ValueError):
            analysis.progressive_cost_heterogeneous([0.7, 1.5, 0.7])

    @given(st.lists(st.floats(min_value=0.1, max_value=0.9), min_size=3, max_size=11))
    @settings(max_examples=30, deadline=None)
    def test_property_bounds(self, rs):
        if len(rs) % 2 == 0:
            rs = rs + [0.5]
        k = len(rs)
        cost = analysis.progressive_cost_heterogeneous(rs)
        assert (k + 1) / 2 - 1e-9 <= cost <= k + 1e-9

    @given(
        st.lists(st.floats(min_value=0.3, max_value=0.95), min_size=5, max_size=9),
        st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_matches_monte_carlo(self, rs, seed):
        """DP result matches direct simulation of the heterogeneous draw
        sequence."""
        if len(rs) % 2 == 0:
            rs = rs + [0.6]
        k = len(rs)
        rng = random.Random(seed)
        total = 0
        runs = 3_000
        for _ in range(runs):
            strategy = ProgressiveRedundancy(k)
            draws = iter(rs)

            def source(index, draws=draws):
                r = next(draws)
                return JobOutcome(value=rng.random() < r)

            verdict = run_task(strategy, source, true_value=True)
            total += verdict.jobs_used
        assert total / runs == pytest.approx(
            analysis.progressive_cost_heterogeneous(rs), rel=0.08
        )


class TestIterativeJobQuantile:
    def test_median_below_mean_for_skewed_distribution(self):
        """IR's job-count distribution is right-skewed: the median sits at
        or below the mean."""
        median = analysis.iterative_job_quantile(0.7, 4, 0.5)
        assert median <= analysis.iterative_cost(0.7, 4) + 1

    def test_quantiles_monotone(self):
        qs = [analysis.iterative_job_quantile(0.7, 4, q) for q in (0.5, 0.9, 0.99, 0.999)]
        assert qs == sorted(qs)
        assert qs[-1] > qs[0]

    def test_minimum_is_d(self):
        assert analysis.iterative_job_quantile(0.95, 3, 0.1) == 3

    def test_parity(self):
        """All quantiles share d's parity (totals are d + 2b)."""
        for q in (0.3, 0.6, 0.9):
            value = analysis.iterative_job_quantile(0.7, 5, q)
            assert (value - 5) % 2 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            analysis.iterative_job_quantile(0.7, 4, 0.0)
        with pytest.raises(ValueError):
            analysis.iterative_job_quantile(0.7, 4, 1.0)

    def test_matches_empirical_distribution(self):
        from repro.core import IterativeRedundancy
        from repro.core.runner import monte_carlo

        estimate = monte_carlo(lambda: IterativeRedundancy(3), 0.7, 20_000, seed=3)
        q50 = analysis.iterative_job_quantile(0.7, 3, 0.5)
        # Mean lies between the median and the 99th percentile.
        assert q50 <= estimate.cost_factor <= analysis.iterative_job_quantile(0.7, 3, 0.99)
