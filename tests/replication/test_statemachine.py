"""Tests for the replicated state machine and replica behaviours."""

import random

import pytest

from repro.replication.statemachine import (
    ByzantineReplica,
    KeyValueStateMachine,
    Replica,
)


class TestKeyValueStateMachine:
    def test_set_and_get(self):
        machine = KeyValueStateMachine()
        assert machine.apply(("set", "k", 1)) == 1
        assert machine.apply(("get", "k")) == 1
        assert machine.apply(("get", "missing")) is None

    def test_applied_counter(self):
        machine = KeyValueStateMachine()
        machine.apply(("set", "k", 1))
        machine.apply(("get", "k"))
        assert machine.applied == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            KeyValueStateMachine().apply(("frobnicate", 1))
        with pytest.raises(ValueError):
            KeyValueStateMachine().apply(())

    def test_snapshot_restore(self):
        a = KeyValueStateMachine()
        a.apply(("set", "k", 7))
        b = KeyValueStateMachine()
        b.restore(a.snapshot())
        assert b.apply(("get", "k")) == 7

    def test_determinism(self):
        """Identical command sequences produce identical states."""
        commands = [("set", i % 3, i) for i in range(20)]
        a, b = KeyValueStateMachine(), KeyValueStateMachine()
        for command in commands:
            a.apply(command)
            b.apply(command)
        assert a.snapshot() == b.snapshot()


class TestReplicas:
    def test_honest_replica_executes(self):
        replica = Replica(replica_id=1)
        rng = random.Random(0)
        replica.execute(("set", "k", 5), rng)
        assert replica.execute(("get", "k"), rng) == 5
        assert not replica.byzantine

    def test_dead_replica_returns_none(self):
        replica = Replica(replica_id=1, alive=False)
        assert replica.execute(("get", "k"), random.Random(0)) is None

    def test_byzantine_lies_on_reads(self):
        replica = ByzantineReplica(replica_id=2, lie_prob=1.0)
        rng = random.Random(0)
        replica.execute(("set", "k", 5), rng)
        value = replica.execute(("get", "k"), rng)
        assert value != 5
        assert replica.byzantine

    def test_byzantine_lies_collude(self):
        """Two liars return the same wrong answer for the same command."""
        rng = random.Random(0)
        a = ByzantineReplica(replica_id=1, lie_prob=1.0)
        b = ByzantineReplica(replica_id=2, lie_prob=1.0)
        for replica in (a, b):
            replica.execute(("set", "k", 5), rng)
        assert a.execute(("get", "k"), rng) == b.execute(("get", "k"), rng)

    def test_byzantine_applies_writes_faithfully(self):
        replica = ByzantineReplica(replica_id=1, lie_prob=0.0)
        rng = random.Random(0)
        replica.execute(("set", "k", 5), rng)
        assert replica.execute(("get", "k"), rng) == 5

    def test_lie_prob_validation(self):
        with pytest.raises(ValueError):
            ByzantineReplica(replica_id=1, lie_prob=1.5)
