"""Tests for the primary-backup group and its sizing rule."""

import math

import pytest

from repro.replication.primary_backup import (
    PrimaryBackupGroup,
    backups_for_availability,
)
from repro.sim import Simulator
from repro.sim.processes import Process, Timeout


def drive_requests(sim, group, period=0.5, horizon=200.0):
    """A client process issuing alternating writes and reads."""

    def client():
        index = 0
        while sim.now < horizon:
            yield Timeout(period)
            if index % 2 == 0:
                group.request(("set", "k", index))
            else:
                group.request(("get", "k"))
            index += 1

    Process(sim, client())


class TestSizingRule:
    def test_zero_backups_when_member_meets_target(self):
        assert backups_for_availability(0.999, 0.99) == 0

    def test_more_backups_for_stricter_targets(self):
        a = backups_for_availability(0.9, 0.99)
        b = backups_for_availability(0.9, 0.99999)
        assert b > a

    def test_closed_form(self):
        # a=0.9 -> down=0.1; target 0.999 needs (1-a)^(n+1) <= 1e-3 -> n+1=3.
        assert backups_for_availability(0.9, 0.999) == 2

    def test_group_availability_formula_holds(self):
        a, n = 0.9, 2
        group_availability = 1 - (1 - a) ** (n + 1)
        assert group_availability >= 0.999

    def test_validation(self):
        with pytest.raises(ValueError):
            backups_for_availability(1.0, 0.99)
        with pytest.raises(ValueError):
            backups_for_availability(0.9, 1.0)


class TestPrimaryBackupGroup:
    def test_no_crashes_serves_everything(self):
        sim = Simulator(seed=1)
        group = PrimaryBackupGroup(sim, backups=2, crash_rate=0.0)
        drive_requests(sim, group)
        sim.run(until=200.0)
        report = group.finish()
        assert report.requests > 0
        assert report.served == report.requests
        assert report.failovers == 0
        assert report.availability == 1.0

    def test_crashes_cause_failovers_but_service_survives(self):
        sim = Simulator(seed=2)
        group = PrimaryBackupGroup(
            sim, backups=3, crash_rate=0.05, failover_time=1.0, repair_time=2.0
        )
        drive_requests(sim, group, horizon=400.0)
        sim.run(until=400.0)
        report = group.finish()
        assert report.failovers > 5
        assert report.served_fraction > 0.9
        assert 0.9 < report.availability < 1.0

    def test_failover_window_rejects_requests(self):
        sim = Simulator(seed=3)
        group = PrimaryBackupGroup(
            sim, backups=2, crash_rate=0.05, failover_time=3.0
        )
        drive_requests(sim, group, horizon=400.0)
        sim.run(until=400.0)
        report = group.finish()
        assert report.rejected_during_failover > 0

    def test_updates_in_flight_can_be_lost(self):
        sim = Simulator(seed=4)
        group = PrimaryBackupGroup(
            sim,
            backups=2,
            crash_rate=0.2,
            propagation_delay=0.4,  # wide loss window
        )
        drive_requests(sim, group, period=0.2, horizon=300.0)
        sim.run(until=300.0)
        report = group.finish()
        assert report.updates_lost > 0

    def test_promoted_backup_holds_replicated_state(self):
        sim = Simulator(seed=5)
        group = PrimaryBackupGroup(sim, backups=1, crash_rate=0.0, propagation_delay=0.1)
        group.request(("set", "k", 99))
        sim.run(until=1.0)  # propagation completes
        group._on_primary_crash(None)  # force a crash deterministically
        sim.run(until=5.0)
        assert group.request(("get", "k")) == 99

    def test_zero_backups_total_loss_and_recovery(self):
        sim = Simulator(seed=6)
        group = PrimaryBackupGroup(
            sim, backups=0, crash_rate=0.0, repair_time=5.0
        )
        group.request(("set", "k", 1))
        group._on_primary_crash(None)
        assert not group.available
        sim.run(until=10.0)
        report = group.finish()
        assert group.available
        assert report.downtime >= 5.0
        # State is lost with no backups: fresh machine.
        assert group.request(("get", "k")) is None

    def test_more_backups_higher_availability(self):
        def availability(backups, seed):
            sim = Simulator(seed=seed)
            group = PrimaryBackupGroup(
                sim, backups=backups, crash_rate=0.1, failover_time=1.0, repair_time=3.0
            )
            drive_requests(sim, group, horizon=600.0)
            sim.run(until=600.0)
            return group.finish().availability

        thin = sum(availability(0, s) for s in range(3)) / 3
        thick = sum(availability(3, s) for s in range(3)) / 3
        assert thick > thin

    def test_validation(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            PrimaryBackupGroup(sim, backups=-1)
        with pytest.raises(ValueError):
            PrimaryBackupGroup(sim, crash_rate=-0.1)
        with pytest.raises(ValueError):
            PrimaryBackupGroup(sim, repair_time=-1.0)
