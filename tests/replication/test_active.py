# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for active replication with strategy-driven read quorums."""

import random

import pytest

from repro.core import IterativeRedundancy, TraditionalRedundancy
from repro.replication.active import ActiveReplicationService
from repro.replication.statemachine import ByzantineReplica, Replica


def build_group(honest, byzantine, strategy, seed=0, lie_prob=1.0):
    replicas = [Replica(replica_id=i) for i in range(honest)]
    replicas += [
        ByzantineReplica(replica_id=honest + i, lie_prob=lie_prob)
        for i in range(byzantine)
    ]
    return ActiveReplicationService(replicas, strategy, rng=random.Random(seed))


class TestWrites:
    def test_writes_reach_all_live_replicas(self):
        service = build_group(3, 0, TraditionalRedundancy(3))
        service.write("k", 42)
        for replica in service.replicas:
            assert replica.machine.apply(("get", "k")) == 42

    def test_crashed_replica_misses_writes(self):
        service = build_group(3, 0, TraditionalRedundancy(3))
        service.crash(1)
        service.write("k", 42)
        assert service.replicas[1].machine.apply(("get", "k")) is None
        assert service.live_count == 2

    def test_crash_unknown_replica(self):
        service = build_group(2, 0, TraditionalRedundancy(3))
        with pytest.raises(KeyError):
            service.crash(99)


class TestReads:
    def test_all_honest_reads_correct(self):
        service = build_group(7, 0, IterativeRedundancy(2))
        service.write("k", "v")
        for _ in range(50):
            assert service.read("k") == "v"
        assert service.report.reliability == 1.0

    def test_iterative_consults_minimum_when_unanimous(self):
        service = build_group(9, 0, IterativeRedundancy(3))
        service.write("k", 1)
        service.read("k")
        assert service.report.replicas_consulted == 3  # one unanimous wave

    def test_disagreement_widens_the_quorum(self):
        service = build_group(6, 3, IterativeRedundancy(3), seed=4)
        service.write("k", 1)
        for _ in range(60):
            service.read("k")
        # Sometimes a liar lands in the first wave, forcing extra samples.
        assert service.report.max_consulted > 3
        assert service.report.mean_consulted < 9  # but usually far from all

    def test_outvotes_byzantine_minority(self):
        service = build_group(8, 2, IterativeRedundancy(4), seed=5)
        service.write("k", "truth")
        correct = sum(1 for _ in range(100) if service.read("k") == "truth")
        assert correct >= 97

    def test_byzantine_majority_wins_sometimes(self):
        """With liars in the majority no voting scheme can save the read
        -- the group answer follows the cartel."""
        service = build_group(2, 7, IterativeRedundancy(3), seed=6)
        service.write("k", "truth")
        wrong = sum(1 for _ in range(50) if service.read("k") != "truth")
        assert wrong > 25

    def test_group_exhaustion_settles_for_leader(self):
        service = build_group(3, 0, IterativeRedundancy(8), seed=7)
        service.write("k", 1)
        value = service.read("k")
        assert value == 1
        assert service.exhausted_reads == 1

    def test_traditional_strategy_consults_fixed_count(self):
        service = build_group(9, 0, TraditionalRedundancy(5))
        service.write("k", 1)
        for _ in range(10):
            service.read("k")
        assert service.report.mean_consulted == 5.0

    def test_needs_replicas(self):
        with pytest.raises(ValueError):
            ActiveReplicationService([], IterativeRedundancy(2))


class TestRuntimeAdaptation:
    def test_cost_tracks_lie_rate(self):
        """The IR-driven quorum spends more replicas only when liars are
        present -- the 'specify the replica count at runtime' behaviour."""
        quiet = build_group(12, 0, IterativeRedundancy(3), seed=8)
        noisy = build_group(8, 4, IterativeRedundancy(3), seed=8)
        for service in (quiet, noisy):
            service.write("k", 1)
            for _ in range(80):
                service.read("k")
        assert quiet.report.mean_consulted == pytest.approx(3.0)
        assert noisy.report.mean_consulted > quiet.report.mean_consulted
