"""Equivalence tests: :class:`CalendarQueue` vs the binary-heap
:class:`EventQueue`.

The calendar queue is selectable wherever the heap is
(``Simulator(queue="calendar")``), so the two structures must agree on
the *exact* pop order -- the full ``(time, priority, seq)`` total order,
including ties -- under pushes, cancellations, bounded pops
(``pop_due``), and compaction.  The property tests drive both queues
with identical operation sequences that respect the DES contract
(pushes never go behind the last popped time) and assert byte-identical
behavior; the end-to-end test runs the same DCA simulation on both
queue kinds and compares full reports.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IterativeRedundancy
from repro.dca import DcaConfig, run_dca
from repro.sim.events import (
    COMPACT_MIN_CANCELLED,
    CalendarQueue,
    EventQueue,
    QUEUE_KINDS,
    make_queue,
)


def _noop(event):
    pass


class TestMakeQueue:
    def test_kinds(self):
        assert isinstance(make_queue("heap"), EventQueue)
        assert isinstance(make_queue("calendar"), CalendarQueue)
        assert set(QUEUE_KINDS) == {"heap", "calendar"}

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="calendar"):
            make_queue("fibonacci")


class TestCalendarBasics:
    def test_empty_queue_is_falsy(self):
        queue = CalendarQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_pops_in_time_order(self):
        queue = CalendarQueue()
        queue.push(5.0, _noop, payload="late")
        queue.push(1.0, _noop, payload="early")
        queue.push(3.0, _noop, payload="middle")
        assert [queue.pop().payload for _ in range(3)] == [
            "early",
            "middle",
            "late",
        ]

    def test_same_time_pops_in_insertion_order(self):
        queue = CalendarQueue()
        for i in range(10):
            queue.push(2.0, _noop, payload=i)
        assert [queue.pop().payload for _ in range(10)] == list(range(10))

    def test_priority_breaks_time_ties(self):
        queue = CalendarQueue()
        queue.push(1.0, _noop, priority=5, payload="low")
        queue.push(1.0, _noop, priority=-5, payload="high")
        assert queue.pop().payload == "high"
        assert queue.pop().payload == "low"

    def test_pop_due_respects_limit(self):
        queue = CalendarQueue()
        queue.push(1.0, _noop, payload="a")
        queue.push(2.0, _noop, payload="b")
        assert queue.pop_due(1.5).payload == "a"
        assert queue.pop_due(1.5) is None
        assert len(queue) == 1
        assert queue.pop_due(None).payload == "b"

    def test_cancelled_events_are_skipped(self):
        queue = CalendarQueue()
        keep = queue.push(1.0, _noop, payload="keep")
        drop = queue.push(0.5, _noop, payload="drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_clear_resets_but_keeps_seq_monotone(self):
        queue = CalendarQueue()
        first = queue.push(1.0, _noop)
        queue.clear()
        assert len(queue) == 0
        second = queue.push(1.0, _noop)
        assert second.seq > first.seq

    def test_growth_and_shrink_preserve_order(self):
        # Push enough to force several ring doublings, then drain past
        # the shrink threshold; order must stay exact throughout.
        queue = CalendarQueue()
        times = [((i * 7919) % 1000) / 10.0 for i in range(2000)]
        for t in times:
            queue.push(t, _noop, payload=t)
        popped = [queue.pop().payload for _ in range(2000)]
        assert popped == sorted(times)

    def test_events_at_infinity_are_legal_and_pop_last(self):
        # An infinite inter-event delay is the model's "never" (e.g. an
        # expovariate draw under a vanishing churn rate).  The heap
        # handles it natively; the calendar must too -- found by the
        # churn-config property test below.
        inf = float("inf")
        queue = CalendarQueue()
        never = queue.push(inf, _noop, payload="never")
        queue.push(1.0, _noop, payload="soon")
        queue.push(2.0, _noop, payload="later")
        # Resizing with an inf entry pending must not crash either.
        for index in range(40):
            queue.push(3.0 + index, _noop, payload=index)
        assert queue.pop().payload == "soon"
        assert queue.pop().payload == "later"
        for _ in range(40):
            queue.pop()
        assert queue.peek_time() == inf
        assert queue.pop() is never
        assert queue.pop() is None

    def test_mass_cancellation_triggers_compaction(self):
        queue = CalendarQueue()
        events = [queue.push(float(i), _noop) for i in range(4 * COMPACT_MIN_CANCELLED)]
        before = queue.compactions
        for event in events[: 3 * COMPACT_MIN_CANCELLED]:
            queue.cancel(event)
        assert queue.compactions > before
        survivors = [queue.pop() for _ in range(COMPACT_MIN_CANCELLED)]
        assert survivors == events[3 * COMPACT_MIN_CANCELLED :]
        assert queue.pop() is None


#: One property-test operation: (opcode, operand).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "push_tie", "pop", "pop_due", "peek", "cancel"]),
        st.integers(min_value=0, max_value=200),
    ),
    min_size=1,
    max_size=120,
)


def _drive(queue, ops):
    """Run one op sequence; returns the observable trace.

    Pushes are scheduled at ``now + delta`` (``now`` = last popped
    time), honoring the DES contract that nothing is scheduled in the
    past; ``push_tie`` schedules exactly at ``now`` to stress tie
    handling.  Cancels target a pseudo-randomly chosen live handle
    (deterministically -- same choice for both queues).
    """
    trace = []
    now = 0.0
    live = []
    for index, (op, operand) in enumerate(ops):
        if op == "push":
            event = queue.push(now + operand / 7.0, _noop, payload=index)
            live.append(event)
            trace.append(("len", len(queue)))
        elif op == "push_tie":
            event = queue.push(now, _noop, priority=operand % 3, payload=index)
            live.append(event)
            trace.append(("len", len(queue)))
        elif op == "pop":
            event = queue.pop()
            if event is not None:
                now = event.time
                if event in live:
                    live.remove(event)
            trace.append(("pop", None if event is None else event.payload))
        elif op == "pop_due":
            limit = now + operand / 11.0
            event = queue.pop_due(limit)
            if event is not None:
                now = event.time
                if event in live:
                    live.remove(event)
            trace.append(("pop_due", None if event is None else event.payload))
        elif op == "peek":
            trace.append(("peek", queue.peek_time()))
        elif op == "cancel" and live:
            victim = live.pop(operand % len(live))
            queue.cancel(victim)
            trace.append(("len", len(queue)))
    while True:
        event = queue.pop()
        trace.append(("drain", None if event is None else event.payload))
        if event is None:
            break
    return trace


class TestHeapCalendarEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(ops=_OPS)
    def test_identical_traces(self, ops):
        heap_trace = _drive(EventQueue(), ops)
        calendar_trace = _drive(CalendarQueue(), ops)
        assert calendar_trace == heap_trace

    @settings(max_examples=50, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_batch_pop_order_matches(self, times):
        heap, calendar = EventQueue(), CalendarQueue()
        for t in times:
            heap.push(t, _noop, payload=t)
            calendar.push(t, _noop, payload=t)
        heap_order = [heap.pop().payload for _ in range(len(times))]
        calendar_order = [calendar.pop().payload for _ in range(len(times))]
        assert calendar_order == heap_order == sorted(times)

    def test_dca_simulation_byte_identical(self):
        # The strongest end-to-end statement: the full DCA stack produces
        # identical reports (every metric and per-task record) on both
        # queue kinds.
        def run(kind):
            return run_dca(
                DcaConfig(
                    strategy=IterativeRedundancy(3),
                    tasks=150,
                    nodes=60,
                    reliability=0.7,
                    seed=11,
                    arrival_rate=0.4,
                    departure_rate=0.3,
                    queue=kind,
                )
            )

        heap_report = run("heap")
        calendar_report = run("calendar")
        assert heap_report.as_dict() == calendar_report.as_dict()
        assert [r.__dict__ for r in heap_report.records] == [
            r.__dict__ for r in calendar_report.records
        ]

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        arrival=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        departure=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        spot=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    )
    def test_dca_byte_identical_under_churn_and_spot_checks(
        self, seed, arrival, departure, spot
    ):
        # Churn-heavy and spot-check runs are the event-densest configs
        # the DES produces (join/leave events interleave with deadlines
        # and diverted spot jobs at the same timestamps), so they stress
        # exactly the tie-breaking the calendar queue must preserve.
        # to_json() covers every per-task record and overhead counter:
        # equality is byte-level, not statistical.
        def run(kind):
            return run_dca(
                DcaConfig(
                    strategy=IterativeRedundancy(2),
                    tasks=40,
                    nodes=16,
                    reliability=0.7,
                    seed=seed,
                    arrival_rate=arrival,
                    departure_rate=departure,
                    spot_check_rate=spot,
                    queue=kind,
                )
            )

        assert run("heap").to_json() == run("calendar").to_json()

    def test_config_rejects_unknown_queue(self):
        with pytest.raises(ValueError, match="queue"):
            DcaConfig(
                strategy=IterativeRedundancy(3),
                tasks=10,
                nodes=5,
                reliability=0.7,
                seed=1,
                queue="splay",
            )
