"""Unit tests for the simulator core."""

import pytest

from repro.sim import SimulationError, Simulator, StopSimulation


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator(seed=1).now == 0.0

    def test_run_advances_clock_to_events(self):
        sim = Simulator(seed=1)
        seen = []
        sim.schedule(2.5, lambda ev: seen.append(sim.now))
        sim.schedule(1.0, lambda ev: seen.append(sim.now))
        sim.run()
        assert seen == [1.0, 2.5]
        assert sim.now == 2.5

    def test_schedule_after_is_relative(self):
        sim = Simulator(seed=1)
        seen = []

        def chain(ev):
            seen.append(sim.now)
            if len(seen) < 3:
                sim.schedule_after(1.0, chain)

        sim.schedule_after(1.0, chain)
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(seed=1)
        sim.schedule(5.0, lambda ev: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda ev: None)

    def test_negative_delay_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(SimulationError):
            sim.schedule_after(-0.1, lambda ev: None)

    def test_payload_reaches_callback(self):
        sim = Simulator(seed=1)
        got = []
        sim.schedule(1.0, lambda ev: got.append(ev.payload), payload={"x": 1})
        sim.run()
        assert got == [{"x": 1}]

    def test_cancel_prevents_firing(self):
        sim = Simulator(seed=1)
        fired = []
        event = sim.schedule(1.0, lambda ev: fired.append("no"))
        sim.schedule(2.0, lambda ev: fired.append("yes"))
        sim.cancel(event)
        sim.run()
        assert fired == ["yes"]


class TestRunControls:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule(1.0, lambda ev: fired.append(1))
        sim.schedule(10.0, lambda ev: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_advances_clock_when_queue_drains(self):
        sim = Simulator(seed=1)
        sim.schedule(1.0, lambda ev: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events_limits_work(self):
        sim = Simulator(seed=1)
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda ev, i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_simulation_halts_loop(self):
        sim = Simulator(seed=1)
        fired = []

        def stopper(ev):
            fired.append("stop")
            raise StopSimulation

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, lambda ev: fired.append("never"))
        sim.run()
        assert fired == ["stop"]

    def test_step_returns_false_on_empty(self):
        sim = Simulator(seed=1)
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator(seed=1)
        for i in range(4):
            sim.schedule(float(i), lambda ev: None)
        sim.run()
        assert sim.events_processed == 4

    def test_not_reentrant(self):
        sim = Simulator(seed=1)

        def reenter(ev):
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()

    def test_reset_clears_state(self):
        sim = Simulator(seed=1)
        sim.schedule(1.0, lambda ev: None)
        sim.run()
        sim.reset(seed=2)
        assert sim.now == 0.0
        assert sim.pending == 0
        assert sim.events_processed == 0


class TestDeterminism:
    def test_same_seed_same_rng_draws(self):
        draws = []
        for _ in range(2):
            sim = Simulator(seed=99)
            draws.append([sim.rng.stream("s").random() for _ in range(5)])
        assert draws[0] == draws[1]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator(seed=1)
        fired = []
        for i in range(20):
            sim.schedule(1.0, lambda ev, i=i: fired.append(i))
        sim.run()
        assert fired == list(range(20))
