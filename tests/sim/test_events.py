"""Unit tests for the event queue: ordering, stability, cancellation."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import Event, EventQueue


def _noop(event):
    pass


class TestEventQueueBasics:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_push_and_pop_single(self):
        queue = EventQueue()
        event = queue.push(3.0, _noop)
        assert len(queue) == 1
        assert queue.peek_time() == 3.0
        assert queue.pop() is event
        assert len(queue) == 0

    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, _noop, payload="late")
        queue.push(1.0, _noop, payload="early")
        queue.push(3.0, _noop, payload="middle")
        order = [queue.pop().payload for _ in range(3)]
        assert order == ["early", "middle", "late"]

    def test_same_time_pops_in_insertion_order(self):
        queue = EventQueue()
        for i in range(10):
            queue.push(2.0, _noop, payload=i)
        assert [queue.pop().payload for _ in range(10)] == list(range(10))

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(1.0, _noop, priority=5, payload="low")
        queue.push(1.0, _noop, priority=-1, payload="high")
        assert queue.pop().payload == "high"
        assert queue.pop().payload == "low"

    def test_clear_empties_queue(self):
        queue = EventQueue()
        for i in range(5):
            queue.push(float(i), _noop)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        doomed = queue.push(1.0, _noop, payload="doomed")
        queue.push(2.0, _noop, payload="kept")
        queue.cancel(doomed)
        assert len(queue) == 1
        assert queue.pop().payload == "kept"

    def test_cancel_updates_peek(self):
        queue = EventQueue()
        first = queue.push(1.0, _noop)
        queue.push(4.0, _noop)
        queue.cancel(first)
        assert queue.peek_time() == 4.0

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    def test_cancel_all_leaves_empty_queue(self):
        queue = EventQueue()
        events = [queue.push(float(i), _noop) for i in range(5)]
        for event in events:
            queue.cancel(event)
        assert not queue
        assert queue.pop() is None


class TestEventObject:
    def test_sort_key_total_order(self):
        a = Event(time=1.0, priority=0, seq=0, callback=_noop)
        b = Event(time=1.0, priority=0, seq=1, callback=_noop)
        c = Event(time=0.5, priority=9, seq=2, callback=_noop)
        assert a < b
        assert c < a

    def test_cancel_flag(self):
        event = Event(time=1.0, priority=0, seq=0, callback=_noop)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_property_pops_sorted(times):
    """Whatever the insertion order, pops come out time-sorted."""
    queue = EventQueue()
    for t in times:
        queue.push(t, _noop, payload=t)
    popped = []
    while queue:
        popped.append(queue.pop().payload)
    assert popped == sorted(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_property_cancelled_never_pop(entries):
    """Cancelled events never come out; live events all do."""
    queue = EventQueue()
    live = []
    for t, keep in entries:
        event = queue.push(t, _noop, payload=t)
        if keep:
            live.append(t)
        else:
            queue.cancel(event)
    assert len(queue) == len(live)
    popped = []
    while queue:
        popped.append(queue.pop().payload)
    assert popped == sorted(live)
