"""Unit tests for the event queue: ordering, stability, cancellation,
and the lazy-deletion memory bound."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import COMPACT_MIN_CANCELLED, Event, EventQueue


def _noop(event):
    pass


class TestEventQueueBasics:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_push_and_pop_single(self):
        queue = EventQueue()
        event = queue.push(3.0, _noop)
        assert len(queue) == 1
        assert queue.peek_time() == 3.0
        assert queue.pop() is event
        assert len(queue) == 0

    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, _noop, payload="late")
        queue.push(1.0, _noop, payload="early")
        queue.push(3.0, _noop, payload="middle")
        order = [queue.pop().payload for _ in range(3)]
        assert order == ["early", "middle", "late"]

    def test_same_time_pops_in_insertion_order(self):
        queue = EventQueue()
        for i in range(10):
            queue.push(2.0, _noop, payload=i)
        assert [queue.pop().payload for _ in range(10)] == list(range(10))

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(1.0, _noop, priority=5, payload="low")
        queue.push(1.0, _noop, priority=-1, payload="high")
        assert queue.pop().payload == "high"
        assert queue.pop().payload == "low"

    def test_clear_empties_queue(self):
        queue = EventQueue()
        for i in range(5):
            queue.push(float(i), _noop)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        doomed = queue.push(1.0, _noop, payload="doomed")
        queue.push(2.0, _noop, payload="kept")
        queue.cancel(doomed)
        assert len(queue) == 1
        assert queue.pop().payload == "kept"

    def test_cancel_updates_peek(self):
        queue = EventQueue()
        first = queue.push(1.0, _noop)
        queue.push(4.0, _noop)
        queue.cancel(first)
        assert queue.peek_time() == 4.0

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    def test_cancel_all_leaves_empty_queue(self):
        queue = EventQueue()
        events = [queue.push(float(i), _noop) for i in range(5)]
        for event in events:
            queue.cancel(event)
        assert not queue
        assert queue.pop() is None


class TestCompaction:
    """Lazy deletion must not leak: cancelled entries are physically
    removed once they are both numerous (>= COMPACT_MIN_CANCELLED) and
    the majority of the heap, bounding memory at ~2x the live set."""

    def test_heap_size_stays_bounded_under_cancel_churn(self):
        queue = EventQueue()
        live = [queue.push(1e9, _noop) for _ in range(10)]
        # Schedule-and-cancel far more events than the compaction
        # threshold; without compaction the physical heap would hold
        # every cancelled entry until its pop time (1e9) arrives.
        for i in range(50 * COMPACT_MIN_CANCELLED):
            queue.cancel(queue.push(1e9 + i, _noop))
            assert queue.heap_size <= max(
                2 * len(queue) + 1, COMPACT_MIN_CANCELLED + len(queue)
            )
        assert len(queue) == 10
        assert queue.heap_size < 2 * COMPACT_MIN_CANCELLED + len(live)

    def test_compaction_preserves_pop_order(self):
        queue = EventQueue()
        survivors = []
        for i in range(4 * COMPACT_MIN_CANCELLED):
            event = queue.push(float(i % 97), _noop, payload=i)
            if i % 3 == 0:
                survivors.append((i % 97, i))
            else:
                queue.cancel(event)
        popped = [(int(queue.pop().time), None) for _ in range(len(queue))]
        assert [t for t, _ in popped] == sorted(t for t, _ in survivors)

    def test_explicit_compact_drops_cancelled_entries(self):
        queue = EventQueue()
        doomed = [queue.push(float(i), _noop) for i in range(8)]
        kept = queue.push(100.0, _noop)
        for event in doomed:
            queue.cancel(event)
        assert queue.heap_size == 9
        queue.compact()
        assert queue.heap_size == 1
        assert len(queue) == 1
        assert queue.pop() is kept


class TestEventObject:
    def test_sort_key_total_order(self):
        a = Event(time=1.0, priority=0, seq=0, callback=_noop)
        b = Event(time=1.0, priority=0, seq=1, callback=_noop)
        c = Event(time=0.5, priority=9, seq=2, callback=_noop)
        assert a < b
        assert c < a

    def test_cancel_flag(self):
        event = Event(time=1.0, priority=0, seq=0, callback=_noop)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_property_pops_sorted(times):
    """Whatever the insertion order, pops come out time-sorted."""
    queue = EventQueue()
    for t in times:
        queue.push(t, _noop, payload=t)
    popped = []
    while queue:
        popped.append(queue.pop().payload)
    assert popped == sorted(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_property_cancelled_never_pop(entries):
    """Cancelled events never come out; live events all do."""
    queue = EventQueue()
    live = []
    for t, keep in entries:
        event = queue.push(t, _noop, payload=t)
        if keep:
            live.append(t)
        else:
            queue.cancel(event)
    assert len(queue) == len(live)
    popped = []
    while queue:
        popped.append(queue.pop().payload)
    assert popped == sorted(live)
