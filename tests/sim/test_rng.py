"""Unit tests for named RNG streams."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_same_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_different_names_different_sequences(self):
        reg = RngRegistry(1)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        a = [RngRegistry(42).stream("x").random() for _ in range(1)]
        b = [RngRegistry(42).stream("x").random() for _ in range(1)]
        assert a == b

    def test_streams_are_decoupled(self):
        """Drawing extra numbers from one stream must not shift another."""
        reg1 = RngRegistry(7)
        reg1.stream("noise").random()  # extra draw
        value1 = reg1.stream("signal").random()

        reg2 = RngRegistry(7)
        value2 = reg2.stream("signal").random()
        assert value1 == value2

    def test_spawn_children_are_decorrelated(self):
        reg = RngRegistry(3)
        child_a = reg.spawn("rep-1")
        child_b = reg.spawn("rep-2")
        assert child_a.seed != child_b.seed
        assert child_a.stream("s").random() != child_b.stream("s").random()

    def test_spawn_is_deterministic(self):
        assert RngRegistry(3).spawn("rep-1").seed == RngRegistry(3).spawn("rep-1").seed

    def test_random_seed_when_none(self):
        # Two unseeded registries should (overwhelmingly) differ.
        assert RngRegistry().seed != RngRegistry().seed
