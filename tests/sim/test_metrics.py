"""Unit tests for metric collectors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import Counter, Histogram, MetricSet, Tally, TimeWeightedStat


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("jobs")
        c.increment()
        c.increment(4)
        assert c.value == 5


class TestTally:
    def test_empty_tally_is_nan(self):
        t = Tally()
        assert math.isnan(t.mean)
        assert math.isnan(t.minimum)

    def test_known_statistics(self):
        t = Tally()
        t.observe_many([2.0, 4.0, 6.0, 8.0])
        assert t.count == 4
        assert t.mean == pytest.approx(5.0)
        assert t.variance == pytest.approx(20.0 / 3.0)
        assert t.minimum == 2.0
        assert t.maximum == 8.0

    def test_single_observation_variance_nan(self):
        t = Tally()
        t.observe(1.0)
        assert math.isnan(t.variance)

    def test_confidence_interval_brackets_mean(self):
        t = Tally()
        t.observe_many(float(i) for i in range(100))
        lo, hi = t.confidence_interval()
        assert lo < t.mean < hi

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
    def test_property_matches_batch_formulas(self, values):
        t = Tally()
        t.observe_many(values)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        assert t.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert t.variance == pytest.approx(var, rel=1e-6, abs=1e-6)
        assert t.minimum == min(values)
        assert t.maximum == max(values)


class TestTimeWeightedStat:
    def test_constant_level(self):
        s = TimeWeightedStat(level=3.0)
        s.update(10.0, 3.0)
        assert s.average(10.0) == pytest.approx(3.0)

    def test_step_function(self):
        s = TimeWeightedStat()
        s.update(1.0, 10.0)  # level 0 for [0,1), 10 afterwards
        assert s.average(2.0) == pytest.approx(5.0)

    def test_time_cannot_go_backwards(self):
        s = TimeWeightedStat()
        s.update(5.0, 1.0)
        with pytest.raises(ValueError):
            s.update(4.0, 2.0)

    def test_zero_span_is_nan(self):
        assert math.isnan(TimeWeightedStat().average(0.0))


class TestHistogram:
    def test_bins_and_overflow(self):
        h = Histogram("lat", 0.0, 10.0, 5)
        for v in [0.5, 2.5, 2.6, 9.9, 10.0, -1.0]:
            h.observe(v)
        assert h.counts == [1, 2, 0, 0, 1]
        assert h.overflow == 1
        assert h.underflow == 1
        assert h.total == 6

    def test_bin_edges(self):
        h = Histogram("x", 0.0, 1.0, 4)
        assert h.bin_edges() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram("x", 1.0, 1.0, 4)
        with pytest.raises(ValueError):
            Histogram("x", 0.0, 1.0, 0)


class TestMetricSet:
    def test_lazy_creation_and_snapshot(self):
        metrics = MetricSet()
        metrics.counter("jobs").increment(3)
        metrics.tally("latency").observe_many([1.0, 2.0])
        snap = metrics.snapshot()
        assert snap["count.jobs"] == 3
        assert snap["mean.latency"] == pytest.approx(1.5)
        assert snap["max.latency"] == 2.0

    def test_same_name_returns_same_collector(self):
        metrics = MetricSet()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.tally("b") is metrics.tally("b")
