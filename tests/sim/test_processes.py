"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Process, Simulator, Timeout, Waiting


class TestTimeout:
    def test_process_sleeps_and_resumes(self):
        sim = Simulator(seed=1)
        trace = []

        def body():
            trace.append(("start", sim.now))
            yield Timeout(2.0)
            trace.append(("after", sim.now))

        Process(sim, body())
        sim.run()
        assert trace == [("start", 0.0), ("after", 2.0)]

    def test_multiple_timeouts_accumulate(self):
        sim = Simulator(seed=1)
        times = []

        def body():
            for _ in range(3):
                yield Timeout(1.5)
                times.append(sim.now)

        Process(sim, body())
        sim.run()
        assert times == pytest.approx([1.5, 3.0, 4.5])

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_return_value_captured(self):
        sim = Simulator(seed=1)

        def body():
            yield Timeout(1.0)
            return "done"

        proc = Process(sim, body())
        sim.run()
        assert proc.result == "done"
        assert not proc.alive


class TestWaiting:
    def test_trigger_wakes_process_with_value(self):
        sim = Simulator(seed=1)
        gate = Waiting()
        got = []

        def waiter():
            value = yield gate
            got.append((value, sim.now))

        def trigger_later():
            yield Timeout(3.0)
            gate.trigger("payload")

        Process(sim, waiter())
        Process(sim, trigger_later())
        sim.run()
        assert got == [("payload", 3.0)]

    def test_trigger_before_wait_resumes_immediately(self):
        sim = Simulator(seed=1)
        gate = Waiting()
        gate.trigger(42)
        got = []

        def waiter():
            value = yield gate
            got.append(value)

        Process(sim, waiter())
        sim.run()
        assert got == [42]

    def test_second_trigger_ignored(self):
        gate = Waiting()
        gate.trigger(1)
        gate.trigger(2)
        assert gate.triggered


class TestLifecycle:
    def test_interrupt_stops_process(self):
        sim = Simulator(seed=1)
        trace = []

        def body():
            trace.append("start")
            yield Timeout(10.0)
            trace.append("never")

        proc = Process(sim, body())
        sim.schedule(1.0, lambda ev: proc.interrupt())
        sim.run()
        assert trace == ["start"]
        assert not proc.alive

    def test_on_done_callback_fires(self):
        sim = Simulator(seed=1)
        done = []

        def body():
            yield Timeout(1.0)

        proc = Process(sim, body())
        proc.on_done(lambda p: done.append(sim.now))
        sim.run()
        assert done == [1.0]

    def test_on_done_after_finish_fires_immediately(self):
        sim = Simulator(seed=1)

        def body():
            yield Timeout(1.0)

        proc = Process(sim, body())
        sim.run()
        done = []
        proc.on_done(lambda p: done.append(True))
        assert done == [True]

    def test_bad_yield_raises_type_error(self):
        sim = Simulator(seed=1)

        def body():
            yield "not a command"

        Process(sim, body())
        with pytest.raises(TypeError):
            sim.run()

    def test_exception_in_body_propagates_and_records(self):
        sim = Simulator(seed=1)

        def body():
            yield Timeout(1.0)
            raise RuntimeError("boom")

        proc = Process(sim, body())
        with pytest.raises(RuntimeError):
            sim.run()
        assert isinstance(proc.error, RuntimeError)
        assert not proc.alive

    def test_two_processes_interleave(self):
        sim = Simulator(seed=1)
        trace = []

        def worker(name, period):
            for _ in range(2):
                yield Timeout(period)
                trace.append((name, sim.now))

        Process(sim, worker("fast", 1.0))
        Process(sim, worker("slow", 1.5))
        sim.run()
        assert trace == [("fast", 1.0), ("slow", 1.5), ("fast", 2.0), ("slow", 3.0)]
