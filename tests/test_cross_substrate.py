# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Cross-substrate agreement: the same strategy must measure the same on
all three execution substrates.

The strategies are pure wave deciders, so the substrate-free runner, the
discrete-event DCA model, and the volunteer pull substrate are three
independent transports around identical decision logic.  Their measured
cost factors and reliabilities must agree (within sampling error) with
each other and with the closed forms -- the strongest internal-validity
check the reproduction has.
"""

import pytest

from repro.core import (
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
    analysis,
)
from repro.core.runner import monte_carlo
from repro.dca import DcaConfig, run_dca
from repro.volunteer import PlanetLabTestbed, VolunteerConfig, run_volunteer

R = 0.7
TASKS = 3_000

CASES = [
    (
        "traditional-k9",
        lambda: TraditionalRedundancy(9),
        analysis.traditional_cost(9),
        analysis.traditional_reliability(R, 9),
    ),
    (
        "progressive-k9",
        lambda: ProgressiveRedundancy(9),
        analysis.progressive_cost(R, 9),
        analysis.progressive_reliability(R, 9),
    ),
    (
        "iterative-d3",
        lambda: IterativeRedundancy(3),
        analysis.iterative_cost(R, 3),
        analysis.iterative_reliability(R, 3),
    ),
]


def volunteer_testbed():
    """A clean testbed whose only failure source is the seeded 30% wrong
    results -- making its effective r exactly 0.7, comparable with the
    other substrates."""
    return PlanetLabTestbed(
        nodes=150,
        seeded_fault_prob=1.0 - R,
        natural_fault_max=0.0,
        unresponsive_max=0.0,
        speed_sigma=0.0,
    )


@pytest.mark.parametrize("name,factory,cost_expected,rel_expected", CASES)
def test_three_substrates_agree(name, factory, cost_expected, rel_expected):
    runner_estimate = monte_carlo(factory, R, TASKS, seed=101)
    dca_report = run_dca(
        DcaConfig(strategy=factory(), tasks=TASKS, nodes=300, reliability=R, seed=102)
    )
    volunteer_report = run_volunteer(
        VolunteerConfig(
            strategy=factory(),
            testbed=volunteer_testbed(),
            use_sat=False,
            tasks=1_000,
            seed=103,
        )
    )
    for cost, reliability, source in (
        (runner_estimate.cost_factor, runner_estimate.reliability, "runner"),
        (dca_report.cost_factor, dca_report.system_reliability, "dca"),
        (volunteer_report.cost_factor, volunteer_report.system_reliability, "volunteer"),
    ):
        assert cost == pytest.approx(cost_expected, rel=0.06), f"{name}/{source} cost"
        assert reliability == pytest.approx(rel_expected, abs=0.035), (
            f"{name}/{source} reliability"
        )


def test_progressive_job_cap_holds_on_every_substrate():
    """PR's <= k responses bound must hold everywhere."""
    k = 7
    runner_estimate = monte_carlo(lambda: ProgressiveRedundancy(k), R, 2_000, seed=7)
    assert runner_estimate.max_jobs <= k
    dca_report = run_dca(
        DcaConfig(
            strategy=ProgressiveRedundancy(k), tasks=2_000, nodes=300, reliability=R, seed=8
        )
    )
    assert dca_report.max_jobs_per_task <= k
    volunteer_report = run_volunteer(
        VolunteerConfig(
            strategy=ProgressiveRedundancy(k),
            testbed=volunteer_testbed(),
            use_sat=False,
            tasks=800,
            seed=9,
        )
    )
    assert volunteer_report.max_jobs_per_task <= k


def test_iterative_max_jobs_matches_tail_quantile():
    """The DES's observed per-task maximum sits inside the analytic tail:
    above the 99th percentile of the job-count distribution for a run of
    thousands of tasks, but far below any runaway."""
    d = 4
    report = run_dca(
        DcaConfig(strategy=IterativeRedundancy(d), tasks=5_000, nodes=300, reliability=R, seed=10)
    )
    q99 = analysis.iterative_job_quantile(R, d, 0.99)
    q999999 = analysis.iterative_job_quantile(R, d, 0.999999)
    assert report.max_jobs_per_task >= q99
    assert report.max_jobs_per_task <= q999999 * 2
