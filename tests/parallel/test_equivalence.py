# reprolint: disable-file=RL003 -- the point of this suite is byte-exact serial/parallel equality
"""Determinism equivalence: ``jobs=4`` must be indistinguishable from
``jobs=1`` for every technique, per replicate and in aggregate, and a
crashing worker must surface a clear error naming the replicate seed."""

import pytest

from repro.core import (
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.parallel import (
    ReplicateError,
    aggregate_metrics,
    combined_fingerprint,
    dca_replicate_specs,
    run_dca_replicates,
)

SWEEP = [
    ("IR", lambda: IterativeRedundancy(2)),
    ("PR", lambda: ProgressiveRedundancy(5)),
    ("TR", lambda: TraditionalRedundancy(3)),
]

SMALL = dict(tasks=120, nodes=60, reliability=0.7, replications=3, seed=9)


@pytest.mark.parametrize("name,factory", SWEEP, ids=[n for n, _ in SWEEP])
def test_parallel_equals_serial(name, factory):
    serial = run_dca_replicates(dca_replicate_specs(factory, **SMALL), jobs=1)
    fanned = run_dca_replicates(dca_replicate_specs(factory, **SMALL), jobs=4)
    # Same seeds in the same order...
    assert [e.seed for e in serial] == [e.seed for e in fanned]
    # ...identical per-replicate metrics and fingerprints...
    assert [e.metrics for e in serial] == [e.metrics for e in fanned]
    assert combined_fingerprint(serial) == combined_fingerprint(fanned)
    # ...and identical aggregates.
    assert aggregate_metrics(serial) == aggregate_metrics(fanned)


def test_parallel_equals_serial_with_tiny_chunks():
    factory = SWEEP[0][1]
    serial = run_dca_replicates(dca_replicate_specs(factory, **SMALL), jobs=1)
    fanned = run_dca_replicates(
        dca_replicate_specs(factory, **SMALL), jobs=4, chunk_size=1
    )
    assert combined_fingerprint(serial) == combined_fingerprint(fanned)


class ExplodingStrategy(IterativeRedundancy):
    """Picklable strategy that detonates inside the worker process."""

    def decide(self, vote):
        raise RuntimeError("injected replicate failure")


@pytest.mark.parametrize("jobs", [1, 4])
def test_worker_crash_names_replicate_seed(jobs):
    specs = dca_replicate_specs(
        lambda: ExplodingStrategy(2),
        tasks=10,
        nodes=10,
        reliability=0.7,
        replications=2,
        seed=5,
    )
    with pytest.raises(ReplicateError) as excinfo:
        run_dca_replicates(specs, jobs=jobs)
    message = str(excinfo.value)
    assert excinfo.value.position == 0
    assert f"seed {specs[0].seed}" in message
    assert "injected replicate failure" in message
    assert excinfo.value.error_type == "RuntimeError"
    # The worker's traceback travels home for debugging.
    assert "RuntimeError" in (excinfo.value.traceback_text or "")
