# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Unit tests for the replication engine primitives: seed derivation,
chunking, job resolution, ordered parallel mapping, and crash surfacing."""

import pytest

from repro.parallel import (
    ReplicateError,
    default_chunk_size,
    fingerprint_of,
    parallel_map,
    replicate_seeds,
    resolve_jobs,
)
from repro.sim.rng import RngRegistry


class TestReplicateSeeds:
    def test_deterministic(self):
        assert replicate_seeds(42, 5) == replicate_seeds(42, 5)

    def test_prefix_closed(self):
        # The first n seeds of a longer schedule are the schedule itself:
        # growing `replications` never perturbs earlier replicates.
        assert replicate_seeds(42, 8)[:3] == replicate_seeds(42, 3)

    def test_distinct_across_replicates_and_bases(self):
        seeds = replicate_seeds(7, 64)
        assert len(set(seeds)) == 64
        assert set(seeds).isdisjoint(replicate_seeds(8, 64))

    def test_matches_registry_spawn(self):
        # The schedule is exactly RngRegistry.spawn on the replicate key,
        # so engine users and hand-rolled spawns can never disagree.
        registry = RngRegistry(3)
        assert replicate_seeds(3, 2) == (
            registry.spawn("replicate:0").seed,
            registry.spawn("replicate:1").seed,
        )

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            replicate_seeds(0, 0)


class TestResolveJobsAndChunks:
    def test_explicit_jobs(self):
        assert resolve_jobs(3) == 3

    def test_default_is_cpu_count(self):
        import os

        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_chunks_oversubscribe(self):
        # 4 chunks per worker so stragglers get backfilled.
        assert default_chunk_size(100, 4) == 7
        assert default_chunk_size(3, 8) == 1
        assert default_chunk_size(0, 4) == 1


def _square(x):
    return x * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(23))
        serial = parallel_map(_square, items, jobs=1)
        parallel = parallel_map(_square, items, jobs=4)
        assert serial == parallel == [x * x for x in items]

    def test_order_preserved_with_tiny_chunks(self):
        items = list(range(17))
        assert parallel_map(_square, items, jobs=4, chunk_size=1) == [
            x * x for x in items
        ]

    def test_crash_names_lowest_failed_position(self):
        with pytest.raises(ReplicateError) as excinfo:
            parallel_map(_fail_on_odd, [0, 2, 5, 4, 3], jobs=4)
        assert excinfo.value.position == 2
        assert "odd input 5" in str(excinfo.value)
        assert excinfo.value.error_type == "ValueError"

    def test_serial_crash_same_surface(self):
        with pytest.raises(ReplicateError) as excinfo:
            parallel_map(_fail_on_odd, [0, 2, 5, 4, 3], jobs=1)
        assert excinfo.value.position == 2
        assert "odd input 5" in str(excinfo.value)


class TestFingerprint:
    def test_stable_under_key_order(self):
        assert fingerprint_of({"a": 1, "b": 2.5}) == fingerprint_of(
            {"b": 2.5, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert fingerprint_of({"a": 1}) != fingerprint_of({"a": 2})
