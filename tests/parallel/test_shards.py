# reprolint: disable-file=RL003 -- the point of this suite is byte-exact serial/parallel equality
"""Sharded task server determinism: ``jobs=4`` must be byte-identical to
``jobs=1`` for the same shard count (both engines), the split must be
exact, and the position-ordered merge must be pure arithmetic over the
shard envelopes."""

import math

import pytest

from repro.core import IterativeRedundancy, ProgressiveRedundancy
from repro.parallel import (
    ReplicateEnvelope,
    combined_fingerprint,
    fingerprint_of,
    merge_shard_reports,
    release_shard_columns,
    replicate_seeds,
    run_dca_shards,
    shard_seeds,
    shard_specs,
    shm_available,
)
from repro.parallel.shards import _split

SMALL = dict(tasks=240, nodes=48, reliability=0.7, shards=4, seed=21)


def _specs(engine="columnar", **overrides):
    params = dict(SMALL, **overrides)
    return shard_specs(lambda: IterativeRedundancy(3), engine=engine, **params)


class TestShardSeeds:
    def test_deterministic(self):
        assert shard_seeds(5, 8) == shard_seeds(5, 8)

    def test_prefix_stable(self):
        # Seed i depends only on (base, i): a longer schedule extends the
        # shorter one, so changing the shard count never reshuffles work.
        assert shard_seeds(5, 8)[:4] == shard_seeds(5, 4)

    def test_disjoint_from_replicate_namespace(self):
        shards = set(shard_seeds(5, 16))
        replicates = set(replicate_seeds(5, 16))
        assert not shards & replicates

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError, match="at least one"):
            shard_seeds(5, 0)


class TestShardSplit:
    def test_split_is_exact_and_position_stable(self):
        for total in (7, 100, 101, 1_000_003):
            for shards in (1, 3, 8):
                parts = _split(total, shards)
                assert sum(parts) == total
                assert len(parts) == shards
                # Extra units go to the lowest positions.
                assert parts == sorted(parts, reverse=True)

    def test_spec_shares_cover_the_computation(self):
        specs = _specs()
        assert sum(spec.tasks for spec in specs) == SMALL["tasks"]
        assert sum(spec.nodes for spec in specs) == SMALL["nodes"]
        assert [spec.seed for spec in specs] == list(
            shard_seeds(SMALL["seed"], SMALL["shards"])
        )

    def test_rejects_more_shards_than_tasks(self):
        with pytest.raises(ValueError, match="tasks"):
            shard_specs(
                lambda: IterativeRedundancy(3),
                tasks=3,
                nodes=100,
                reliability=0.7,
                shards=4,
                seed=1,
            )

    def test_rejects_more_shards_than_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            shard_specs(
                lambda: IterativeRedundancy(3),
                tasks=100,
                nodes=3,
                reliability=0.7,
                shards=4,
                seed=1,
            )

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            _specs(engine="quantum")


class TestJobsEquivalence:
    @pytest.mark.parametrize("engine", ["columnar", "des"])
    def test_fanned_equals_serial(self, engine):
        serial = run_dca_shards(_specs(engine=engine), jobs=1)
        fanned = run_dca_shards(_specs(engine=engine), jobs=4)
        assert [e.seed for e in serial] == [e.seed for e in fanned]
        assert [e.metrics for e in serial] == [e.metrics for e in fanned]
        assert combined_fingerprint(serial) == combined_fingerprint(fanned)
        assert merge_shard_reports(serial) == merge_shard_reports(fanned)

    def test_merge_is_order_free(self):
        envelopes = run_dca_shards(_specs(), jobs=1)
        shuffled = list(reversed(envelopes))
        assert merge_shard_reports(shuffled) == merge_shard_reports(envelopes)


class TestMergeArithmetic:
    def test_extensive_counters_sum_exactly(self):
        envelopes = run_dca_shards(_specs(), jobs=1)
        merged = merge_shard_reports(envelopes)
        metrics = [e.metrics for e in envelopes]
        assert merged["tasks"] == sum(m["tasks"] for m in metrics)
        assert merged["tasks_correct"] == sum(m["tasks_correct"] for m in metrics)
        assert merged["total_jobs"] == sum(m["total_jobs"] for m in metrics)
        assert merged["reliability"] == merged["tasks_correct"] / merged["tasks"]
        assert merged["cost_factor"] == merged["total_jobs"] / merged["tasks"]
        assert merged["makespan"] == max(m["makespan"] for m in metrics)
        assert merged["shards"] == len(envelopes)
        assert merged["checksum"] == combined_fingerprint(envelopes)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="zero"):
            merge_shard_reports([])

    def test_single_shard_merge_matches_shard(self):
        envelopes = run_dca_shards(
            shard_specs(
                lambda: ProgressiveRedundancy(5),
                tasks=200,
                nodes=40,
                reliability=0.7,
                shards=1,
                seed=8,
            ),
            jobs=1,
        )
        merged = merge_shard_reports(envelopes)
        shard = envelopes[0].metrics
        assert merged["reliability"] == shard["reliability"]
        assert merged["cost_factor"] == pytest.approx(shard["cost_factor"])
        assert merged["mean_waves"] == pytest.approx(shard["mean_waves"])


def _fake_envelope(position, **metrics):
    base = dict(
        strategy="iterative(d=3)",
        tasks=0,
        tasks_correct=0,
        total_jobs=0,
        jobs_timed_out=0,
        max_jobs=0,
        mean_response_time=math.nan,
        max_response_time=math.nan,
        mean_waves=math.nan,
        makespan=0.0,
    )
    base.update(metrics)
    return ReplicateEnvelope(
        position=position, seed=position, metrics=base, fingerprint=fingerprint_of(base)
    )


class TestZeroTaskMergeGuards:
    """Shards can complete zero tasks under a horizon; the weighted
    averages must neither divide by zero nor let a nan-valued empty
    shard poison the live shards' aggregates."""

    def test_all_empty_shards_merge_to_nan_not_crash(self):
        merged = merge_shard_reports([_fake_envelope(0), _fake_envelope(1)])
        assert merged["tasks"] == 0
        assert math.isnan(merged["reliability"])
        assert math.isnan(merged["cost_factor"])
        assert math.isnan(merged["mean_response_time"])
        assert math.isnan(merged["max_response_time"])
        assert math.isnan(merged["mean_waves"])
        assert merged["max_jobs"] == 0

    def test_empty_shard_does_not_poison_live_aggregates(self):
        live = _fake_envelope(
            0,
            tasks=100,
            tasks_correct=90,
            total_jobs=300,
            max_jobs=9,
            mean_response_time=2.0,
            max_response_time=5.0,
            mean_waves=1.5,
            makespan=40.0,
        )
        merged = merge_shard_reports([live, _fake_envelope(1)])
        assert merged["tasks"] == 100
        assert merged["reliability"] == 0.9
        assert merged["cost_factor"] == 3.0
        assert merged["mean_response_time"] == 2.0
        assert merged["max_response_time"] == 5.0
        assert merged["mean_waves"] == 1.5
        assert merged["max_jobs"] == 9

    def test_real_zero_completion_shards_under_tiny_horizon(self):
        # duration_low defaults to 0.5: nothing can finish by t=0.1, so
        # every shard reports zero completed tasks.
        envelopes = run_dca_shards(_specs(max_time=0.1), jobs=1)
        merged = merge_shard_reports(envelopes)
        assert merged["tasks"] == 0
        assert merged["tasks_submitted"] == SMALL["tasks"]
        assert math.isnan(merged["reliability"])
        assert math.isnan(merged["cost_factor"])
        assert merged["makespan"] == 0.1


class TestRegimeShards:
    """Churn / spot-check / deadline configs flow through the shard
    layer: rates split with the pool, regime counters merge by sum, and
    ``jobs=4`` stays byte-identical to ``jobs=1``."""

    def test_churn_rates_scale_with_node_share(self):
        specs = _specs(arrival_rate=6.0, departure_rate=3.0)
        shares = [spec.nodes for spec in specs]
        arrivals = [dict(spec.overrides)["arrival_rate"] for spec in specs]
        departures = [dict(spec.overrides)["departure_rate"] for spec in specs]
        assert sum(arrivals) == pytest.approx(6.0)
        assert sum(departures) == pytest.approx(3.0)
        for share, rate in zip(shares, arrivals):
            assert rate == pytest.approx(6.0 * share / SMALL["nodes"])

    def test_other_overrides_pass_through_unscaled(self):
        specs = _specs(spot_check_rate=0.2, max_time=50.0)
        for spec in specs:
            overrides = dict(spec.overrides)
            assert overrides["spot_check_rate"] == 0.2
            assert overrides["max_time"] == 50.0

    def test_regime_keys_absent_outside_their_regime(self):
        baseline = run_dca_shards(_specs(), jobs=1)
        for envelope in baseline:
            for key in ("nodes_joined", "spot_checks", "tasks_submitted"):
                assert key not in envelope.metrics

    def test_regime_counters_merge_by_sum(self):
        envelopes = run_dca_shards(
            _specs(arrival_rate=4.0, departure_rate=4.0, spot_check_rate=0.1),
            jobs=1,
        )
        merged = merge_shard_reports(envelopes)
        metrics = [e.metrics for e in envelopes]
        for key in ("nodes_joined", "nodes_departed", "spot_checks"):
            assert merged[key] == sum(m[key] for m in metrics)
        assert merged["spot_checks"] > 0

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(arrival_rate=4.0, departure_rate=4.0),
            dict(spot_check_rate=0.2),
            dict(max_time=5.0),
        ],
    )
    def test_fanned_equals_serial_per_regime(self, overrides):
        serial = run_dca_shards(_specs(**overrides), jobs=1)
        fanned = run_dca_shards(_specs(**overrides), jobs=4)
        assert [e.metrics for e in serial] == [e.metrics for e in fanned]
        assert combined_fingerprint(serial) == combined_fingerprint(fanned)


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
class TestShmTransport:
    """transport='shm' ships columns out of band: fingerprints stay
    identical to the pickle transport, jobs=N to jobs=1, and the
    incremental column reduction agrees with the metric-derived merge."""

    @pytest.mark.parametrize("engine", ["columnar", "des"])
    def test_fingerprints_match_pickle_transport(self, engine):
        pickled = run_dca_shards(_specs(engine=engine), jobs=1)
        shipped = run_dca_shards(_specs(engine=engine), jobs=1, transport="shm")
        assert [e.fingerprint for e in pickled] == [e.fingerprint for e in shipped]
        merged = merge_shard_reports(shipped)
        columns = merged.pop("columns")
        assert merged == merge_shard_reports(pickled)
        assert columns["tasks"] == merged["tasks"]
        assert columns["tasks_correct"] == merged["tasks_correct"]
        assert columns["total_jobs"] == merged["total_jobs"]
        assert columns["max_jobs"] == merged["max_jobs"]
        assert columns["mean_response_time"] == pytest.approx(
            merged["mean_response_time"]
        )

    def test_fanned_equals_serial_over_shm(self):
        serial = merge_shard_reports(run_dca_shards(_specs(), jobs=1, transport="shm"))
        fanned = merge_shard_reports(run_dca_shards(_specs(), jobs=4, transport="shm"))
        assert serial == fanned

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            run_dca_shards(_specs(), jobs=1, transport="carrier-pigeon")

    def test_release_without_merge_cleans_up(self):
        envelopes = run_dca_shards(_specs(), jobs=2, transport="shm")
        release_shard_columns(envelopes)
        # Idempotent: the segments are already gone.
        release_shard_columns(envelopes)

    def test_pickle_transport_carries_no_columns(self):
        for envelope in run_dca_shards(_specs(), jobs=1):
            assert envelope.columns is None
