# reprolint: disable-file=RL003 -- the point of this suite is byte-exact serial/parallel equality
"""Sharded task server determinism: ``jobs=4`` must be byte-identical to
``jobs=1`` for the same shard count (both engines), the split must be
exact, and the position-ordered merge must be pure arithmetic over the
shard envelopes."""

import pytest

from repro.core import IterativeRedundancy, ProgressiveRedundancy
from repro.parallel import (
    combined_fingerprint,
    merge_shard_reports,
    replicate_seeds,
    run_dca_shards,
    shard_seeds,
    shard_specs,
)
from repro.parallel.shards import _split

SMALL = dict(tasks=240, nodes=48, reliability=0.7, shards=4, seed=21)


def _specs(engine="columnar", **overrides):
    params = dict(SMALL, **overrides)
    return shard_specs(lambda: IterativeRedundancy(3), engine=engine, **params)


class TestShardSeeds:
    def test_deterministic(self):
        assert shard_seeds(5, 8) == shard_seeds(5, 8)

    def test_prefix_stable(self):
        # Seed i depends only on (base, i): a longer schedule extends the
        # shorter one, so changing the shard count never reshuffles work.
        assert shard_seeds(5, 8)[:4] == shard_seeds(5, 4)

    def test_disjoint_from_replicate_namespace(self):
        shards = set(shard_seeds(5, 16))
        replicates = set(replicate_seeds(5, 16))
        assert not shards & replicates

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError, match="at least one"):
            shard_seeds(5, 0)


class TestShardSplit:
    def test_split_is_exact_and_position_stable(self):
        for total in (7, 100, 101, 1_000_003):
            for shards in (1, 3, 8):
                parts = _split(total, shards)
                assert sum(parts) == total
                assert len(parts) == shards
                # Extra units go to the lowest positions.
                assert parts == sorted(parts, reverse=True)

    def test_spec_shares_cover_the_computation(self):
        specs = _specs()
        assert sum(spec.tasks for spec in specs) == SMALL["tasks"]
        assert sum(spec.nodes for spec in specs) == SMALL["nodes"]
        assert [spec.seed for spec in specs] == list(
            shard_seeds(SMALL["seed"], SMALL["shards"])
        )

    def test_rejects_more_shards_than_tasks(self):
        with pytest.raises(ValueError, match="tasks"):
            shard_specs(
                lambda: IterativeRedundancy(3),
                tasks=3,
                nodes=100,
                reliability=0.7,
                shards=4,
                seed=1,
            )

    def test_rejects_more_shards_than_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            shard_specs(
                lambda: IterativeRedundancy(3),
                tasks=100,
                nodes=3,
                reliability=0.7,
                shards=4,
                seed=1,
            )

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            _specs(engine="quantum")


class TestJobsEquivalence:
    @pytest.mark.parametrize("engine", ["columnar", "des"])
    def test_fanned_equals_serial(self, engine):
        serial = run_dca_shards(_specs(engine=engine), jobs=1)
        fanned = run_dca_shards(_specs(engine=engine), jobs=4)
        assert [e.seed for e in serial] == [e.seed for e in fanned]
        assert [e.metrics for e in serial] == [e.metrics for e in fanned]
        assert combined_fingerprint(serial) == combined_fingerprint(fanned)
        assert merge_shard_reports(serial) == merge_shard_reports(fanned)

    def test_merge_is_order_free(self):
        envelopes = run_dca_shards(_specs(), jobs=1)
        shuffled = list(reversed(envelopes))
        assert merge_shard_reports(shuffled) == merge_shard_reports(envelopes)


class TestMergeArithmetic:
    def test_extensive_counters_sum_exactly(self):
        envelopes = run_dca_shards(_specs(), jobs=1)
        merged = merge_shard_reports(envelopes)
        metrics = [e.metrics for e in envelopes]
        assert merged["tasks"] == sum(m["tasks"] for m in metrics)
        assert merged["tasks_correct"] == sum(m["tasks_correct"] for m in metrics)
        assert merged["total_jobs"] == sum(m["total_jobs"] for m in metrics)
        assert merged["reliability"] == merged["tasks_correct"] / merged["tasks"]
        assert merged["cost_factor"] == merged["total_jobs"] / merged["tasks"]
        assert merged["makespan"] == max(m["makespan"] for m in metrics)
        assert merged["shards"] == len(envelopes)
        assert merged["checksum"] == combined_fingerprint(envelopes)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="zero"):
            merge_shard_reports([])

    def test_single_shard_merge_matches_shard(self):
        envelopes = run_dca_shards(
            shard_specs(
                lambda: ProgressiveRedundancy(5),
                tasks=200,
                nodes=40,
                reliability=0.7,
                shards=1,
                seed=8,
            ),
            jobs=1,
        )
        merged = merge_shard_reports(envelopes)
        shard = envelopes[0].metrics
        assert merged["reliability"] == shard["reliability"]
        assert merged["cost_factor"] == pytest.approx(shard["cost_factor"])
        assert merged["mean_waves"] == pytest.approx(shard["mean_waves"])
