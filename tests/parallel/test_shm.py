"""Unit tests for the shared-memory column transport
(:mod:`repro.parallel.shm`): round-trips, segment lifetime, and handle
layout."""

import pytest

np = pytest.importorskip("numpy")

from repro.parallel.shm import (
    read_columns,
    release_columns,
    shm_available,
    write_columns,
)

pytestmark = pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")


def _columns(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "response_time": rng.random(n),
        "jobs_used": rng.integers(1, 9, size=n),
        "waves": rng.integers(1, 4, size=n),
        "correct": rng.random(n) < 0.7,
    }


class TestRoundTrip:
    def test_values_dtypes_and_order_survive(self):
        columns = _columns()
        handle = write_columns(columns)
        assert handle.columns() == tuple(columns)
        out = read_columns(handle)
        for name, column in columns.items():
            assert out[name].dtype == column.dtype
            assert np.array_equal(out[name], column)

    def test_copies_survive_the_segment(self):
        handle = write_columns(_columns())
        out = read_columns(handle)  # unlinks
        # The arrays are private copies, not views of the dead segment.
        assert float(out["response_time"].sum()) == pytest.approx(
            float(_columns()["response_time"].sum())
        )

    def test_empty_columns_round_trip(self):
        columns = {
            "response_time": np.empty(0, dtype=np.float64),
            "jobs_used": np.empty(0, dtype=np.int64),
        }
        out = read_columns(write_columns(columns))
        assert out["response_time"].shape == (0,)
        assert out["jobs_used"].dtype == np.int64

    def test_non_contiguous_input_is_handled(self):
        strided = np.arange(200, dtype=np.float64)[::2]
        assert not strided.flags["C_CONTIGUOUS"] or strided.base is not None
        out = read_columns(write_columns({"response_time": strided}))
        assert np.array_equal(out["response_time"], strided)


class TestLifetime:
    def test_read_unlinks_by_default(self):
        handle = write_columns(_columns())
        read_columns(handle)
        with pytest.raises(FileNotFoundError):
            read_columns(handle)

    def test_read_can_leave_the_segment_alive(self):
        handle = write_columns(_columns())
        first = read_columns(handle, unlink=False)
        second = read_columns(handle)  # now unlinks
        assert np.array_equal(first["response_time"], second["response_time"])

    def test_release_is_idempotent_and_none_safe(self):
        handle = write_columns(_columns())
        release_columns(handle)
        release_columns(handle)  # already gone: tolerated
        release_columns(None)


class TestHandle:
    def test_handle_is_small_and_picklable(self):
        import pickle

        handle = write_columns(_columns(n=10_000))
        try:
            payload = pickle.dumps(handle)
            # The whole point: ~80 KB of columns, a sub-kilobyte handle.
            assert len(payload) < 1024
            assert pickle.loads(payload) == handle
        finally:
            release_columns(handle)

    def test_layout_records_offsets_in_declaration_order(self):
        columns = _columns(n=8)
        handle = write_columns(columns)
        try:
            offsets = [start for _, (_, _, start) in handle.layout]
            assert offsets == sorted(offsets)
            assert handle.nbytes == sum(c.nbytes for c in columns.values())
        finally:
            release_columns(handle)
