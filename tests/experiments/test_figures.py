# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests that every experiment harness reproduces the paper's *shape*.

These are the acceptance tests of the reproduction: each figure's
qualitative claims, asserted against the harness output at test scale.
"""

import math

import pytest

from repro.experiments import examples_table, figure3, figure5a, figure5b, figure5c, figure6


@pytest.fixture(scope="module")
def fig3():
    return figure3.compute()


@pytest.fixture(scope="module")
def fig5a():
    return figure5a.compute(tasks=2_000, nodes=300, replications=2)


@pytest.fixture(scope="module")
def fig5b():
    return figure5b.compute(
        ks=(3, 9), ds=(2, 4), sat_vars=12, tasks=60, problems=2, nodes=120
    )


@pytest.fixture(scope="module")
def fig6():
    return figure6.compute(
        ks=(3, 9, 19), ds=(2, 4, 6), tasks=2_000, nodes=300, replications=2
    )


def interpolate_reliability_at_cost(series, cost):
    """Linear interpolation of a series' reliability at a given cost."""
    points = sorted(series.points, key=lambda p: p.cost)
    if cost <= points[0].cost or cost >= points[-1].cost:
        return None
    for a, b in zip(points, points[1:]):
        if a.cost <= cost <= b.cost:
            t = (cost - a.cost) / (b.cost - a.cost)
            return a.reliability + t * (b.reliability - a.reliability)
    return None


class TestFigure3:
    def test_three_series(self, fig3):
        assert [s.name for s in fig3.series] == ["TR", "PR", "IR"]

    def test_reliability_monotone_in_cost(self, fig3):
        for series in fig3.series:
            reliabilities = [p.reliability for p in series.points]
            assert reliabilities == sorted(reliabilities)

    def test_ordering_ir_above_pr_above_tr(self, fig3):
        """At each technique's own cost, the faster techniques dominate."""
        tr, pr, ir = fig3.series
        for point in tr.points:
            pr_val = interpolate_reliability_at_cost(pr, point.cost)
            if pr_val is not None:
                assert pr_val > point.reliability
        for point in pr.points:
            ir_val = interpolate_reliability_at_cost(ir, point.cost)
            if ir_val is not None:
                assert ir_val > point.reliability - 1e-9

    def test_renders(self, fig3):
        text = figure3.render(fig3)
        assert "Figure 3" in text
        assert "TR" in text and "IR" in text

    def test_main_smoke(self):
        assert "Figure 3" in figure3.main("smoke")


class TestFigure5a:
    def test_measured_tracks_analytic(self, fig5a):
        for series in fig5a.series:
            for point in series.points:
                assert point.cost == pytest.approx(
                    point.extra["analytic_cost"], rel=0.05
                )
                assert point.reliability == pytest.approx(
                    point.extra["analytic_reliability"], abs=0.03
                )

    def test_ir_dominates_at_comparable_cost(self, fig5a):
        tr, pr, ir = fig5a.series
        for point in tr.points:
            ir_val = interpolate_reliability_at_cost(ir, point.cost)
            if ir_val is not None:
                assert ir_val > point.reliability

    def test_renders(self, fig5a):
        assert "Figure 5(a)" in figure5a.render(fig5a)


class TestFigure5b:
    def test_all_problems_complete(self, fig5b):
        for series in fig5b.series:
            for point in series.points:
                assert not math.isnan(point.reliability)

    def test_derived_r_consistent_and_below_seeded(self, fig5b):
        estimates = [
            p.extra["derived_r"]
            for s in fig5b.series
            for p in s.points
            if not math.isnan(p.extra["derived_r"]) and p.cost > 2.0
        ]
        assert estimates
        # All estimates cluster below the 0.7 seeded ceiling.
        assert all(0.55 < e < 0.75 for e in estimates)
        assert sum(estimates) / len(estimates) < 0.72

    def test_renders(self, fig5b):
        assert "Figure 5(b)" in figure5b.render(fig5b)


class TestFigure5c:
    def test_paper_quoted_values(self):
        result = figure5c.compute()
        pr = {p.cost: p.reliability for p in result.series[0].points}
        ir = {p.cost: p.reliability for p in result.series[1].points}
        # PR: rises monotonically toward ~1.9 at high r.
        pr_values = [pr[r] for r in sorted(pr)]
        assert pr_values == sorted(pr_values)
        assert 1.8 < pr_values[-1] <= 2.0
        # IR: >= 1.5 at the low end, peak > 2.5 in the 0.85-0.95 region,
        # easing off toward ~2.4-2.6 near r = 1.
        ir_values = [ir[r] for r in sorted(ir)]
        assert ir_values[0] >= 1.5
        peak = max(ir_values)
        assert peak > 2.5
        assert ir_values[-1] < peak

    def test_ir_beats_pr_everywhere(self):
        result = figure5c.compute()
        for pr_point, ir_point in zip(result.series[0].points, result.series[1].points):
            assert ir_point.reliability > pr_point.reliability

    def test_simulation_cross_check(self):
        result = figure5c.simulate_check(
            r_values=(0.7,), tasks=2_000, nodes=300, replications=2
        )
        point = result.series[0].points[0]
        # Measured improvement near the analytic ~2.0 at r = 0.7.
        assert 1.6 < point.reliability < 2.4

    def test_renders(self):
        assert "Figure 5(c)" in figure5c.render(figure5c.compute())


class TestFigure6:
    def test_response_ratios_in_paper_ranges(self, fig6):
        tr, pr, ir = fig6.series
        tr_by_param = {p.label: p.reliability for p in tr.points}
        # PR at the same k responds 1.2-3x slower than TR.
        for point in pr.points:
            ratio = point.reliability / tr_by_param[point.label]
            assert 1.1 < ratio < 3.2
        # IR at comparable cost also lands in the paper's 1.4-2.8 band
        # (compare d=4 with k=9-ish cost; use the nearest-cost TR point).
        for point in ir.points:
            nearest = min(tr.points, key=lambda t: abs(t.cost - point.cost))
            if point.cost > 2.5:  # skip the degenerate d<=2 points
                ratio = point.reliability / nearest.reliability
                assert 1.2 < ratio < 3.5

    def test_measured_matches_unloaded_model(self, fig6):
        """With follow-up priority, the loaded system stays close to the
        unloaded analytic response model."""
        for series in fig6.series:
            for point in series.points:
                assert point.reliability == pytest.approx(
                    point.extra["analytic_response"], rel=0.15
                )

    def test_renders(self, fig6):
        assert "Figure 6" in figure6.render(fig6)


class TestExamplesTable:
    def test_every_worked_example_agrees(self):
        rows = examples_table.compute()
        for row in rows:
            assert row.agrees, f"{row.claim}: computed {row.computed}"

    def test_renders(self):
        text = examples_table.main()
        assert "Table E1" in text
        assert "NO" not in text.replace("NO ", "")  # no disagreement markers
