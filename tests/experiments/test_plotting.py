"""Tests for the ASCII plot renderer."""

import pytest

from repro.experiments.common import ExperimentResult, Series, SeriesPoint
from repro.experiments.plotting import ascii_plot


def make_result():
    a = Series("alpha")
    a.add(SeriesPoint(label="p1", cost=1.0, reliability=0.5))
    a.add(SeriesPoint(label="p2", cost=10.0, reliability=0.9))
    b = Series("beta")
    b.add(SeriesPoint(label="p1", cost=5.0, reliability=0.99))
    return ExperimentResult("demo plot", [a, b])


class TestAsciiPlot:
    def test_contains_title_markers_and_legend(self):
        text = ascii_plot(make_result())
        assert "demo plot" in text
        assert "T = alpha" in text
        assert "P = beta" in text
        plot_rows = [l for l in text.splitlines() if l.startswith("  |")]
        assert any("T" in row for row in plot_rows)
        assert any("P" in row for row in plot_rows)

    def test_extremes_on_axes(self):
        text = ascii_plot(make_result())
        assert "0.99" in text  # y max
        assert "10" in text  # x max

    def test_dimensions(self):
        text = ascii_plot(make_result(), width=30, height=8)
        plot_rows = [l for l in text.splitlines() if l.startswith("  |")]
        assert len(plot_rows) == 8
        assert all(len(row) == 3 + 30 for row in plot_rows)

    def test_degenerate_single_point(self):
        series = Series("s")
        series.add(SeriesPoint(label="only", cost=3.0, reliability=0.7))
        text = ascii_plot(ExperimentResult("single", [series]))
        assert "T = s" in text

    def test_no_points(self):
        text = ascii_plot(ExperimentResult("empty", [Series("s")]))
        assert "no finite points" in text

    def test_nan_points_skipped(self):
        series = Series("s")
        series.add(SeriesPoint(label="bad", cost=float("nan"), reliability=0.5))
        series.add(SeriesPoint(label="ok", cost=1.0, reliability=0.5))
        text = ascii_plot(ExperimentResult("nan", [series]))
        assert "T = s" in text

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ascii_plot(make_result(), width=5, height=2)

    def test_real_figure3(self):
        from repro.experiments import figure3

        text = ascii_plot(figure3.compute(), x_label="cost", y_label="R")
        assert "I = IR" in text
