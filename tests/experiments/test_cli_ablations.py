# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for the CLI and the ablation studies."""

import pytest

from repro.experiments import EXPERIMENTS, ablations
from repro.experiments.cli import main as cli_main
from repro.experiments.common import (
    ExperimentResult,
    Series,
    SeriesPoint,
    render_table,
    replicate_dca,
)
from repro.core import IterativeRedundancy


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert cli_main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert cli_main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_examples(self, capsys):
        assert cli_main(["examples"]) == 0
        assert "Table E1" in capsys.readouterr().out

    def test_telemetry_flag_writes_capture(self, tmp_path, capsys):
        from repro.obs import Capture
        from repro.obs.context import current_sink

        target = tmp_path / "cap.json"
        assert cli_main(["examples", "--telemetry", str(target)]) == 0
        assert "telemetry capture written" in capsys.readouterr().err
        capture = Capture.load(target)
        assert capture.meta["label"] == "experiments:examples"
        assert capture.meta["scale"] == "default"
        # The sink must not leak past the command.
        assert current_sink() is None

    def test_scale_flag_validated(self):
        with pytest.raises(SystemExit):
            cli_main(["examples", "--scale", "galactic"])


class TestCommon:
    def test_render_table_alignment_and_notes(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], ["x", float("nan")]], ["hello"])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "note: hello" in text
        assert "-" in lines[-2]  # nan rendered as '-'

    def test_replicate_dca_aggregates(self):
        m = replicate_dca(
            lambda: IterativeRedundancy(2),
            tasks=300,
            nodes=100,
            reliability=0.8,
            replications=2,
            seed=1,
        )
        assert m.replications == 2
        assert m.mean_cost > 0
        assert 0 <= m.mean_reliability <= 1
        assert m.cost_err >= 0

    def test_replicate_requires_positive_reps(self):
        with pytest.raises(ValueError):
            replicate_dca(
                lambda: IterativeRedundancy(2),
                tasks=10,
                nodes=10,
                reliability=0.7,
                replications=0,
            )

    def test_single_replicate_has_zero_error_bars(self):
        # Regression: one replicate must yield 0.0 standard errors (a
        # defined, plottable value), never NaN or a ZeroDivisionError.
        m = replicate_dca(
            lambda: IterativeRedundancy(2),
            tasks=100,
            nodes=50,
            reliability=0.8,
            replications=1,
            seed=3,
        )
        assert m.replications == 1
        assert m.cost_err == 0.0
        assert m.reliability_err == 0.0

    def test_jobs_do_not_change_measurements(self):
        kwargs = dict(
            tasks=100, nodes=50, reliability=0.8, replications=2, seed=4
        )
        serial = replicate_dca(lambda: IterativeRedundancy(2), jobs=1, **kwargs)
        fanned = replicate_dca(lambda: IterativeRedundancy(2), jobs=3, **kwargs)
        assert serial == fanned

    def test_series_by_name(self):
        result = ExperimentResult("t", [Series("A"), Series("B")])
        assert result.series_by_name("B").name == "B"
        with pytest.raises(KeyError):
            result.series_by_name("C")


class TestAblations:
    def test_theorem1_rows_identical(self):
        text = ablations.theorem1_ablation(tasks=600)
        lines = [l for l in text.splitlines() if l.startswith(("simple", "complex"))]
        simple_fields = lines[0].split()[-2:]
        complex_fields = lines[1].split()[-2:]
        assert simple_fields == complex_fields

    def test_defection_hurts_adaptive_more_than_iterative(self):
        text = ablations.defection_ablation(tasks=600)
        lines = [l for l in text.splitlines() if l.startswith(("adaptive", "iterative"))]
        adaptive_reliability = float(lines[0].split()[-1])
        iterative_reliability = float(lines[1].split()[-1])
        assert iterative_reliability > adaptive_reliability

    def test_priority_improves_response_time(self):
        text = ablations.priority_ablation(tasks=800)
        lines = [l for l in text.splitlines() if "first" in l or "FIFO" in l]
        priority_resp = float(lines[0].split()[-3])
        fifo_resp = float(lines[1].split()[-3])
        assert priority_resp < fifo_resp

    def test_worstcase_binary_is_lower_bound(self):
        text = ablations.worstcase_ablation(tasks=800)
        lines = text.splitlines()
        colluding = next(l for l in lines if l.startswith("colluding"))
        diverse = next(l for l in lines if l.startswith("non-colluding"))
        assert float(diverse.split()[-1]) > float(colluding.split()[-1])

    def test_whitewash_evasion_defeats_credibility(self):
        text = ablations.whitewash_ablation(tasks=400)
        assert "whitewashing" in text
        lines = text.splitlines()
        naive = next(l for l in lines if "naive" in l)
        evading = next(l for l in lines if "check-evading" in l)
        iterative = next(l for l in lines if l.startswith("iterative"))
        assert float(evading.split()[-1]) < float(naive.split()[-1])
        assert float(iterative.split()[-1]) > float(evading.split()[-1])

    def test_checkpointing_reduces_wall_clock(self):
        text = ablations.checkpointing_ablation(tasks=500)
        lines = text.splitlines()
        none = next(l for l in lines if l.startswith("no checkpoints"))
        young = next(l for l in lines if "tau*" in l)
        assert float(young.split()[-3]) < float(none.split()[-3])


class TestCliJsonPlot:
    def test_json_output_parses(self, capsys):
        import json

        assert cli_main(["figure3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["title"].startswith("Figure 3")
        assert {s["name"] for s in payload["series"]} == {"TR", "PR", "IR"}

    def test_json_unavailable_for_tables(self, capsys):
        assert cli_main(["examples", "--json"]) == 2
        assert "no JSON output" in capsys.readouterr().err

    def test_plot_appended(self, capsys):
        assert cli_main(["figure3", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend: T = TR" in out

    def test_plot_unavailable_message(self, capsys):
        assert cli_main(["examples", "--plot"]) == 0
        assert "no plot available" in capsys.readouterr().err


class TestCliJobs:
    def test_jobs_flag_output_byte_identical(self, capsys):
        # The acceptance bar for the replication engine: the CLI's output
        # is byte-identical whatever --jobs says.
        assert cli_main(["figure3", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert cli_main(["figure3", "--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial

    def test_jobs_flag_reaches_simulation(self, capsys):
        assert cli_main(["figure5a", "--scale", "smoke", "--jobs", "2"]) == 0
        first = capsys.readouterr().out
        assert cli_main(["figure5a", "--scale", "smoke", "--jobs", "1"]) == 0
        assert capsys.readouterr().out == first
