"""Tests for the sensitivity analysis and the schematic renderings."""

import pytest

from repro.core import analysis
from repro.experiments import schematics, sensitivity


class TestCostReliabilitySurface:
    def test_surface_shape(self):
        result = sensitivity.cost_reliability_surface(rs=(0.7, 0.9), ds=(1, 2, 4))
        assert len(result.series) == 2
        assert len(result.series[0].points) == 3

    def test_reliability_monotone_in_d_and_r(self):
        result = sensitivity.cost_reliability_surface()
        for series in result.series:
            values = [p.reliability for p in series.points]
            assert values == sorted(values)
        # Across series at fixed d: higher r -> higher reliability.
        first_points = [series.points[2].reliability for series in result.series]
        assert first_points == sorted(first_points)


class TestBreakevenFrontier:
    def test_rows_cover_grid(self):
        rows = sensitivity.breakeven_frontier(rs=(0.7,), targets=(0.99, 0.999))
        assert len(rows) == 2

    def test_savings_always_at_least_one(self):
        """IR never costs more than the reliability-matched TR vote."""
        for row in sensitivity.breakeven_frontier():
            savings = row[5]
            assert savings >= 1.0 - 1e-9

    def test_margin_meets_target(self):
        for r, target, d, cost, k_real, savings in sensitivity.breakeven_frontier():
            assert analysis.iterative_reliability(r, d) >= target


class TestMisestimationRegret:
    def test_reliability_degrades_gracefully(self):
        """With d tuned at r=0.7 but truth at 0.6, delivered reliability
        stays within a few points of the correctly tuned value."""
        rows = sensitivity.misestimation_regret(assumed_r=0.7, target=0.99)
        by_true_r = {row[0]: row for row in rows}
        _, d, delivered, cost, tuned = by_true_r[0.6]
        assert delivered > 0.9
        assert tuned - delivered < 0.08

    def test_cost_self_adjusts_upward_for_worse_pools(self):
        rows = sensitivity.misestimation_regret()
        costs = [row[3] for row in rows]
        assert costs == sorted(costs, reverse=True)  # worse r -> higher cost

    def test_render_all_contains_three_tables(self):
        text = sensitivity.render_all()
        assert text.count("Sensitivity:") == 3
        assert sensitivity.main() == text


class TestSchematics:
    def test_figure1_mentions_model_elements(self):
        text = schematics.figure1_schematic()
        for needle in ("node pool", "job queue", "random selection", "churn"):
            assert needle in text

    def test_figure2_parameters_come_from_the_code(self):
        text = schematics.figure2_schematic()
        assert "distribute 19 independent jobs" in text  # TR initial wave
        assert "distribute 10 jobs" in text  # PR consensus size
        assert "distribute 4 jobs" in text  # IR margin
        assert "while a - b < 4" in text

    def test_main_concatenates(self):
        text = schematics.main()
        assert "Figure 1 schematic" in text
        assert "Figure 2 schematic" in text
