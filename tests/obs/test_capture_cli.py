"""Capture round-trips, diffing, and the repro-obs CLI."""

import json

import pytest

from repro.obs import Capture, TelemetryRecorder, diff_captures, format_diff
from repro.obs.cli import main


def _capture(submits: int, makespan: float) -> Capture:
    recorder = TelemetryRecorder()
    recorder.count("dca.submit", submits)
    recorder.gauge("dca.makespan", makespan)
    recorder.observe("dca.response_time", makespan / 2)
    recorder.span_begin("dca.task", 0, 0.0)
    recorder.span_end("dca.task", 0, makespan)
    return Capture.from_recorder(recorder, meta={"label": "unit"})


class TestCaptureRoundTrip:
    def test_save_load_preserves_content(self, tmp_path):
        capture = _capture(5, 12.0)
        path = capture.save(tmp_path / "cap.json")
        loaded = Capture.load(path)
        assert loaded.metrics == capture.metrics
        assert loaded.spans == capture.spans
        assert loaded.meta == capture.meta

    def test_foreign_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a telemetry capture"):
            Capture.load(path)

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"kind": "repro-obs-capture", "schema_version": 99})
        )
        with pytest.raises(ValueError, match="schema v99"):
            Capture.load(path)


class TestDiff:
    def test_deltas_per_series(self):
        rows = diff_captures(_capture(5, 12.0), _capture(8, 12.0))
        by_metric = {row["metric"]: row for row in rows}
        assert by_metric["dca.submit"]["delta"] == 3
        assert by_metric["dca.makespan"]["delta"] == 0

    def test_missing_series_counts_as_zero(self):
        a = _capture(5, 12.0)
        b = _capture(5, 12.0)
        b.metrics.pop("dca.submit")
        rows = diff_captures(a, b)
        row = next(r for r in rows if r["metric"] == "dca.submit")
        assert (row["a"], row["b"], row["delta"]) == (5, 0, -5)

    def test_histograms_diff_on_count(self):
        rows = diff_captures(_capture(5, 12.0), _capture(5, 12.0))
        row = next(r for r in rows if r["metric"] == "dca.response_time")
        assert row["kind"] == "histogram"
        assert row["delta"] == 0

    def test_format_only_changed_hides_zero_rows(self):
        rows = diff_captures(_capture(5, 12.0), _capture(8, 12.0))
        text = format_diff(rows, only_changed=True)
        assert "dca.submit" in text
        assert "dca.makespan" not in text


class TestCli:
    def test_summary(self, tmp_path, capsys):
        path = _capture(5, 12.0).save(tmp_path / "cap.json")
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "capture: unit" in out
        assert "dca.submit" in out

    def test_export_jsonl_to_stdout(self, tmp_path, capsys):
        path = _capture(5, 12.0).save(tmp_path / "cap.json")
        assert main(["export", str(path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_export_chrome_to_file(self, tmp_path):
        path = _capture(5, 12.0).save(tmp_path / "cap.json")
        out = tmp_path / "trace.json"
        assert main(["export", str(path), "--format", "chrome", "--output", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_diff_reports_metric_deltas(self, tmp_path, capsys):
        a = _capture(5, 12.0).save(tmp_path / "a.json")
        b = _capture(9, 12.0).save(tmp_path / "b.json")
        assert main(["diff", str(a), str(b), "--only-changed"]) == 0
        out = capsys.readouterr().out
        assert "dca.submit" in out
        assert "+4" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "nope.json")]) == 2
        assert "repro-obs:" in capsys.readouterr().err
