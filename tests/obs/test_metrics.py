"""MetricsRegistry: families, labels, snapshots, and merging."""

import pytest

from repro.obs import DEFAULT_BOUNDARIES, MetricsRegistry, merge_snapshots


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("dca.submit")
        counter.inc()
        counter.inc(4)
        snap = registry.snapshot()
        assert snap["dca.submit"]["series"] == [{"labels": {}, "value": 5}]

    def test_labeled_series_are_separate_and_sorted(self):
        registry = MetricsRegistry()
        counter = registry.counter("decisions")
        counter.inc(2, {"outcome": "extend"})
        counter.inc(1, {"outcome": "accept"})
        series = registry.snapshot()["decisions"]["series"]
        assert [s["labels"]["outcome"] for s in series] == ["accept", "extend"]
        assert [s["value"] for s in series] == [1, 2]

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauge:
    def test_set_keeps_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("heap")
        gauge.set(10)
        gauge.set(3)
        assert registry.snapshot()["heap"]["series"] == [{"labels": {}, "value": 3}]


class TestHistogram:
    def test_bucketing_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rt", boundaries=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        series = registry.snapshot()["rt"]["series"][0]
        assert series["counts"] == [1, 1, 1]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(55.5)

    def test_boundary_value_goes_to_higher_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rt", boundaries=(1.0,))
        hist.observe(1.0)
        assert registry.snapshot()["rt"]["series"][0]["counts"] == [0, 1]

    def test_default_boundaries(self):
        registry = MetricsRegistry()
        registry.histogram("rt").observe(2.0)
        assert registry.snapshot()["rt"]["boundaries"] == list(DEFAULT_BOUNDARIES)

    def test_non_increasing_boundaries_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("rt", boundaries=(2.0, 1.0))

    def test_boundary_mismatch_on_reuse_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("rt", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("rt", boundaries=(5.0,))


class TestSnapshot:
    def test_snapshot_is_canonically_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()) == ["alpha", "zeta"]

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        snap = registry.snapshot()
        snap["x"]["series"][0]["value"] = 999
        assert registry.snapshot()["x"]["series"][0]["value"] == 1


class TestMerge:
    def _snap(self, **counts):
        registry = MetricsRegistry()
        for name, value in counts.items():
            registry.counter(name).inc(value)
        return registry.snapshot()

    def test_counters_sum(self):
        merged = merge_snapshots([self._snap(a=1), self._snap(a=2, b=5)])
        values = {name: fam["series"][0]["value"] for name, fam in merged.items()}
        assert values == {"a": 3, "b": 5}

    def test_gauges_take_max(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.gauge("heap").set(10)
        r2.gauge("heap").set(7)
        merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
        assert merged["heap"]["series"][0]["value"] == 10

    def test_histogram_bins_sum(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("rt", boundaries=(1.0,)).observe(0.5)
        r2.histogram("rt", boundaries=(1.0,)).observe(2.0)
        merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
        series = merged["rt"]["series"][0]
        assert series["counts"] == [1, 1]
        assert series["count"] == 2

    def test_merge_is_order_independent(self):
        snaps = [self._snap(a=1, b=2), self._snap(a=4), self._snap(b=9)]
        assert merge_snapshots(snaps) == merge_snapshots(list(reversed(snaps)))

    def test_kind_mismatch_raises(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("x").inc()
        r2.gauge("x").set(1)
        with pytest.raises(ValueError):
            merge_snapshots([r1.snapshot(), r2.snapshot()])

    def test_merge_does_not_alias_inputs(self):
        snap = self._snap(a=1)
        merged = merge_snapshots([snap])
        merged["a"]["series"][0]["value"] = 999
        assert snap["a"]["series"][0]["value"] == 1
