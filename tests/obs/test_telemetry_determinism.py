# reprolint: disable-file=RL003 -- byte-exact equality is the property under test
"""Telemetry observes, never perturbs: the subsystem's core contract.

Three pins:

* recording on vs off leaves the same-seed DCA trace byte-identical
  (checked against the pre-optimization golden digests);
* replicate metrics and fingerprints are unchanged by telemetry;
* position-merged telemetry is byte-identical for ``jobs=4`` and
  ``jobs=1`` runs of the same specs.
"""

import copy
import hashlib
import json

import pytest

from repro.core import IterativeRedundancy, TraditionalRedundancy
from repro.dca import DcaConfig
from repro.dca.simulation import DcaSimulation
from repro.dca.tracing import TraceLog, instrument_server
from repro.lint.sanitizer import trace_fingerprint
from repro.obs import TelemetryRecorder, TelemetrySink, clear_sink, install_sink
from repro.parallel import (
    dca_replicate_specs,
    merge_telemetry,
    run_dca_replicates,
)

#: Mirrors two goldens from tests/lint/test_golden_fingerprints.py; if
#: those digests are ever (deliberately) refreshed, refresh these too.
GOLDENS = [
    (
        lambda: IterativeRedundancy(3),
        dict(tasks=60, nodes=25, reliability=0.7, seed=1234),
        "ed98c36d14c2ca0560fd760e9298d78fac3364cc6b48ba30cac21444e7991c6e",
    ),
    (
        lambda: TraditionalRedundancy(5),
        dict(tasks=60, nodes=25, reliability=0.7, seed=1234),
        "35b127eeeaa038f783440ea407385028a6ca47f5f53b396119d3c39e8047eef8",
    ),
]


def _digest_with(factory, config_kwargs, recorder):
    config = DcaConfig(strategy=factory(), **config_kwargs)
    sim = DcaSimulation(copy.deepcopy(config), recorder=recorder)
    log = instrument_server(sim.server, TraceLog())
    sim.run()
    return hashlib.sha256(trace_fingerprint(list(log)).encode()).hexdigest()


@pytest.mark.parametrize("factory,config_kwargs,expected", GOLDENS)
def test_golden_trace_identical_with_recorder_on_and_off(
    factory, config_kwargs, expected
):
    assert _digest_with(factory, config_kwargs, None) == expected
    assert _digest_with(factory, config_kwargs, TelemetryRecorder()) == expected


def _specs(telemetry=False):
    return dca_replicate_specs(
        lambda: IterativeRedundancy(3),
        tasks=40,
        nodes=20,
        reliability=0.7,
        replications=4,
        seed=77,
        telemetry=telemetry,
    )


def test_telemetry_flag_does_not_change_fingerprints():
    plain = run_dca_replicates(_specs(telemetry=False), jobs=1)
    recorded = run_dca_replicates(_specs(telemetry=True), jobs=1)
    assert [e.fingerprint for e in plain] == [e.fingerprint for e in recorded]
    assert all(e.telemetry is None for e in plain)
    assert all(e.telemetry is not None for e in recorded)


def test_parallel_merged_telemetry_matches_serial_bytes():
    serial = merge_telemetry(run_dca_replicates(_specs(telemetry=True), jobs=1))
    fanned = merge_telemetry(run_dca_replicates(_specs(telemetry=True), jobs=4))
    assert json.dumps(serial, sort_keys=True) == json.dumps(fanned, sort_keys=True)


def test_merge_telemetry_none_without_payloads():
    assert merge_telemetry(run_dca_replicates(_specs(), jobs=1)) is None


def test_installed_sink_upgrades_specs_and_collects_runs():
    sink = TelemetrySink()
    install_sink(sink)
    try:
        envelopes = run_dca_replicates(_specs(), jobs=1)
    finally:
        clear_sink()
    assert all(e.telemetry is not None for e in envelopes)
    (run,) = sink.runs
    assert run["label"] == "iterative(d=3) x4"
    assert run["metrics"]["dca.accept"]["series"][0]["value"] == 4 * 40
    capture = sink.capture({"label": "t"})
    assert capture.runs and capture.spans
