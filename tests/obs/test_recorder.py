"""Recorder contract: null/tee normalization, buffering, caps."""

from repro.obs import NullRecorder, Recorder, TeeRecorder, TelemetryRecorder, active


class TestActive:
    def test_none_stays_none(self):
        assert active(None) is None

    def test_null_recorder_normalizes_to_none(self):
        assert active(NullRecorder()) is None

    def test_enabled_recorder_passes_through(self):
        recorder = TelemetryRecorder()
        assert active(recorder) is recorder

    def test_empty_tee_normalizes_to_none(self):
        assert active(TeeRecorder(NullRecorder(), None)) is None


class TestNullRecorder:
    def test_every_method_is_a_noop(self):
        recorder = NullRecorder()
        recorder.event("e", 1.0)
        recorder.span_begin("s", 1, 0.0)
        recorder.span_end("s", 1, 2.0)
        recorder.count("c")
        recorder.gauge("g", 5)
        recorder.observe("h", 0.5)
        assert recorder.enabled is False


class TestTelemetryRecorder:
    def test_span_pairing_on_name_and_key(self):
        recorder = TelemetryRecorder()
        recorder.span_begin("job", 1, 0.0, {"node": 1})
        recorder.span_begin("job", 2, 0.5, {"node": 2})
        recorder.span_end("job", 1, 2.0, {"outcome": "complete"})
        assert recorder.open_spans == 1
        (span,) = recorder.spans
        assert (span.key, span.start, span.end) == (1, 0.0, 2.0)
        assert span.attrs == {"node": 1, "outcome": "complete"}
        assert span.unmatched is False

    def test_unmatched_end_is_zero_length_and_flagged(self):
        recorder = TelemetryRecorder()
        recorder.span_end("job", 9, 3.0)
        (span,) = recorder.spans
        assert span.start == span.end == 3.0
        assert span.unmatched is True

    def test_span_cap_drops_and_counts(self):
        recorder = TelemetryRecorder(max_spans=1)
        for key in (1, 2, 3):
            recorder.span_begin("job", key, 0.0)
            recorder.span_end("job", key, 1.0)
        assert len(recorder.spans) == 1
        assert recorder.dropped_spans == 2

    def test_event_cap_drops_and_counts(self):
        recorder = TelemetryRecorder(max_events=2)
        for i in range(5):
            recorder.event("decide", float(i))
        assert len(recorder.events) == 2
        assert recorder.dropped_events == 3

    def test_metrics_flow_into_registry(self):
        recorder = TelemetryRecorder()
        recorder.count("c", 3)
        recorder.gauge("g", 7)
        recorder.observe("h", 0.1)
        snap = recorder.registry.snapshot()
        assert snap["c"]["series"][0]["value"] == 3
        assert snap["g"]["series"][0]["value"] == 7
        assert snap["h"]["series"][0]["count"] == 1

    def test_payload_shape(self):
        recorder = TelemetryRecorder()
        recorder.span_begin("s", 1, 0.0)
        recorder.span_end("s", 1, 1.0)
        recorder.event("e", 0.5, {"k": "v"})
        recorder.count("c")
        payload = recorder.as_payload()
        assert sorted(payload) == [
            "dropped_events",
            "dropped_spans",
            "events",
            "metrics",
            "open_spans",
            "spans",
        ]
        assert payload["spans"][0]["name"] == "s"
        assert payload["events"][0]["attrs"] == {"k": "v"}


class TestTeeRecorder:
    def test_forwards_to_all_enabled_recorders(self):
        a, b = TelemetryRecorder(), TelemetryRecorder()
        tee = TeeRecorder(a, NullRecorder(), b)
        assert tee.enabled
        tee.count("c", 2)
        tee.event("e", 1.0)
        assert a.registry.counter("c").value() == 2
        assert b.registry.counter("c").value() == 2
        assert len(a.events) == len(b.events) == 1

    def test_base_recorder_interface_is_noop(self):
        # The abstract base must be safe to call: adapters may override
        # only a subset of hooks.
        recorder = Recorder()
        recorder.count("c")
        recorder.event("e", 0.0)
        assert recorder.enabled is False
