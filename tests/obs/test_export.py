"""Exporter formats: JSONL lines, Chrome trace shape, Prometheus text."""

import json

import pytest

from repro.obs import (
    Capture,
    TelemetryRecorder,
    to_chrome_trace,
    to_chrome_trace_json,
    to_jsonl,
    to_prometheus,
)


@pytest.fixture()
def capture():
    recorder = TelemetryRecorder()
    recorder.span_begin("dca.job", 1, 0.0, {"node": 1})
    recorder.span_end("dca.job", 1, 2.5, {"outcome": "complete"})
    recorder.event("dca.decide", 1.25, {"outstanding_more": 0})
    recorder.count("dca.submit", 3)
    recorder.gauge("dca.makespan", 2.5)
    recorder.observe("dca.response_time", 2.5, labels={"strategy": "ir"})
    return Capture.from_recorder(
        recorder, meta={"label": "unit"}, label="iterative(d=3) x1"
    )


class TestJsonl:
    def test_every_line_is_json_with_a_type(self, capture):
        lines = to_jsonl(capture).strip().splitlines()
        records = [json.loads(line) for line in lines]
        types = [record["type"] for record in records]
        assert types[0] == "meta"
        assert {"metric", "span", "event"} <= set(types)

    def test_histogram_lines_carry_boundaries(self, capture):
        records = [json.loads(line) for line in to_jsonl(capture).strip().splitlines()]
        hist = [
            r for r in records if r["type"] == "metric" and r["name"] == "dca.response_time"
        ]
        assert hist and "boundaries" in hist[0]

    def test_deterministic(self, capture):
        assert to_jsonl(capture) == to_jsonl(capture)


class TestChromeTrace:
    def test_shape_contract(self, capture):
        doc = to_chrome_trace(capture)
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for entry in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(entry)
            if entry["ph"] == "X":
                assert "ts" in entry and "dur" in entry

    def test_span_durations_in_microseconds(self, capture):
        doc = to_chrome_trace(capture)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["ts"] == 0.0
        assert complete[0]["dur"] == pytest.approx(2.5e6)

    def test_process_metadata_names_the_run(self, capture):
        doc = to_chrome_trace(capture)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "iterative(d=3) x1"

    def test_json_form_parses_back(self, capture):
        doc = json.loads(to_chrome_trace_json(capture))
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["label"] == "unit"


class TestPrometheus:
    def test_type_lines_and_sanitized_names(self, capture):
        text = to_prometheus(capture)
        assert "# TYPE dca_submit counter" in text
        assert "dca_submit 3" in text
        assert "# TYPE dca_makespan gauge" in text

    def test_histogram_buckets_are_cumulative_and_capped_with_inf(self, capture):
        lines = to_prometheus(capture).splitlines()
        buckets = [l for l in lines if l.startswith("dca_response_time_bucket")]
        assert buckets[-1].startswith('dca_response_time_bucket{strategy="ir",le="+Inf"}')
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert 'dca_response_time_count{strategy="ir"} 1' in lines

    def test_deterministic(self, capture):
        assert to_prometheus(capture) == to_prometheus(capture)
