# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for the resource broker and end-to-end grid runs."""

import random

import pytest

from repro.core import IterativeRedundancy, TraditionalRedundancy, analysis
from repro.grid import GridConfig, GridSite, MaintenanceWindow, ResourceBroker, run_grid
from repro.grid.site import _QueuedJob
from repro.sim import Simulator


def make_sites(sim, n, **kwargs):
    defaults = dict(site_fault_prob=0.0, job_fault_prob=0.0)
    defaults.update(kwargs)
    return [GridSite(sim, i, **defaults) for i in range(n)]


def job(job_id, task_id=0):
    return _QueuedJob(job_id, task_id, True, False, lambda jid, value: None)


class TestBrokerPolicies:
    def test_unknown_policy_rejected(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            ResourceBroker(make_sites(sim, 2), random.Random(0), policy="psychic")

    def test_needs_sites(self):
        with pytest.raises(ValueError):
            ResourceBroker([], random.Random(0))

    def test_round_robin_cycles(self):
        sim = Simulator(seed=1)
        sites = make_sites(sim, 3)
        broker = ResourceBroker(sites, random.Random(0), policy="round_robin")
        chosen = [broker.route(job(i, task_id=i)).site_id for i in range(6)]
        assert chosen == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_idle_site(self):
        sim = Simulator(seed=2)
        sites = make_sites(sim, 2, slots=1)
        broker = ResourceBroker(sites, random.Random(0), policy="least_loaded")
        first = broker.route(job(0, task_id=0))
        second = broker.route(job(1, task_id=1))
        assert first.site_id != second.site_id

    def test_random_policy_spreads(self):
        sim = Simulator(seed=3)
        sites = make_sites(sim, 4, slots=100)
        broker = ResourceBroker(sites, random.Random(0), policy="random")
        chosen = {broker.route(job(i, task_id=i)).site_id for i in range(60)}
        assert len(chosen) == 4

    def test_offline_sites_skipped(self):
        sim = Simulator(seed=4)
        sites = make_sites(sim, 2)
        sites[0]._offline = True
        broker = ResourceBroker(sites, random.Random(0))
        assert broker.route(job(0)).site_id == 1


class TestAntiAffinity:
    def test_same_task_never_shares_a_site(self):
        sim = Simulator(seed=5)
        sites = make_sites(sim, 5)
        broker = ResourceBroker(sites, random.Random(0), anti_affinity=True)
        chosen = [broker.route(job(i, task_id=42)).site_id for i in range(5)]
        assert len(set(chosen)) == 5
        assert broker.affinity_violations == 0

    def test_exhausted_sites_fall_back_with_violation_count(self):
        sim = Simulator(seed=6)
        sites = make_sites(sim, 2)
        broker = ResourceBroker(sites, random.Random(0), anti_affinity=True)
        for i in range(3):
            broker.route(job(i, task_id=7))
        assert broker.affinity_violations == 1

    def test_forget_task_clears_bookkeeping(self):
        sim = Simulator(seed=7)
        sites = make_sites(sim, 2)
        broker = ResourceBroker(sites, random.Random(0), anti_affinity=True)
        broker.route(job(0, task_id=1))
        broker.forget_task(1)
        assert 1 not in broker._task_sites


class TestGridRuns:
    def test_all_tasks_complete(self):
        report = run_grid(GridConfig(strategy=TraditionalRedundancy(3), tasks=200, seed=1))
        assert report.tasks_completed == 200

    def test_no_faults_perfect(self):
        report = run_grid(
            GridConfig(
                strategy=IterativeRedundancy(2),
                tasks=200,
                site_fault_prob=0.0,
                job_fault_prob=0.0,
                seed=2,
            )
        )
        assert report.system_reliability == 1.0
        assert report.cost_factor == 2.0

    def test_independent_faults_match_closed_forms(self):
        """Without site-level correlation the grid behaves like the DCA
        model at the same marginal reliability."""
        config = GridConfig(
            strategy=IterativeRedundancy(3),
            tasks=3_000,
            site_fault_prob=0.0,
            job_fault_prob=0.3,
            seed=3,
        )
        report = run_grid(config)
        r = config.expected_job_reliability()
        assert report.system_reliability == pytest.approx(
            analysis.iterative_reliability(r, 3), abs=0.025
        )
        assert report.cost_factor == pytest.approx(analysis.iterative_cost(r, 3), rel=0.05)

    def test_anti_affinity_beats_colocation_under_site_faults(self):
        """The §5.3 correlation effect, quantified: same marginal
        reliability, but spreading replicas across sites restores the
        independence the vote needs.  Random routing over few sites
        co-locates replicas regularly (pigeonhole); anti-affinity
        forbids it."""
        base = dict(
            strategy=TraditionalRedundancy(3),
            tasks=3_000,
            sites=4,
            site_fault_prob=0.2,
            job_fault_prob=0.05,
            seed=4,
        )
        colocated = run_grid(GridConfig(policy="random", anti_affinity=False, **base))
        spread = run_grid(GridConfig(policy="random", anti_affinity=True, **base))
        assert spread.system_reliability > colocated.system_reliability + 0.01

    def test_anti_affinity_approaches_independent_analysis(self):
        config = GridConfig(
            strategy=TraditionalRedundancy(5),
            tasks=3_000,
            sites=12,
            site_fault_prob=0.15,
            job_fault_prob=0.05,
            anti_affinity=True,
            seed=5,
        )
        report = run_grid(config)
        r = config.expected_job_reliability()
        assert report.system_reliability == pytest.approx(
            analysis.traditional_reliability(r, 5), abs=0.03
        )

    def test_maintenance_window_delays_but_completes(self):
        maintenance = {0: (MaintenanceWindow(start=0.0, duration=20.0),)}
        report = run_grid(
            GridConfig(
                strategy=TraditionalRedundancy(3),
                tasks=100,
                sites=2,
                maintenance=maintenance,
                seed=6,
            )
        )
        assert report.tasks_completed == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            GridConfig(strategy=TraditionalRedundancy(3), tasks=0)
        with pytest.raises(ValueError):
            GridConfig(strategy=TraditionalRedundancy(3), sites=0)
