# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for grid sites: slots, queues, correlated faults, maintenance."""

import pytest

from repro.grid.site import GridSite, MaintenanceWindow, _QueuedJob
from repro.sim import Simulator


def make_job(job_id, task_id, results):
    return _QueuedJob(
        job_id=job_id,
        task_id=task_id,
        true_value=True,
        wrong_value=False,
        on_result=lambda jid, value: results.append((jid, value)),
    )


class TestMaintenanceWindow:
    def test_end(self):
        window = MaintenanceWindow(start=5.0, duration=2.0)
        assert window.end == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MaintenanceWindow(start=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            MaintenanceWindow(start=0.0, duration=0.0)


class TestSlotsAndQueue:
    def test_parallelism_bounded_by_slots(self):
        sim = Simulator(seed=1)
        site = GridSite(sim, 0, slots=2, job_fault_prob=0.0, site_fault_prob=0.0)
        results = []
        for i in range(5):
            site.submit(make_job(i, task_id=i, results=results))
        assert site.queue_length == 3
        assert site.load == 5
        sim.run()
        assert len(results) == 5

    def test_fifo_order_of_queue(self):
        sim = Simulator(seed=2)
        site = GridSite(
            sim, 0, slots=1, job_fault_prob=0.0, site_fault_prob=0.0,
            duration_low=1.0, duration_high=1.0,
        )
        results = []
        for i in range(3):
            site.submit(make_job(i, task_id=i, results=results))
        sim.run()
        assert [jid for jid, _ in results] == [0, 1, 2]

    def test_makespan_reflects_queueing(self):
        sim = Simulator(seed=3)
        site = GridSite(
            sim, 0, slots=1, job_fault_prob=0.0,
            duration_low=1.0, duration_high=1.0,
        )
        results = []
        for i in range(4):
            site.submit(make_job(i, task_id=0, results=results))
        sim.run()
        assert sim.now == pytest.approx(4.0)

    def test_validation(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            GridSite(sim, 0, slots=0)
        with pytest.raises(ValueError):
            GridSite(sim, 0, site_fault_prob=1.0)
        with pytest.raises(ValueError):
            GridSite(sim, 0, duration_low=0.0)


class TestCorrelatedFaults:
    def test_poisoned_site_fails_whole_task(self):
        sim = Simulator(seed=4)
        site = GridSite(sim, 0, slots=10, site_fault_prob=0.5, job_fault_prob=0.0)
        # Find a poisoned task, then verify all its jobs fail together.
        for task_id in range(50):
            if site._task_poisoned(task_id):
                results = []
                for i in range(5):
                    site.submit(make_job(i, task_id=task_id, results=results))
                sim.run()
                assert all(value is False for _, value in results)
                return
        pytest.fail("no poisoned task in 50 draws at p=0.5")

    def test_clean_site_honest_jobs(self):
        sim = Simulator(seed=5)
        site = GridSite(sim, 0, slots=10, site_fault_prob=0.0, job_fault_prob=0.0)
        results = []
        for i in range(5):
            site.submit(make_job(i, task_id=1, results=results))
        sim.run()
        assert all(value is True for _, value in results)

    def test_poisoning_memoised_per_task(self):
        sim = Simulator(seed=6)
        site = GridSite(sim, 0, site_fault_prob=0.5)
        first = site._task_poisoned(7)
        assert site._task_poisoned(7) == first

    def test_effective_reliability(self):
        sim = Simulator(seed=7)
        site = GridSite(sim, 0, site_fault_prob=0.2, job_fault_prob=0.1)
        assert site.effective_job_reliability() == pytest.approx(0.8 * 0.9)


class TestMaintenance:
    def test_no_starts_during_window(self):
        sim = Simulator(seed=8)
        site = GridSite(
            sim, 0, slots=1, job_fault_prob=0.0,
            duration_low=1.0, duration_high=1.0,
            maintenance=(MaintenanceWindow(start=0.5, duration=10.0),),
        )
        results = []
        done_times = []

        def on_result(jid, value):
            results.append(value)
            done_times.append(sim.now)

        sim.schedule(1.0, lambda ev: site.submit(
            _QueuedJob(0, 0, True, False, on_result)
        ))
        sim.run()
        # The job could only start after the window ends at 10.5.
        assert done_times[0] >= 11.0

    def test_running_jobs_drain_through_window(self):
        sim = Simulator(seed=9)
        site = GridSite(
            sim, 0, slots=1, job_fault_prob=0.0,
            duration_low=2.0, duration_high=2.0,
            maintenance=(MaintenanceWindow(start=1.0, duration=5.0),),
        )
        results = []
        site.submit(make_job(0, 0, results))
        sim.run()
        assert len(results) == 1  # started at 0, finishes at 2 despite window
