# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""End-to-end tests of the volunteer deployment harness."""

import math

import pytest

from repro.core import (
    IterativeRedundancy,
    NoRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.sat.formula import random_3sat
from repro.sat.solver import dpll_satisfiable
from repro.volunteer import PlanetLabTestbed, VolunteerConfig, run_volunteer
from repro.volunteer.deployment import derive_reliability


def run(strategy, **overrides):
    defaults = dict(
        strategy=strategy,
        testbed=PlanetLabTestbed(nodes=60),
        sat_vars=12,
        tasks=40,
        seed=9,
    )
    defaults.update(overrides)
    return run_volunteer(VolunteerConfig(**defaults))


class TestDeployment:
    def test_all_units_reach_verdicts(self):
        report = run(TraditionalRedundancy(5))
        assert report.tasks_completed == 40

    def test_iterative_more_reliable_than_traditional_at_similar_cost(self):
        tr = run(TraditionalRedundancy(9), use_sat=False, tasks=400)
        ir = run(IterativeRedundancy(4), use_sat=False, tasks=400)
        assert ir.system_reliability > tr.system_reliability
        assert ir.cost_factor < tr.cost_factor * 1.4

    def test_problem_answer_scored_against_truth(self):
        report = run(IterativeRedundancy(6))
        assert report.problem_truth is not None
        assert report.problem_correct is not None

    def test_problem_truth_matches_dpll(self):
        """The ground truth the deployment computes must agree with the
        independent DPLL oracle on the same generated formula."""
        import random as random_module

        from repro.sim.rng import RngRegistry

        config = VolunteerConfig(
            strategy=IterativeRedundancy(4), sat_vars=10, tasks=16, seed=33
        )
        report = run_volunteer(config)
        formula = random_3sat(
            10,
            config.effective_sat_clauses,
            RngRegistry(33).stream("workload"),
        )
        assert report.problem_truth == dpll_satisfiable(formula)

    def test_synthetic_mode_skips_sat(self):
        report = run(TraditionalRedundancy(3), use_sat=False)
        assert report.problem_answer is None
        assert report.problem_truth is None
        assert report.tasks_completed == 40

    def test_really_compute_matches_stored_truth(self):
        """Honest clients that actually enumerate their slice produce the
        same verdicts as ground-truth reporting (modulo injected faults --
        so use a fault-free testbed)."""
        clean = PlanetLabTestbed(
            nodes=20, seeded_fault_prob=0.0, natural_fault_max=0.0, unresponsive_max=0.0
        )
        report = run(
            TraditionalRedundancy(3),
            testbed=clean,
            really_compute=True,
            sat_vars=8,
            tasks=10,
        )
        assert report.system_reliability == 1.0
        assert report.problem_correct

    def test_deterministic_for_seed(self):
        a = run(IterativeRedundancy(3))
        b = run(IterativeRedundancy(3))
        assert a.as_dict() == b.as_dict()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VolunteerConfig(strategy=NoRedundancy(), tasks=0)
        with pytest.raises(ValueError):
            VolunteerConfig(strategy=NoRedundancy(), sat_vars=2)
        with pytest.raises(ValueError):
            VolunteerConfig(strategy=NoRedundancy(), deadline=0.0)

    def test_clause_count_defaults_to_phase_transition(self):
        config = VolunteerConfig(strategy=NoRedundancy(), sat_vars=22)
        assert config.effective_sat_clauses == round(4.27 * 22)
        config = VolunteerConfig(strategy=NoRedundancy(), sat_vars=22, sat_clauses=50)
        assert config.effective_sat_clauses == 50


class TestDerivedReliability:
    """The Section 4.2 analysis: derive the unknown r from measurements and
    find it consistent across techniques."""

    def test_derived_r_lands_in_papers_band(self):
        report = run(IterativeRedundancy(4), tasks=80)
        assert 0.60 < report.derived_reliability < 0.70

    def test_derived_r_consistent_across_techniques(self):
        estimates = []
        for strategy in (
            TraditionalRedundancy(9),
            ProgressiveRedundancy(9),
            IterativeRedundancy(4),
        ):
            report = run(strategy, tasks=80)
            if not math.isnan(report.derived_reliability):
                estimates.append(report.derived_reliability)
        assert len(estimates) == 3
        assert max(estimates) - min(estimates) < 0.08

    def test_derived_r_below_seeded_ceiling(self):
        """Natural faults push r below the seeded 0.7, as on PlanetLab."""
        report = run(IterativeRedundancy(4), tasks=80)
        assert report.derived_reliability < 0.70

    def test_unknown_strategy_returns_nan(self):
        report = run(IterativeRedundancy(3), tasks=10)
        assert math.isnan(derive_reliability(report, NoRedundancy()))
