"""Unit tests for the volunteer work-unit server (pull model)."""

import pytest

from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy
from repro.sim import Simulator
from repro.volunteer.server import VolunteerServer, WorkUnit


def build(strategy=None, **kwargs):
    sim = Simulator(seed=1)
    server = VolunteerServer(sim, strategy or TraditionalRedundancy(3), **kwargs)
    return sim, server


class TestSubmission:
    def test_submit_queues_initial_wave(self):
        sim, server = build(TraditionalRedundancy(3))
        server.submit(WorkUnit(unit_id=0))
        assert server.remaining_units == 1
        assert server.has_open_work

    def test_duplicate_submit_rejected(self):
        sim, server = build()
        server.submit(WorkUnit(unit_id=0))
        with pytest.raises(ValueError):
            server.submit(WorkUnit(unit_id=0))

    def test_deadline_validation(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError):
            VolunteerServer(sim, TraditionalRedundancy(3), deadline=0.0)


class TestScheduling:
    def test_hands_out_initial_wave_then_denies(self):
        sim, server = build(TraditionalRedundancy(3))
        server.submit(WorkUnit(unit_id=0))
        assignments = [server.request_work(node_id=i) for i in range(4)]
        assert all(a is not None for a in assignments[:3])
        assert assignments[3] is None
        assert server.requests_denied == 1

    def test_one_result_per_node_per_unit(self):
        sim, server = build(TraditionalRedundancy(3))
        server.submit(WorkUnit(unit_id=0))
        first = server.request_work(node_id=7)
        second = server.request_work(node_id=7)
        assert first is not None
        assert second is None  # same node cannot serve the unit twice

    def test_same_node_can_serve_different_units(self):
        sim, server = build(TraditionalRedundancy(3))
        server.submit(WorkUnit(unit_id=0))
        server.submit(WorkUnit(unit_id=1))
        a = server.request_work(node_id=7)
        b = server.request_work(node_id=7)
        assert a is not None and b is not None
        assert a.unit.unit_id != b.unit.unit_id

    def test_no_work_returns_none(self):
        sim, server = build()
        assert server.request_work(node_id=0) is None


class TestValidation:
    def test_unanimous_vote_accepts(self):
        sim, server = build(TraditionalRedundancy(3))
        unit = WorkUnit(unit_id=0)
        server.submit(unit)
        for node in range(3):
            assignment = server.request_work(node)
            server.report_result(assignment, node, True)
        assert unit.done
        assert server.remaining_units == 0
        record = server.records[0]
        assert record.correct
        assert record.jobs_used == 3

    def test_majority_of_wrong_values_misleads(self):
        sim, server = build(TraditionalRedundancy(3))
        unit = WorkUnit(unit_id=0)
        server.submit(unit)
        values = [False, False, True]
        for node, value in enumerate(values):
            assignment = server.request_work(node)
            server.report_result(assignment, node, value)
        assert server.records[0].value is False
        assert not server.records[0].correct

    def test_iterative_extends_vote_on_disagreement(self):
        sim, server = build(IterativeRedundancy(2))
        unit = WorkUnit(unit_id=0)
        server.submit(unit)
        a = server.request_work(0)
        b = server.request_work(1)
        server.report_result(a, 0, True)
        server.report_result(b, 1, False)
        assert not unit.done
        # The strategy asked for two more (margin deficit 2).
        c = server.request_work(2)
        d = server.request_work(3)
        assert c is not None and d is not None
        server.report_result(c, 2, True)
        server.report_result(d, 3, True)
        assert unit.done
        assert server.records[0].jobs_used == 4
        assert server.records[0].waves == 2

    def test_late_result_after_completion_ignored(self):
        sim, server = build(TraditionalRedundancy(3))
        unit = WorkUnit(unit_id=0)
        server.submit(unit)
        assignments = [server.request_work(i) for i in range(3)]
        for node, assignment in enumerate(assignments[:3]):
            server.report_result(assignment, node, True)
        before = server.results_received
        server.report_result(assignments[0], 0, True)  # duplicate upload
        assert server.results_received == before

    def test_value_matcher_canonicalises(self):
        sim, server = build(
            TraditionalRedundancy(3), value_matcher=lambda v: round(v, 3)
        )
        unit = WorkUnit(unit_id=0, true_value=round(1.0001, 3), wrong_value=False)
        server.submit(unit)
        for node, value in enumerate([1.0008, 1.0011, 1.0006]):
            assignment = server.request_work(node)
            server.report_result(assignment, node, value)
        assert unit.done
        assert server.records[0].jobs_used == 3  # fuzzy-equal: one vote group


class TestDeadlines:
    def test_deadline_miss_counts_and_reissues(self):
        sim, server = build(TraditionalRedundancy(3), deadline=5.0)
        unit = WorkUnit(unit_id=0)
        server.submit(unit)
        assignments = [server.request_work(i) for i in range(3)]
        server.report_result(assignments[0], 0, True)
        server.report_result(assignments[1], 1, True)
        # Node 2 stays silent; advance past the deadline.
        sim.run(until=10.0)
        assert server.deadline_misses == 1
        assert not unit.done  # strategy requested a replacement response
        replacement = server.request_work(3)
        assert replacement is not None
        server.report_result(replacement, 3, True)
        assert unit.done

    def test_result_after_deadline_is_void(self):
        sim, server = build(TraditionalRedundancy(3), deadline=2.0)
        unit = WorkUnit(unit_id=0)
        server.submit(unit)
        assignment = server.request_work(0)
        sim.run(until=5.0)  # deadline fires
        before = server.results_received
        server.report_result(assignment, 0, True)
        assert server.results_received == before

    def test_silent_node_may_retry_the_unit(self):
        """A node that missed its deadline cast no vote, so it becomes
        eligible for the unit again (and cannot starve small pools)."""
        sim, server = build(TraditionalRedundancy(3), deadline=2.0)
        unit = WorkUnit(unit_id=0)
        server.submit(unit)
        server.request_work(0)
        sim.run(until=5.0)
        retry = server.request_work(0)
        assert retry is not None
        assert retry.unit is unit

    def test_reporting_node_stays_burned(self):
        """A node that *did* vote on a unit is never re-eligible for it."""
        sim, server = build(IterativeRedundancy(2), deadline=10.0)
        unit = WorkUnit(unit_id=0)
        server.submit(unit)
        a = server.request_work(0)
        b = server.request_work(1)
        server.report_result(a, 0, True)
        server.report_result(b, 1, False)  # split vote -> more jobs needed
        assert not unit.done
        assert server.request_work(0) is None
        assert server.request_work(2) is not None


class TestVerdicts:
    def test_verdicts_map(self):
        sim, server = build(TraditionalRedundancy(3))
        for unit_id in range(2):
            server.submit(WorkUnit(unit_id=unit_id))
        for unit_id in range(2):
            for node in range(3):
                assignment = server.request_work(node + unit_id * 3)
                server.report_result(assignment, node + unit_id * 3, unit_id == 1)
        verdicts = server.verdicts()
        assert verdicts == {0: False, 1: True}
