"""Tests for volunteer availability cycling (machines coming and going)."""

import pytest

from repro.core import TraditionalRedundancy
from repro.sim import Simulator
from repro.volunteer.client import VolunteerClient, VolunteerNodeProfile
from repro.volunteer.server import VolunteerServer, WorkUnit


class TestProfileAvailability:
    def test_always_online_by_default(self):
        profile = VolunteerNodeProfile(node_id=0)
        assert not profile.cycles_availability
        assert profile.availability == 1.0

    def test_long_run_fraction(self):
        profile = VolunteerNodeProfile(node_id=0, mean_online=30.0, mean_offline=10.0)
        assert profile.cycles_availability
        assert profile.availability == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            VolunteerNodeProfile(node_id=0, mean_online=-1.0)
        with pytest.raises(ValueError):
            VolunteerNodeProfile(node_id=0, mean_online=0.0, mean_offline=5.0)


class TestCyclingClients:
    def _run(self, profiles, units=10, until=3_000.0, deadline=10.0):
        sim = Simulator(seed=13)
        server = VolunteerServer(
            sim, TraditionalRedundancy(3), deadline=deadline, pool_size=len(profiles)
        )
        for unit_id in range(units):
            server.submit(WorkUnit(unit_id=unit_id))
        clients = [
            VolunteerClient(sim, server, p, sim.rng.stream(f"c{p.node_id}"))
            for p in profiles
        ]
        sim.run(until=until)
        return sim, server, clients

    def test_cycling_clients_still_finish_the_work(self):
        profiles = [
            VolunteerNodeProfile(node_id=i, mean_online=20.0, mean_offline=10.0)
            for i in range(8)
        ]
        sim, server, clients = self._run(profiles)
        assert server.remaining_units == 0
        assert sum(c.offline_periods for c in clients) > 0

    def test_suspension_can_blow_deadlines(self):
        """A machine that suspends mid-job misses the report deadline;
        the server re-issues and the system still converges."""
        profiles = [
            VolunteerNodeProfile(node_id=i, mean_online=3.0, mean_offline=30.0)
            for i in range(10)
        ]
        sim, server, clients = self._run(profiles, units=6, deadline=5.0, until=5_000.0)
        assert server.remaining_units == 0
        assert server.deadline_misses > 0

    def test_always_online_never_goes_offline(self):
        profiles = [VolunteerNodeProfile(node_id=i) for i in range(4)]
        sim, server, clients = self._run(profiles, units=5)
        assert all(c.offline_periods == 0 for c in clients)

    def test_low_availability_stretches_makespan(self):
        def makespan(mean_offline):
            profiles = [
                VolunteerNodeProfile(
                    node_id=i,
                    mean_online=10.0,
                    mean_offline=mean_offline,
                )
                if mean_offline
                else VolunteerNodeProfile(node_id=i)
                for i in range(6)
            ]
            sim, server, clients = self._run(profiles, units=15, until=10_000.0)
            assert server.remaining_units == 0
            # The clock coasts to the horizon after the queue drains, so
            # measure completion via the last unit's turnaround.
            return max(record.turnaround for record in server.records)

        assert makespan(20.0) > makespan(0.0)
