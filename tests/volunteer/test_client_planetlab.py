# reprolint: disable-file=RL003 -- tests assert exact values of seeded, deterministic computations on purpose
"""Tests for volunteer clients and the PlanetLab-like testbed generator."""

import random

import pytest

from repro.core import TraditionalRedundancy
from repro.sim import Simulator
from repro.volunteer.client import VolunteerClient, VolunteerNodeProfile
from repro.volunteer.planetlab import PlanetLabTestbed
from repro.volunteer.server import VolunteerServer, WorkUnit


class TestProfile:
    def test_effective_reliability(self):
        profile = VolunteerNodeProfile(
            node_id=0, seeded_fault_prob=0.3, natural_fault_prob=0.1
        )
        assert profile.effective_reliability == pytest.approx(0.7 * 0.9)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(seeded_fault_prob=1.5),
            dict(natural_fault_prob=-0.1),
            dict(unresponsive_prob=2.0),
            dict(speed_factor=0.0),
            dict(poll_interval=0.0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            VolunteerNodeProfile(node_id=0, **bad)


class TestClientLoop:
    def _run(self, profiles, strategy=None, units=3, until=200.0):
        sim = Simulator(seed=5)
        server = VolunteerServer(sim, strategy or TraditionalRedundancy(3), deadline=10.0)
        for unit_id in range(units):
            server.submit(WorkUnit(unit_id=unit_id))
        clients = [
            VolunteerClient(sim, server, p, sim.rng.stream(f"c{p.node_id}"))
            for p in profiles
        ]
        sim.run(until=until)
        return sim, server, clients

    def test_honest_clients_complete_all_units(self):
        profiles = [VolunteerNodeProfile(node_id=i) for i in range(5)]
        sim, server, clients = self._run(profiles)
        assert server.remaining_units == 0
        assert all(record.correct for record in server.records)

    def test_clients_stop_when_no_work_remains(self):
        profiles = [VolunteerNodeProfile(node_id=i) for i in range(5)]
        sim, server, clients = self._run(profiles, until=1000.0)
        assert all(not client.process.alive for client in clients)

    def test_seeded_faults_produce_wrong_results(self):
        profiles = [
            VolunteerNodeProfile(node_id=i, seeded_fault_prob=1.0) for i in range(5)
        ]
        sim, server, clients = self._run(profiles)
        assert server.remaining_units == 0
        assert all(not record.correct for record in server.records)

    def test_unresponsive_clients_cause_deadline_misses(self):
        profiles = [
            VolunteerNodeProfile(node_id=i, unresponsive_prob=0.5) for i in range(8)
        ]
        sim, server, clients = self._run(profiles, until=2000.0)
        assert server.remaining_units == 0
        assert server.deadline_misses > 0
        assert sum(c.jobs_dropped for c in clients) > 0

    def test_real_compute_function_used(self):
        sim = Simulator(seed=6)
        server = VolunteerServer(sim, TraditionalRedundancy(3), deadline=10.0)
        server.submit(WorkUnit(unit_id=0, payload=21, true_value=42, wrong_value=0))
        calls = []

        def compute(payload):
            calls.append(payload)
            return payload * 2

        clients = [
            VolunteerClient(
                sim,
                server,
                VolunteerNodeProfile(node_id=i),
                sim.rng.stream(f"c{i}"),
                compute=compute,
            )
            for i in range(3)
        ]
        sim.run(until=100.0)
        assert calls == [21, 21, 21]
        assert server.records[0].value == 42
        assert server.records[0].correct

    def test_slow_nodes_take_longer(self):
        sim = Simulator(seed=7)
        server = VolunteerServer(sim, TraditionalRedundancy(3), deadline=50.0)
        server.submit(WorkUnit(unit_id=0))
        fast = VolunteerNodeProfile(node_id=0, speed_factor=0.5)
        slow = VolunteerNodeProfile(node_id=1, speed_factor=8.0)
        third = VolunteerNodeProfile(node_id=2)
        for profile in (fast, slow, third):
            VolunteerClient(sim, server, profile, sim.rng.stream(f"c{profile.node_id}"))
        sim.run(until=100.0)
        # The slow node dominates the single wave's response time.
        assert server.records[0].response_time > 3.0


class TestPlanetLabTestbed:
    def test_generates_requested_nodes(self):
        testbed = PlanetLabTestbed(nodes=200)
        profiles = testbed.generate(random.Random(0))
        assert len(profiles) == 200
        assert len({p.node_id for p in profiles}) == 200

    def test_seeded_fault_prob_uniform(self):
        profiles = PlanetLabTestbed(nodes=50).generate(random.Random(1))
        assert all(p.seeded_fault_prob == 0.3 for p in profiles)

    def test_natural_faults_vary_and_stay_in_range(self):
        testbed = PlanetLabTestbed(nodes=100, natural_fault_max=0.1)
        profiles = testbed.generate(random.Random(2))
        rates = [p.natural_fault_prob for p in profiles]
        assert all(0.0 <= rate <= 0.1 for rate in rates)
        assert max(rates) > min(rates)

    def test_speed_heterogeneity(self):
        profiles = PlanetLabTestbed(nodes=100, speed_sigma=0.35).generate(random.Random(3))
        speeds = [p.speed_factor for p in profiles]
        assert max(speeds) / min(speeds) > 1.5

    def test_expected_reliability_in_papers_band(self):
        """Default parameters land the pool's mean reliability inside the
        paper's derived 0.64 < r < 0.67 (seeded 0.3 + natural faults)."""
        testbed = PlanetLabTestbed()
        assert 0.64 < testbed.expected_reliability() < 0.67
        profiles = testbed.generate(random.Random(4))
        empirical = sum(p.effective_reliability for p in profiles) / len(profiles)
        assert 0.62 < empirical < 0.69

    def test_platform_classes(self):
        profiles = PlanetLabTestbed(nodes=100, platforms=4).generate(random.Random(5))
        assert {p.platform for p in profiles} == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanetLabTestbed(nodes=0)
        with pytest.raises(ValueError):
            PlanetLabTestbed(seeded_fault_prob=1.0)
        with pytest.raises(ValueError):
            PlanetLabTestbed(speed_sigma=-1.0)
        with pytest.raises(ValueError):
            PlanetLabTestbed(platforms=0)
