"""Property-based tests of the volunteer server's scheduling invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy
from repro.sim import Simulator
from repro.volunteer.server import VolunteerServer, WorkUnit

strategies_st = st.sampled_from(
    [
        lambda: TraditionalRedundancy(3),
        lambda: TraditionalRedundancy(5),
        lambda: ProgressiveRedundancy(5),
        lambda: ProgressiveRedundancy(9),
        lambda: IterativeRedundancy(2),
        lambda: IterativeRedundancy(4),
    ]
)


@given(
    strategies_st,
    st.integers(1, 6),  # units
    st.integers(6, 30),  # node pool size
    st.floats(min_value=0.0, max_value=1.0),  # wrong-answer probability
    st.integers(0, 10_000),  # seed
)
@settings(max_examples=60, deadline=None)
def test_property_scheduling_invariants(make_strategy, units, nodes, wrong_prob, seed):
    """Drive random polling clients against the server and check, at every
    step and at the end:

    * a node never holds two live assignments for the same unit,
    * every unit reaches a verdict,
    * per-unit counted responses come from distinct nodes,
    * jobs_used per record equals the unit's recorded outcomes.
    """
    sim = Simulator(seed=seed)
    server = VolunteerServer(sim, make_strategy(), deadline=50.0, pool_size=nodes)
    for unit_id in range(units):
        server.submit(WorkUnit(unit_id=unit_id))
    rng = random.Random(seed ^ 0xABCDEF)

    # unit -> node -> live assignment count (must stay <= 1)
    live = {unit_id: {} for unit_id in range(units)}
    voters = {unit_id: [] for unit_id in range(units)}

    steps = 0
    while server.has_open_work and steps < 10_000:
        steps += 1
        node_id = rng.randrange(nodes)
        assignment = server.request_work(node_id)
        if assignment is None:
            # Let simulated time pass so deadlines can fire if we stall.
            sim.run(until=sim.now + 1.0)
            continue
        unit_id = assignment.unit.unit_id
        live[unit_id][node_id] = live[unit_id].get(node_id, 0) + 1
        assert live[unit_id][node_id] == 1, "node double-booked on a unit"
        value = rng.random() >= wrong_prob
        server.report_result(assignment, node_id, value)
        live[unit_id][node_id] -= 1
        voters[unit_id].append(node_id)

    assert server.remaining_units == 0, "a unit starved"
    assert len(server.records) == units
    for record in server.records:
        unit_voters = voters[record.task_id]
        # Responses (excluding repeats allowed only on pool exhaustion)
        # come from distinct nodes unless the pool was exhausted.
        if server.repeat_assignments == 0:
            assert len(set(unit_voters)) == len(unit_voters)
        assert record.jobs_used == len(unit_voters) or record.jobs_used <= len(unit_voters) + server.deadline_misses


@given(st.integers(2, 8), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_property_pool_smaller_than_vote_still_terminates(pool_size, seed):
    """Even when the strategy wants more distinct nodes than exist, the
    exhaustion fallback keeps units finishing."""
    sim = Simulator(seed=seed)
    server = VolunteerServer(
        sim, IterativeRedundancy(pool_size + 3), deadline=10.0, pool_size=pool_size
    )
    server.submit(WorkUnit(unit_id=0))
    rng = random.Random(seed)
    steps = 0
    while server.has_open_work and steps < 5_000:
        steps += 1
        node_id = rng.randrange(pool_size)
        assignment = server.request_work(node_id)
        if assignment is None:
            sim.run(until=sim.now + 1.0)
            continue
        server.report_result(assignment, node_id, True)
    assert server.remaining_units == 0
