"""Tests for homogeneous redundancy / fuzzy result matching (Section 5.3)."""

import pytest

from repro.core import TraditionalRedundancy
from repro.sim import Simulator
from repro.volunteer.client import VolunteerNodeProfile
from repro.volunteer.homogeneous import (
    PLATFORM_EPSILON,
    FuzzyMatcher,
    platform_value,
    same_platform_only,
)
from repro.volunteer.server import VolunteerServer, WorkUnit


def profile(platform, node_id=0):
    return VolunteerNodeProfile(node_id=node_id, platform=platform)


class TestPlatformValue:
    def test_floats_perturbed_per_platform(self):
        a = platform_value(1.414213, profile(0))
        b = platform_value(1.414213, profile(1))
        assert a != b
        assert a == pytest.approx(b, abs=1e-6)

    def test_same_platform_bitwise_identical(self):
        assert platform_value(2.5, profile(3, 1)) == platform_value(2.5, profile(3, 2))

    def test_non_floats_untouched(self):
        assert platform_value(True, profile(1)) is True
        assert platform_value("yes", profile(2)) == "yes"


class TestFuzzyMatcher:
    def test_nearby_floats_share_bucket(self):
        matcher = FuzzyMatcher(1e-6)
        assert matcher(1.4142135) == matcher(1.4142135 + 1e-9)

    def test_distant_floats_differ(self):
        matcher = FuzzyMatcher(1e-6)
        assert matcher(1.0) != matcher(2.0)

    def test_non_floats_pass_through(self):
        matcher = FuzzyMatcher(1e-6)
        assert matcher(True) is True
        assert matcher("x") == "x"

    def test_nan_handled(self):
        matcher = FuzzyMatcher(1e-6)
        assert matcher(float("nan")) == matcher(float("nan"))

    def test_validation(self):
        with pytest.raises(ValueError):
            FuzzyMatcher(0.0)


class TestSamePlatform:
    def test_predicate(self):
        assert same_platform_only(profile(1, 0), profile(1, 1))
        assert not same_platform_only(profile(1, 0), profile(2, 1))


class TestVotingWithPlatformNoise:
    """The Section 5.3 failure mode and its fix, end to end at the server."""

    def _vote(self, value_matcher=None):
        sim = Simulator(seed=1)
        server = VolunteerServer(
            sim, TraditionalRedundancy(3), value_matcher=value_matcher
        )
        truth = 1.4142135623
        unit = WorkUnit(unit_id=0, true_value=truth, wrong_value=-1.0)
        # Canonicalise the stored truth the same way results will be, so
        # correctness scoring compares like with like.
        if value_matcher is not None:
            unit = WorkUnit(
                unit_id=0, true_value=value_matcher(truth), wrong_value=-1.0
            )
        server.submit(unit)
        for node in range(3):
            assignment = server.request_work(node)
            reported = platform_value(truth, profile(platform=node, node_id=node))
            server.report_result(assignment, node, reported)
        return server, unit

    def test_exact_comparison_fails_across_platforms(self):
        """Three honest nodes on three platforms never agree bitwise, so
        the vote has three singleton groups and no majority; the server
        falls back to an arbitrary plurality pick -- the pathology."""
        server, unit = self._vote(value_matcher=None)
        assert unit.done
        # Three distinct reported values were recorded.
        assert server.records[0].jobs_used == 3

    def test_fuzzy_matching_restores_consensus(self):
        server, unit = self._vote(value_matcher=FuzzyMatcher(1e-6))
        assert unit.done
        record = server.records[0]
        assert record.correct  # all three canonical values matched truth
