"""Tests for the MapReduce layer on the redundant DCA."""

import pytest

from repro.core import IterativeRedundancy, NoRedundancy, TraditionalRedundancy
from repro.mapreduce import MapReduceJob, run_mapreduce, wordcount_job
from repro.mapreduce.engine import default_corruptor

TEXT = (
    "the quick brown fox jumps over the lazy dog "
    "the dog barks and the fox runs away into the quiet woods "
) * 30


def sum_job(values, identity=0):
    return MapReduceJob(
        chunks=tuple(values),
        map_function=lambda x: x * x,
        reduce_function=lambda a, b: a + b,
        identity=identity,
    )


class TestJobDescriptions:
    def test_expected_output_folds_honestly(self):
        job = sum_job([1, 2, 3])
        assert job.expected_output() == 14

    def test_empty_chunks_rejected(self):
        with pytest.raises(ValueError):
            MapReduceJob(chunks=(), map_function=int, reduce_function=max, identity=0)

    def test_wordcount_chunking_covers_text(self):
        job = wordcount_job(TEXT, chunk_size=100)
        assert job.num_tasks > 5
        rebuilt = " ".join(job.chunks)
        assert rebuilt.split() == TEXT.split()

    def test_wordcount_expected_counts(self):
        job = wordcount_job("a b a. A!", chunk_size=1000)
        assert dict(job.expected_output()) == {"a": 3, "b": 1}

    def test_wordcount_validation(self):
        with pytest.raises(ValueError):
            wordcount_job("")
        with pytest.raises(ValueError):
            wordcount_job("hello", chunk_size=0)


class TestDefaultCorruptor:
    def test_always_differs_from_truth(self):
        for output in (True, 7, 3.5, (("a", 1), ("b", 2)), "opaque"):
            assert default_corruptor(0, output) != output

    def test_count_tuples_stay_reduce_compatible(self):
        corrupted = default_corruptor(1, (("a", 1), ("b", 2)))
        assert all(len(pair) == 2 for pair in corrupted)


class TestExecution:
    def test_reliable_pool_exact_result(self):
        job = sum_job(range(20))
        report = run_mapreduce(job, TraditionalRedundancy(3), reliability=1.0, seed=1)
        assert report.correct
        assert report.output == job.expected_output()
        assert report.corrupted_chunks == 0
        assert report.cost_factor == 3.0

    def test_redundancy_protects_against_corruption(self):
        """At r = 0.75, bare execution corrupts many chunks; iterative
        redundancy with a healthy margin fixes nearly all of them."""
        job = sum_job(range(150))
        bare = run_mapreduce(job, NoRedundancy(), reliability=0.75, seed=2)
        guarded = run_mapreduce(job, IterativeRedundancy(5), reliability=0.75, seed=2)
        assert bare.corrupted_chunks > guarded.corrupted_chunks
        assert guarded.map_reliability > 0.95

    def test_wordcount_end_to_end(self):
        job = wordcount_job(TEXT, chunk_size=150)
        report = run_mapreduce(job, IterativeRedundancy(4), reliability=0.8, seed=3)
        assert report.map_reliability > 0.9
        if report.correct:
            assert dict(report.output)["fox"] == 60

    def test_corrupted_chunks_flow_into_output(self):
        """A lost vote visibly corrupts the reduced result."""
        job = sum_job(range(40))
        report = run_mapreduce(job, NoRedundancy(), reliability=0.3, seed=4)
        assert report.corrupted_chunks > 0
        assert not report.correct
        assert report.output > job.expected_output()  # corruption inflates

    def test_corruptor_must_differ(self):
        from repro.mapreduce.engine import MapReduceEngine

        job = sum_job([1, 2])
        engine = MapReduceEngine(
            TraditionalRedundancy(3),
            reliability=1.0,
            corruptor=lambda index, output: output,  # fails to corrupt
        )
        with pytest.raises(ValueError):
            engine.run(job)

    def test_map_report_carries_dca_measures(self):
        job = sum_job(range(30))
        report = run_mapreduce(job, TraditionalRedundancy(3), reliability=0.9, seed=6)
        assert report.map_report.tasks_completed == 30
        assert report.map_report.mean_response_time > 0
