"""Public-API surface checks.

Guards the contract a downstream user relies on: every package's
``__all__`` resolves, every public item carries a docstring, and the
top-level convenience imports documented in the README exist.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.dca",
    "repro.sat",
    "repro.volunteer",
    "repro.grid",
    "repro.mapreduce",
    "repro.replication",
    "repro.experiments",
    "repro.parallel",
    "repro.bench",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_all_resolves(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{name} should define __all__"
    for item in exported:
        assert hasattr(module, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    for item in getattr(module, "__all__", []):
        obj = getattr(module, item)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{name}.{item} lacks a docstring"


def test_readme_quickstart_imports():
    from repro.core import IterativeRedundancy, analysis  # noqa: F401
    from repro.dca import DcaConfig, run_dca  # noqa: F401
    from repro.volunteer import VolunteerConfig, run_volunteer  # noqa: F401


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_experiment_registry_modules_have_entry_points():
    from repro.experiments import EXPERIMENTS

    for name, module in EXPERIMENTS.items():
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"
        assert module.__doc__, f"experiment {name} lacks a docstring"


def test_strategies_share_the_wave_decider_contract():
    from repro.core import (
        AdaptiveReplication,
        ComplexIterativeRedundancy,
        CredibilityManager,
        CredibilityStrategy,
        IterativeRedundancy,
        NoRedundancy,
        ProgressiveRedundancy,
        RedundancyStrategy,
        TraditionalRedundancy,
    )

    strategies = [
        TraditionalRedundancy(3),
        ProgressiveRedundancy(5),
        IterativeRedundancy(2),
        ComplexIterativeRedundancy(0.7, 0.9),
        CredibilityStrategy(CredibilityManager()),
        AdaptiveReplication(),
        NoRedundancy(),
    ]
    for strategy in strategies:
        assert isinstance(strategy, RedundancyStrategy)
        assert strategy.initial_jobs() >= 1
        assert isinstance(strategy.describe(), str)
