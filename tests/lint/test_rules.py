"""One positive and one negative fixture per rule, plus suppression
handling.  Fixtures use synthetic ``repro/<pkg>/...`` paths to opt into
package-scoped rules."""

import textwrap

import pytest

from repro.lint import LintEngine, registered_rules


def lint(source, path="repro/sim/fixture.py", rules=None):
    registry = registered_rules()
    if rules is not None:
        engine = LintEngine(rules=[registry[rule_id]() for rule_id in rules])
    else:
        engine = LintEngine()
    return engine.lint_source(textwrap.dedent(source), path)


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestRL001GlobalRandom:
    def test_global_draw_flagged(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.random() + random.randint(0, 3)
            """
        )
        assert rule_ids(findings) == ["RL001", "RL001"]
        assert findings[0].line == 5

    def test_from_import_of_draw_flagged(self):
        findings = lint("from random import choice\n")
        assert rule_ids(findings) == ["RL001"]

    def test_aliased_module_flagged(self):
        findings = lint("import random as rnd\n\nX = rnd.seed(3)\n")
        assert rule_ids(findings) == ["RL001"]

    def test_system_random_flagged(self):
        findings = lint("import random\n\nSEED = random.SystemRandom().getrandbits(64)\n")
        assert rule_ids(findings) == ["RL001"]

    def test_registry_streams_and_annotations_legal(self):
        findings = lint(
            """
            import random

            def draw(rng: random.Random) -> float:
                return rng.random()

            fresh = random.Random(42)
            """
        )
        assert findings == []


class TestRL002WallClock:
    def test_time_time_flagged_in_sim_package(self):
        source = """
            import time

            def stamp():
                return time.time()
            """
        findings = lint(source, path="repro/sim/clock.py")
        assert rule_ids(findings) == ["RL002"]

    def test_datetime_now_flagged(self):
        findings = lint(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            path="repro/dca/clock.py",
        )
        assert rule_ids(findings) == ["RL002"]

    def test_experiments_package_out_of_scope(self):
        source = """
            import time

            def stamp():
                return time.time()
            """
        assert lint(source, path="repro/experiments/timing.py") == []

    def test_simulated_time_legal(self):
        findings = lint(
            """
            def stamp(sim):
                return sim.now
            """,
            path="repro/sim/clock.py",
        )
        assert findings == []


class TestRL003FloatEquality:
    def test_probability_equality_flagged(self):
        findings = lint(
            """
            def same(prob_a, prob_b):
                return prob_a == prob_b
            """
        )
        assert rule_ids(findings) == ["RL003"]

    def test_confidence_inequality_flagged(self):
        findings = lint("ok = confidence != target_confidence\n")
        assert rule_ids(findings) == ["RL003"]

    def test_isclose_legal(self):
        findings = lint(
            """
            import math

            def same(prob_a, prob_b):
                return math.isclose(prob_a, prob_b)
            """
        )
        assert findings == []

    def test_nan_check_idiom_exempt(self):
        assert lint("bad = reliability == reliability\n") == []

    def test_prob_prefix_requires_word_match(self):
        # "problem" must not match "prob": regression for deployment.py.
        assert lint("ok = problem_answer == problem_truth\n") == []


class TestRL004MutableDefaults:
    def test_list_default_flagged(self):
        findings = lint(
            """
            def collect(items=[]):
                return items
            """
        )
        assert rule_ids(findings) == ["RL004"]

    def test_dict_and_constructor_defaults_flagged(self):
        findings = lint(
            """
            def configure(options={}, seen=set()):
                return options, seen
            """
        )
        assert rule_ids(findings) == ["RL004", "RL004"]

    def test_none_and_tuple_defaults_legal(self):
        findings = lint(
            """
            def collect(items=None, shape=(2, 3)):
                return items, shape
            """
        )
        assert findings == []


class TestRL005StreamNames:
    def test_fully_dynamic_fstring_flagged(self):
        findings = lint(
            """
            def wire(sim, site_id):
                return sim.rng.stream(f"{site_id}")
            """
        )
        assert rule_ids(findings) == ["RL005"]

    def test_literal_prefixed_fstring_legal(self):
        # Families of per-index streams stay auditable by their prefix;
        # the replication engine spawns `replicate:{i}` keys this way.
        findings = lint(
            """
            def wire(sim, site_id, index):
                sim.rng.stream(f"site-{site_id}")
                return sim.rng.spawn(f"replicate:{index}")
            """
        )
        assert findings == []

    def test_empty_literal_prefix_flagged(self):
        findings = lint(
            """
            def wire(sim, site_id):
                return sim.rng.stream(f"{site_id}-site")
            """
        )
        assert rule_ids(findings) == ["RL005"]

    def test_variable_spawn_name_flagged(self):
        findings = lint(
            """
            def child(registry, name):
                return registry.spawn(name)
            """
        )
        assert rule_ids(findings) == ["RL005"]

    def test_literal_names_legal(self):
        findings = lint(
            """
            def wire(sim):
                return sim.rng.stream("durations"), sim.rng.spawn(name="rep-3")
            """
        )
        assert findings == []


class TestRL006SwallowedExceptions:
    def test_bare_except_flagged(self):
        findings = lint(
            """
            def pump(server):
                try:
                    server.pump()
                except:
                    pass
            """,
            path="repro/dca/hotpath.py",
        )
        assert rule_ids(findings) == ["RL006"]

    def test_blanket_pass_flagged(self):
        findings = lint(
            """
            def pump(server):
                try:
                    server.pump()
                except Exception:
                    pass
            """,
            path="repro/sim/hotpath.py",
        )
        assert rule_ids(findings) == ["RL006"]

    def test_typed_or_handled_excepts_legal(self):
        findings = lint(
            """
            def pump(server, log):
                try:
                    server.pump()
                except ValueError:
                    pass
                except Exception:
                    log.append("boom")
                    raise
            """,
            path="repro/sim/hotpath.py",
        )
        assert findings == []


class TestRL007CachedMethods:
    def test_lru_cache_on_method_flagged(self):
        findings = lint(
            """
            from functools import lru_cache

            class Kernel:
                @lru_cache(maxsize=None)
                def evaluate(self, margin):
                    return margin * 2
            """
        )
        assert rule_ids(findings) == ["RL007"]
        assert "Kernel.evaluate" in findings[0].message

    def test_bare_cache_decorator_flagged(self):
        findings = lint(
            """
            from functools import cache

            class Kernel:
                @cache
                def evaluate(self, margin):
                    return margin * 2
            """
        )
        assert rule_ids(findings) == ["RL007"]

    def test_functools_attribute_form_flagged(self):
        findings = lint(
            """
            import functools

            class Kernel:
                @functools.lru_cache
                def evaluate(self, margin):
                    return margin * 2
            """
        )
        assert rule_ids(findings) == ["RL007"]
        assert "functools.lru_cache" in findings[0].message

    def test_static_method_exempt(self):
        findings = lint(
            """
            import functools

            class Kernel:
                @staticmethod
                @functools.lru_cache(maxsize=32)
                def evaluate(margin):
                    return margin * 2
            """
        )
        assert findings == []

    def test_module_level_function_legal(self):
        findings = lint(
            """
            from functools import lru_cache

            @lru_cache(maxsize=None)
            def evaluate(r, margin):
                return margin * r
            """
        )
        assert findings == []

    def test_nested_function_inside_method_legal(self):
        findings = lint(
            """
            from functools import lru_cache

            class Solver:
                def solve(self, k):
                    @lru_cache(maxsize=None)
                    def recurse(a, b):
                        return a + b

                    return recurse(k, k)
            """
        )
        assert findings == []

    def test_cached_property_legal(self):
        findings = lint(
            """
            from functools import cached_property

            class Kernel:
                @cached_property
                def table(self):
                    return [1, 2, 3]
            """
        )
        assert findings == []


class TestRL008TelemetryDiscipline:
    def test_wall_clock_in_obs_flagged(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            path="repro/obs/trace.py",
        )
        assert rule_ids(findings) == ["RL008"]
        assert "host" in findings[0].message

    def test_host_module_exempt(self):
        source = """
            import time

            def stamp():
                return time.time()
            """
        assert lint(source, path="repro/obs/host.py") == []
        assert lint(source, path="repro/obs/host_meta.py") == []

    def test_datetime_now_in_obs_flagged(self):
        findings = lint(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            path="repro/obs/capture.py",
        )
        assert rule_ids(findings) == ["RL008"]

    def test_direct_registry_mutation_in_sim_package_flagged(self):
        findings = lint(
            """
            def record(recorder):
                recorder.metrics.counter("dca.submit").inc()
                recorder.registry.gauge("heap").set(3)
            """,
            path="repro/dca/server.py",
        )
        assert rule_ids(findings) == ["RL008", "RL008"]
        assert "Recorder API" in findings[0].message

    def test_recorder_api_calls_legal_in_sim_package(self):
        source = """
            def record(rec, now):
                rec.count("dca.submit")
                rec.gauge("sim.heap_size", 4)
                rec.observe("dca.wave_size", 3)
            """
        assert lint(source, path="repro/dca/server.py") == []

    def test_obs_package_may_touch_its_own_registry(self):
        source = """
            def record(self, name, value):
                self._registry.counter(name).inc(value)
            """
        assert lint(source, path="repro/obs/recorder.py") == []

    def test_experiments_out_of_scope(self):
        source = """
            def record(recorder):
                recorder.metrics.counter("x").inc()
            """
        assert lint(source, path="repro/experiments/figure5a.py") == []


class TestSuppression:
    def test_inline_disable_silences_one_line(self):
        engine = LintEngine()
        findings = engine.lint_source(
            textwrap.dedent(
                """
                import random

                a = random.random()  # reprolint: disable=RL001
                b = random.random()
                """
            ),
            "repro/sim/fixture.py",
        )
        assert [f.line for f in findings] == [5]
        assert engine.suppressed_count == 1

    def test_inline_disable_is_per_rule(self):
        findings = lint(
            """
            import random

            a = random.random()  # reprolint: disable=RL005
            """
        )
        assert rule_ids(findings) == ["RL001"]

    def test_file_level_disable(self):
        findings = lint(
            """
            # reprolint: disable-file=RL001
            import random

            a = random.random()
            b = random.random()
            """
        )
        assert findings == []

    def test_multiple_rules_in_one_comment(self):
        findings = lint(
            """
            import random

            def f(items=[], p=random.random()):  # reprolint: disable=RL001, RL004
                return items, p
            """
        )
        assert findings == []

    def test_disable_next_line_silences_following_line_only(self):
        engine = LintEngine()
        findings = engine.lint_source(
            textwrap.dedent(
                """
                import random

                # reprolint: disable-next-line=RL001
                a = random.random()
                b = random.random()
                """
            ),
            "repro/sim/fixture.py",
        )
        assert [f.line for f in findings] == [6]
        assert engine.suppressed_count == 1

    def test_disable_next_line_takes_multiple_rules(self):
        findings = lint(
            """
            import random

            # reprolint: disable-next-line=RL001, RL004
            def f(items=[], p=random.random()):
                return items, p
            """
        )
        assert findings == []

    def test_disable_next_line_does_not_silence_its_own_line(self):
        findings = lint(
            """
            import random

            a = random.random()  # reprolint: disable-next-line=RL001
            """
        )
        assert rule_ids(findings) == ["RL001"]


class TestEngineBasics:
    def test_syntax_error_becomes_rl000_finding(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == ["RL000"]
        assert "parse" in findings[0].message

    def test_findings_sorted_and_formatted(self):
        findings = lint(
            """
            import random

            b = random.random()

            def f(items=[]):
                return items
            """
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        first = findings[0]
        assert first.format() == (
            f"{first.path}:{first.line}: {first.rule_id} {first.message}"
        )

    def test_registry_has_all_rules(self):
        assert sorted(registered_rules()) == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
        ]

    def test_rule_subset_selection(self):
        source = """
            import random

            def f(items=[]):
                return items + [random.random()]
            """
        assert rule_ids(lint(source, rules=["RL004"])) == ["RL004"]


@pytest.mark.parametrize(
    "rule_id", ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007", "RL008"]
)
def test_every_rule_has_docs_metadata(rule_id):
    cls = registered_rules()[rule_id]
    assert cls.summary
    assert cls.__doc__ and rule_id in cls.__doc__
