"""Algebraic property tests for the flow-analysis lattices.

Both domains are finite, so instead of randomized property testing the
laws are checked *exhaustively* over a sample set that covers every
lattice shape: ⊥, several distinct labels, ⊤, and ⊤u for provenance;
the full chain for orderedness; and their product.  Every pair and
triple is enumerated, so a pass here is a proof over the samples, not a
sampling argument.
"""

import itertools

import pytest

from repro.lint.provenance import (
    BOTTOM,
    TOP,
    TOP_UNSEEDED,
    AbstractValue,
    FunctionSummary,
    NEUTRAL_SUMMARY,
    Orderedness,
    Provenance,
    join_all,
    stream,
)

#: Every provenance shape: bottom, three distinct labels, both tops.
PROVS = [
    BOTTOM,
    stream("a"),
    stream("b"),
    stream("replicate:*"),
    TOP,
    TOP_UNSEEDED,
]

ORDERS = list(Orderedness)

VALUES = [AbstractValue(p, o) for p in PROVS for o in ORDERS]


class TestProvenanceLattice:
    def test_join_idempotent(self):
        for p in PROVS:
            assert p.join(p) == p

    def test_join_commutative(self):
        for p, q in itertools.product(PROVS, repeat=2):
            assert p.join(q) == q.join(p)

    def test_join_associative(self):
        for p, q, r in itertools.product(PROVS, repeat=3):
            assert p.join(q).join(r) == p.join(q.join(r))

    def test_bottom_is_identity(self):
        for p in PROVS:
            assert BOTTOM.join(p) == p
            assert p.join(BOTTOM) == p

    def test_top_unseeded_is_absorbing(self):
        for p in PROVS:
            assert TOP_UNSEEDED.join(p) == TOP_UNSEEDED
            assert p.join(TOP_UNSEEDED) == TOP_UNSEEDED

    def test_distinct_labels_join_to_top_not_top_unseeded(self):
        joined = stream("a").join(stream("b"))
        assert joined == TOP
        assert not joined.unseeded

    def test_leq_is_a_partial_order(self):
        # Reflexive, antisymmetric, transitive.
        for p in PROVS:
            assert p.leq(p)
        for p, q in itertools.product(PROVS, repeat=2):
            if p.leq(q) and q.leq(p):
                assert p == q
        for p, q, r in itertools.product(PROVS, repeat=3):
            if p.leq(q) and q.leq(r):
                assert p.leq(r)

    def test_join_is_least_upper_bound(self):
        for p, q in itertools.product(PROVS, repeat=2):
            lub = p.join(q)
            assert p.leq(lub) and q.leq(lub)
            # No strictly smaller upper bound exists among the samples.
            for r in PROVS:
                if p.leq(r) and q.leq(r):
                    assert lub.leq(r)

    def test_join_monotone_in_each_argument(self):
        # p ⊑ q implies p ⊔ r ⊑ q ⊔ r: the transfer functions built on
        # join (assignment merge, branch merge, return join) are monotone.
        for p, q, r in itertools.product(PROVS, repeat=3):
            if p.leq(q):
                assert p.join(r).leq(q.join(r))

    def test_join_all_matches_pairwise_fold(self):
        for p, q, r in itertools.product(PROVS, repeat=3):
            assert join_all([p, q, r]) == p.join(q).join(r)
        assert join_all([]) == BOTTOM

    def test_invalid_points_rejected(self):
        with pytest.raises(ValueError):
            Provenance(label="a", top=True)
        with pytest.raises(ValueError):
            Provenance(unseeded=True)

    def test_predicates(self):
        assert BOTTOM.is_bottom and not BOTTOM.is_stream
        assert stream("a").is_stream and not stream("a").is_bottom
        assert TOP.is_stream and not TOP.unseeded
        assert TOP_UNSEEDED.is_stream and TOP_UNSEEDED.unseeded


class TestOrderednessLattice:
    def test_chain_laws(self):
        for a in ORDERS:
            assert a.join(a) == a
        for a, b in itertools.product(ORDERS, repeat=2):
            assert a.join(b) == b.join(a)
            assert a.join(b) == max(a, b)
        for a, b, c in itertools.product(ORDERS, repeat=3):
            assert a.join(b).join(c) == a.join(b.join(c))

    def test_chain_order(self):
        assert Orderedness.ORDERED.leq(Orderedness.UNKNOWN)
        assert Orderedness.UNKNOWN.leq(Orderedness.UNORDERED)
        assert not Orderedness.UNORDERED.leq(Orderedness.ORDERED)

    def test_join_monotone(self):
        for a, b, c in itertools.product(ORDERS, repeat=3):
            if a.leq(b):
                assert a.join(c).leq(b.join(c))


class TestProductDomain:
    def test_join_laws(self):
        for v in VALUES:
            assert v.join(v) == v
        for v, w in itertools.product(VALUES, repeat=2):
            assert v.join(w) == w.join(v)
        # Associativity on a coarser sample (the full cube is 18^3).
        sample = VALUES[::3]
        for v, w, x in itertools.product(sample, repeat=3):
            assert v.join(w).join(x) == v.join(w.join(x))

    def test_leq_is_componentwise(self):
        for v, w in itertools.product(VALUES, repeat=2):
            assert v.leq(w) == (v.prov.leq(w.prov) and v.order.leq(w.order))

    def test_join_is_lub(self):
        for v, w in itertools.product(VALUES, repeat=2):
            lub = v.join(w)
            assert v.leq(lub) and w.leq(lub)


class TestFunctionSummary:
    def test_neutral_summary_claims_nothing(self):
        assert NEUTRAL_SUMMARY.consumed == frozenset()
        assert not NEUTRAL_SUMMARY.consumes_top
        assert NEUTRAL_SUMMARY.consumed_params == frozenset()
        assert NEUTRAL_SUMMARY.created == frozenset()
        assert NEUTRAL_SUMMARY.returns.prov == BOTTOM

    def test_summaries_hashable_for_memoization(self):
        a = FunctionSummary(consumed=frozenset({"x"}))
        b = FunctionSummary(consumed=frozenset({"x"}))
        assert a == b
        assert hash(a) == hash(b)
