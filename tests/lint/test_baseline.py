"""Baseline ratchet: fingerprints survive line moves, new findings stay
fatal, fixed findings surface as stale entries, and the document is
schema-checked on load."""

import json

import pytest

from repro.lint.baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    finding_fingerprints,
    load_baseline,
    write_baseline,
)
from repro.lint.findings import Finding, Severity


def finding(path="src/repro/core/x.py", line=10, rule="RL101", message="boom"):
    return Finding(
        path=path,
        line=line,
        col=1,
        rule_id=rule,
        severity=Severity.ERROR,
        message=message,
    )


class TestFingerprints:
    def test_stable_under_line_moves(self):
        before = finding_fingerprints([finding(line=10)])
        after = finding_fingerprints([finding(line=99)])
        assert before[0][0] == after[0][0]

    def test_distinct_per_rule_path_message(self):
        prints = {
            fp
            for fp, _ in finding_fingerprints(
                [
                    finding(),
                    finding(rule="RL102"),
                    finding(path="src/repro/core/y.py"),
                    finding(message="other"),
                ]
            )
        }
        assert len(prints) == 4

    def test_identical_findings_disambiguated_by_occurrence(self):
        pairs = finding_fingerprints([finding(line=10), finding(line=20)])
        assert len({fp for fp, _ in pairs}) == 2

    def test_occurrence_indexing_is_order_independent(self):
        forward = {fp for fp, _ in finding_fingerprints([finding(line=10), finding(line=20)])}
        backward = {fp for fp, _ in finding_fingerprints([finding(line=20), finding(line=10)])}
        assert forward == backward


class TestApply:
    def test_baselined_findings_are_dropped(self):
        known = finding()
        baseline = {finding_fingerprints([known])[0][0]}
        kept, baselined, stale = apply_baseline([known], baseline)
        assert kept == []
        assert baselined == 1
        assert stale == 0

    def test_new_findings_survive(self):
        known = finding()
        fresh = finding(rule="RL103")
        baseline = {finding_fingerprints([known])[0][0]}
        kept, baselined, stale = apply_baseline([known, fresh], baseline)
        assert kept == [fresh]
        assert baselined == 1
        assert stale == 0

    def test_fixed_findings_turn_entries_stale(self):
        known = finding()
        baseline = {finding_fingerprints([known])[0][0]}
        kept, baselined, stale = apply_baseline([], baseline)
        assert kept == []
        assert baselined == 0
        assert stale == 1


class TestDocument:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [finding(), finding(rule="RL104")]
        assert write_baseline(findings, path) == 2
        loaded = load_baseline(path)
        assert loaded == {fp for fp, _ in finding_fingerprints(findings)}
        document = json.loads(path.read_text())
        assert document["schema"] == BASELINE_SCHEMA
        entry = document["entries"][0]
        assert set(entry) == {"fingerprint", "path", "rule", "message"}

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "other/1", "entries": []}))
        with pytest.raises(ValueError, match="not a reprolint baseline"):
            load_baseline(path)

    def test_load_rejects_non_document(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(["nope"]))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_write_is_deterministic(self, tmp_path):
        findings = [finding(), finding(rule="RL104")]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline(findings, a)
        write_baseline(list(reversed(findings)), b)
        assert a.read_text() == b.read_text()
