"""Round-trip tests for ``repro-lint --fix`` (RL004 / RL006 / RL304).

The contract: a fix removes the finding it targets, never touches a
site the linter would not flag (suppressions, bare excepts, one-line
defs), and is idempotent -- a second pass over fixed source changes
nothing.  RL304 is a project-tier rule with a syntactic fixer, so its
sites are matched by shape (``np.sort``/``np.argsort``/``.argsort()``)
rather than by re-running the tensor pass.
"""

import textwrap

from repro.lint.engine import LintEngine, registered_rules
from repro.lint.fixes import FIXABLE_RULES, fix_paths, fix_source


#: RL006 is gated to simulation packages, so handler fixtures must live
#: on a sim-package path; RL004 applies everywhere.
SIM_PATH = "src/repro/sim/fixture.py"


def relint(source, path="fixture.py", rule_ids=FIXABLE_RULES):
    # RL304 lives in the tensor tier, not the per-file registry; the
    # fixer (and this helper) skips it when building a file engine.
    registry = registered_rules()
    engine = LintEngine(
        rules=[registry[rule_id]() for rule_id in rule_ids if rule_id in registry]
    )
    return engine.lint_source(source, path)


def fix(source, path="fixture.py"):
    return fix_source(textwrap.dedent(source), path)


class TestMutableDefaultFix:
    def test_list_default_becomes_none_sentinel(self):
        fixed, applied = fix(
            """
            def collect(items=[]):
                items.append(1)
                return items
            """
        )
        assert applied == 1
        assert "def collect(items=None):" in fixed
        assert "if items is None:" in fixed
        assert "items = []" in fixed
        # The guard precedes the first use.
        assert fixed.index("if items is None:") < fixed.index("items.append(1)")

    def test_fixed_source_has_no_finding_and_is_idempotent(self):
        fixed, applied = fix(
            """
            def merge(acc={}):
                return acc
            """
        )
        assert applied == 1
        assert relint(fixed) == []
        again, reapplied = fix_source(fixed, "fixture.py")
        assert reapplied == 0
        assert again == fixed

    def test_guard_inserted_after_docstring(self):
        fixed, applied = fix(
            '''
            def collect(items=[]):
                """Gather items."""
                return items
            '''
        )
        assert applied == 1
        lines = fixed.split("\n")
        doc_index = next(i for i, l in enumerate(lines) if '"""Gather' in l)
        guard_index = next(i for i, l in enumerate(lines) if "if items is None" in l)
        assert guard_index == doc_index + 1

    def test_kwonly_and_multiple_defaults(self):
        fixed, applied = fix(
            """
            def build(head=[], *, tail={}):
                return head, tail
            """
        )
        assert applied == 2
        assert "head=None" in fixed and "tail=None" in fixed
        assert "head = []" in fixed and "tail = {}" in fixed
        assert relint(fixed) == []

    def test_one_line_def_left_alone(self):
        source = "def shove(items=[]): return items\n"
        fixed, applied = fix_source(source, "fixture.py")
        assert applied == 0
        assert fixed == source
        # The finding survives for a human to handle.
        assert [f.rule_id for f in relint(source)] == ["RL004"]

    def test_suppressed_site_not_rewritten(self):
        source = textwrap.dedent(
            """
            def collect(items=[]):  # reprolint: disable=RL004
                return items
            """
        )
        fixed, applied = fix_source(source, "fixture.py")
        assert applied == 0
        assert fixed == source

    def test_immutable_defaults_untouched(self):
        source = textwrap.dedent(
            """
            def greet(name="world", count=3):
                return name * count
            """
        )
        fixed, applied = fix_source(source, "fixture.py")
        assert applied == 0
        assert fixed == source


class TestSwallowedExceptionFix:
    def test_noop_handler_becomes_reraise(self):
        fixed, applied = fix(
            """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
            """,
            path=SIM_PATH,
        )
        assert applied == 1
        assert "raise  # reprolint: re-raise (was swallowed)" in fixed
        assert relint(fixed, path=SIM_PATH) == []
        again, reapplied = fix_source(fixed, SIM_PATH)
        assert reapplied == 0
        assert again == fixed

    def test_bare_except_left_for_a_human(self):
        source = textwrap.dedent(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    pass
            """
        )
        fixed, applied = fix_source(source, SIM_PATH)
        assert applied == 0
        assert fixed == source
        # The bare-except finding survives for a human to handle.
        assert [f.rule_id for f in relint(source, path=SIM_PATH)] == ["RL006"]

    def test_handler_with_real_work_untouched(self):
        source = textwrap.dedent(
            """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    return ""
            """
        )
        fixed, applied = fix_source(source, SIM_PATH)
        assert applied == 0
        assert fixed == source

    def test_outside_sim_packages_not_rewritten(self):
        # Package gating is honoured: the same handler outside the sim
        # packages is not a finding, so it is not a fix site either.
        source = textwrap.dedent(
            """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
            """
        )
        fixed, applied = fix_source(source, "tools/fixture.py")
        assert applied == 0
        assert fixed == source


class TestStableSortFix:
    def test_np_sort_gains_stable_kind(self):
        fixed, applied = fix(
            """
            import numpy as np

            order = np.sort(values)
            ranks = np.argsort(weights)
            """
        )
        assert applied == 2
        assert 'np.sort(values, kind="stable")' in fixed
        assert 'np.argsort(weights, kind="stable")' in fixed

    def test_method_argsort_fixed_but_bare_sort_is_not(self):
        # ``.argsort()`` is unambiguously an array method; a bare
        # ``.sort()`` could be ``list.sort`` and is left for a human.
        fixed, applied = fix(
            """
            import numpy as np

            ranks = scores.argsort()
            rows.sort()
            """
        )
        assert applied == 1
        assert 'scores.argsort(kind="stable")' in fixed
        assert "rows.sort()" in fixed

    def test_existing_kind_untouched_and_idempotent(self):
        source = textwrap.dedent(
            """
            import numpy as np

            order = np.sort(values, kind="mergesort")
            """
        )
        fixed, applied = fix_source(source, "fixture.py")
        assert applied == 0
        assert fixed == source
        # Fixed output round-trips: a second pass changes nothing.
        once, _ = fix("import numpy as np\nranks = np.argsort(w)\n")
        again, reapplied = fix_source(once, "fixture.py")
        assert reapplied == 0
        assert again == once

    def test_suppressed_site_not_rewritten(self):
        source = textwrap.dedent(
            """
            import numpy as np

            order = np.sort(values)  # reprolint: disable=RL304
            """
        )
        fixed, applied = fix_source(source, "fixture.py")
        assert applied == 0
        assert fixed == source

    def test_multiline_call_keeps_syntax_valid(self):
        fixed, applied = fix(
            """
            import numpy as np

            ranks = np.argsort(
                weights,
            )
            """
        )
        assert applied == 1
        assert 'weights, kind="stable",' in fixed
        compile(fixed, "fixture.py", "exec")

    def test_star_kwargs_left_for_a_human(self):
        # ``**kwargs`` may already carry ``kind``; injecting one could
        # turn a working call into a duplicate-keyword TypeError.
        source = textwrap.dedent(
            """
            import numpy as np

            order = np.sort(values, **options)
            """
        )
        fixed, applied = fix_source(source, "fixture.py")
        assert applied == 0
        assert fixed == source

    def test_non_numpy_sort_untouched(self):
        source = textwrap.dedent(
            """
            import statistics as np_like

            order = np_like.sort(values)
            """
        )
        fixed, applied = fix_source(source, "fixture.py")
        assert applied == 0
        assert fixed == source


class TestFixPaths:
    def test_files_rewritten_in_place(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text(
            "def collect(items=[]):\n    return items\n", encoding="utf-8"
        )
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n", encoding="utf-8")
        files_changed, total = fix_paths([str(tmp_path)])
        assert files_changed == 1
        assert total == 1
        assert "items=None" in target.read_text(encoding="utf-8")
        assert clean.read_text(encoding="utf-8") == "X = 1\n"

    def test_second_pass_is_a_no_op(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text(
            "def collect(items=[]):\n    return items\n", encoding="utf-8"
        )
        fix_paths([str(tmp_path)])
        first = target.read_text(encoding="utf-8")
        files_changed, total = fix_paths([str(tmp_path)])
        assert (files_changed, total) == (0, 0)
        assert target.read_text(encoding="utf-8") == first
