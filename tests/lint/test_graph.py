"""Import-graph substrate: module discovery, edge extraction (absolute,
relative, lazy), package-root location, and deterministic cycle/SCC
reporting."""

import textwrap

from repro.lint.graph import (
    ImportGraph,
    ProjectModule,
    ImportEdge,
    find_package_root,
    load_project,
    module_name,
)


def write_package(tmp_path, files):
    root = tmp_path / "repro"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").touch()
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.parents:
            if parent == root:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.touch()
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


class TestDiscovery:
    def test_module_names_and_packages(self, tmp_path):
        root = write_package(
            tmp_path,
            {"core/types.py": "X = 1\n", "dca/sub/deep.py": "Y = 2\n"},
        )
        graph = load_project(root)
        assert "repro" in graph.modules
        assert graph.modules["repro"].is_package
        assert graph.modules["repro.core.types"].package == "core"
        assert graph.modules["repro.dca.sub.deep"].package == "dca"
        assert not graph.modules["repro.core.types"].is_package

    def test_module_name_of_init(self, tmp_path):
        root = write_package(tmp_path, {"core/types.py": "X = 1\n"})
        assert module_name(root / "core" / "__init__.py", root) == "repro.core"
        assert module_name(root / "core" / "types.py", root) == "repro.core.types"

    def test_syntax_error_files_skipped(self, tmp_path):
        root = write_package(
            tmp_path,
            {"core/good.py": "X = 1\n", "core/broken.py": "def oops(:\n"},
        )
        graph = load_project(root)
        assert "repro.core.good" in graph.modules
        assert "repro.core.broken" not in graph.modules


class TestFindPackageRoot:
    def test_package_dir_itself(self, tmp_path):
        root = write_package(tmp_path, {"core/types.py": "X = 1\n"})
        assert find_package_root([str(root)]) == root

    def test_containing_dir(self, tmp_path):
        root = write_package(tmp_path, {"core/types.py": "X = 1\n"})
        assert find_package_root([str(tmp_path)]) == root

    def test_file_inside_package(self, tmp_path):
        root = write_package(tmp_path, {"core/types.py": "X = 1\n"})
        assert find_package_root([str(root / "core" / "types.py")]) == root

    def test_no_package_returns_none(self, tmp_path):
        (tmp_path / "loose.py").write_text("X = 1\n")
        assert find_package_root([str(tmp_path / "loose.py")]) is None


class TestEdges:
    def test_absolute_and_relative_imports(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/types.py": "X = 1\n",
                "core/other.py": "from repro.core import types\n",
                "core/rel.py": "from . import types\n",
                "dca/up.py": "from ..core import types\n",
            },
        )
        graph = load_project(root)
        targets = {
            edge.source: edge.target
            for edge in graph.edges
            if edge.target == "repro.core.types"
        }
        assert targets == {
            "repro.core.other": "repro.core.types",
            "repro.core.rel": "repro.core.types",
            "repro.dca.up": "repro.core.types",
        }

    def test_from_import_of_name_keeps_names(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/types.py": "Decision = object\n",
                "dca/user.py": "from repro.core.types import Decision\n",
            },
        )
        graph = load_project(root)
        (edge,) = [e for e in graph.edges if e.source == "repro.dca.user"]
        assert edge.target == "repro.core.types"
        assert edge.names == ("Decision",)

    def test_function_scoped_import_marked_lazy(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": (
                    "def back():\n"
                    "    from repro.core import a\n"
                    "    return a\n"
                ),
            },
        )
        graph = load_project(root)
        by_source = {edge.source: edge for edge in graph.edges}
        assert by_source["repro.core.a"].top_level
        assert not by_source["repro.core.b"].top_level

    def test_external_imports_ignored(self, tmp_path):
        root = write_package(
            tmp_path,
            {"core/a.py": "import os\nimport random\nfrom math import sqrt\n"},
        )
        graph = load_project(root)
        assert graph.edges == []


class TestCycles:
    def test_two_module_cycle_reported_sorted(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": "from repro.core import a\n",
            },
        )
        graph = load_project(root)
        assert graph.cycles() == [["repro.core.a", "repro.core.b"]]

    def test_three_module_cycle(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": "from repro.core import c\n",
                "core/c.py": "from repro.core import a\n",
            },
        )
        graph = load_project(root)
        assert graph.cycles() == [
            ["repro.core.a", "repro.core.b", "repro.core.c"]
        ]

    def test_lazy_edge_not_a_cycle(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": (
                    "def back():\n"
                    "    from repro.core import a\n"
                    "    return a\n"
                ),
            },
        )
        assert load_project(root).cycles() == []

    def test_dag_has_no_cycles(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/a.py": "X = 1\n",
                "core/b.py": "from repro.core import a\n",
                "core/c.py": "from repro.core import a\nfrom repro.core import b\n",
            },
        )
        assert load_project(root).cycles() == []


class TestPackageEdges:
    def test_pairs_deduplicated_and_sorted(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/types.py": "X = 1\n",
                "dca/one.py": "from repro.core import types\n",
                "dca/two.py": "from repro.core import types\n",
                "sim/user.py": "from repro.core import types\n",
            },
        )
        graph = load_project(root)
        pairs = [(src, dst) for src, dst, _ in graph.package_edges()]
        assert pairs == [("dca", "core"), ("sim", "core")]

    def test_intra_package_edges_omitted(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "core/a.py": "X = 1\n",
                "core/b.py": "from repro.core import a\n",
            },
        )
        assert list(load_project(root).package_edges()) == []


def test_adjacency_is_sorted_and_internal_only():
    graph = ImportGraph()
    for name in ("repro.a", "repro.b", "repro.c"):
        graph.add_module(
            ProjectModule(name=name, path=f"{name}.py", context=None)
        )
    graph.add_edge(ImportEdge("repro.a", "repro.c", 1, 1))
    graph.add_edge(ImportEdge("repro.a", "repro.b", 2, 1))
    graph.add_edge(ImportEdge("repro.a", "repro.external", 3, 1))
    assert graph.adjacency()["repro.a"] == ["repro.b", "repro.c"]
