"""CLI behaviour: exit codes, text/JSON/SARIF output, rule selection,
project mode (``--project``/``--jobs``), flow mode (``--flows``),
autofixes (``--fix``), the incremental cache (``--no-cache``), the
baseline ratchet, and the ``[tool.reprolint]`` config table (including
the no-tomllib fallback)."""

import json
import textwrap

import pytest

from repro.lint.baseline import BASELINE_SCHEMA
from repro.lint.cache import DEFAULT_CACHE_NAME
from repro.lint.cli import JSON_SCHEMA, JSON_SCHEMA_VERSION, main
from repro.lint.config import LintConfig, _fallback_parse, load_config


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Run every CLI test from its own tmp dir: config auto-discovery
    finds no repo pyproject.toml and the incremental cache lands in the
    test's directory, never in the real repo."""
    monkeypatch.chdir(tmp_path)

CLEAN = 'GREETING = "hello"\n'
VIOLATING = textwrap.dedent(
    """
    import random

    def jitter():
        return random.random()
    """
)


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(content, encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_violation_exits_one_with_file_line_rule(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", VIOLATING)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:5: RL001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main(["--select", "RL999", str(path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_internal_error_exits_three_with_traceback(
        self, tmp_path, capsys, monkeypatch
    ):
        # A crashing linter must be distinguishable from findings (1)
        # and usage errors (2): CI treats >1 as "the linter is broken".
        import repro.lint.cli as cli

        def explode(args):
            raise RuntimeError("injected linter bug")

        monkeypatch.setattr(cli, "_run", explode)
        path = write(tmp_path, "clean.py", CLEAN)
        assert main([str(path)]) == 3
        err = capsys.readouterr().err
        assert "injected linter bug" in err
        assert "linter bug, not a finding" in err


class TestOutputFormats:
    def test_json_schema(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", VIOLATING)
        assert main(["--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == JSON_SCHEMA
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["suppressed"] == 0
        assert payload["summary"] == {"RL001": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule", "severity", "message"}
        assert finding["rule"] == "RL001"
        assert finding["line"] == 5
        assert finding["severity"] == "error"

    def test_json_on_clean_tree(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main(["--format", "json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule_id in out
        # Project rules are listed too, tagged with their scope.
        for rule_id in ("RL101", "RL102", "RL103", "RL104", "RL105", "RL106"):
            assert rule_id in out
        assert "[project]" in out and "[file]" in out

    def test_sarif_output(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", VIOLATING)
        assert main(["--output", "sarif", str(path)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"
        (result,) = run["results"]
        assert result["ruleId"] == "RL001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5


class TestRuleSelection:
    def test_select_limits_rules(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", VIOLATING + "\n\ndef f(items=[]):\n    return items\n")
        assert main(["--select", "RL004", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"RL004": 1}

    def test_disable_skips_rule(self, tmp_path):
        path = write(tmp_path, "bad.py", VIOLATING)
        assert main(["--disable", "RL001", str(path)]) == 0


class TestConfigTable:
    PYPROJECT = textwrap.dedent(
        """
        [project]
        name = "demo"

        [tool.reprolint]
        paths = ["{target}"]
        disable = ["RL004"]

        [tool.other]
        x = 1
        """
    )

    def test_config_paths_and_disable(self, tmp_path, capsys):
        target = write(tmp_path, "bad.py", VIOLATING + "\n\ndef f(items=[]):\n    return items\n")
        pyproject = write(
            tmp_path,
            "pyproject.toml",
            self.PYPROJECT.format(target=str(target)),
        )
        # No positional paths: targets come from the config table.
        assert main(["--config", str(pyproject), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"RL001": 1}  # RL004 disabled by config

    def test_missing_config_exits_two(self, tmp_path, capsys):
        assert main(["--config", str(tmp_path / "nope.toml")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_load_config_defaults_without_table(self, tmp_path):
        pyproject = write(tmp_path, "pyproject.toml", "[project]\nname = 'demo'\n")
        config = load_config(pyproject)
        assert config.paths == ["src/repro"]
        assert config.enable is None
        assert config.disable == []

    def test_fallback_parser_matches_expected_table(self, tmp_path):
        # Exercised directly so 3.11+ runs cover the 3.9/3.10 path.
        text = self.PYPROJECT.format(target="src/repro")
        table = _fallback_parse(text)
        assert table == {"paths": ["src/repro"], "disable": ["RL004"]}

    def test_fallback_parser_multiline_array(self):
        text = textwrap.dedent(
            """
            [tool.reprolint]
            enable = [
                "RL001",
                "RL002",
            ]
            """
        )
        assert _fallback_parse(text) == {"enable": ["RL001", "RL002"]}

    def test_selected_rule_ids_resolution(self):
        config = LintConfig(enable=["RL001", "RL003"], disable=["RL003"])
        assert config.selected_rule_ids(["RL001", "RL002", "RL003"]) == ["RL001"]


def write_mini_package(tmp_path, violating=True):
    """A tiny ``repro`` package; ``violating`` adds a layering breach."""
    root = tmp_path / "repro"
    (root / "core").mkdir(parents=True)
    (root / "dca").mkdir()
    (root / "__init__.py").touch()
    (root / "core" / "__init__.py").touch()
    (root / "dca" / "__init__.py").touch()
    (root / "dca" / "config.py").write_text("LIMIT = 3\n", encoding="utf-8")
    body = "from repro.dca import config\n" if violating else "X = 1\n"
    (root / "core" / "user.py").write_text(body, encoding="utf-8")
    return root


class TestProjectMode:
    def test_layering_violation_exits_one(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        assert main(["--project", str(root)]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out
        assert "layering violation" in out

    def test_clean_package_exits_zero(self, tmp_path, capsys):
        root = write_mini_package(tmp_path, violating=False)
        assert main(["--project", str(root)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_project_rules_need_project_flag(self, tmp_path, capsys):
        # Without --project, RL1xx ids are unknown (and the hint says so).
        root = write_mini_package(tmp_path)
        assert main(["--select", "RL101", str(root)]) == 2
        assert "--project" in capsys.readouterr().err

    def test_without_project_flag_layering_unchecked(self, tmp_path):
        root = write_mini_package(tmp_path)
        assert main([str(root)]) == 0

    def test_jobs_output_byte_identical(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        assert main(["--project", "--jobs", "1", "--output", "json", str(root)]) == 1
        serial = capsys.readouterr().out
        assert main(["--project", "--jobs", "2", "--output", "json", str(root)]) == 1
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_nonpositive_jobs_exits_two(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        assert main(["--project", "--jobs", "0", str(root)]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_missing_package_warns_but_runs_file_rules(self, tmp_path, capsys):
        path = write(tmp_path, "loose.py", CLEAN)
        assert main(["--project", str(path)]) == 0
        assert "no importable 'repro' package" in capsys.readouterr().err


def write_flow_package(tmp_path):
    """A mini ``repro`` package with one flow defect: an unseeded
    ``random.Random()`` drawn from inside decision code (RL203)."""
    root = tmp_path / "repro"
    (root / "dca").mkdir(parents=True)
    (root / "__init__.py").touch()
    (root / "dca" / "__init__.py").touch()
    (root / "dca" / "sched.py").write_text(
        textwrap.dedent(
            """
            import random

            def jitter():
                rng = random.Random()
                return rng.random()
            """
        ),
        encoding="utf-8",
    )
    return root


class TestFlowMode:
    def test_flows_runs_rl2xx_and_exits_one(self, tmp_path, capsys):
        root = write_flow_package(tmp_path)
        assert main(["--flows", str(root)]) == 1
        out = capsys.readouterr().out
        assert "RL203" in out
        assert "unseeded" in out

    def test_flows_implies_project(self, tmp_path, capsys):
        # RL1xx ids are selectable under --flows without --project.
        root = write_mini_package(tmp_path)
        assert main(["--flows", "--select", "RL101", str(root)]) == 1
        assert "RL101" in capsys.readouterr().out

    def test_rl2xx_needs_flows(self, tmp_path, capsys):
        root = write_flow_package(tmp_path)
        assert main(["--project", "--select", "RL203", str(root)]) == 2
        assert "--flows" in capsys.readouterr().err

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = write_mini_package(tmp_path, violating=False)
        assert main(["--flows", str(root)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_list_rules_tags_flow_scope(self, tmp_path, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL201", "RL202", "RL203", "RL204", "RL205"):
            assert rule_id in out
        assert "[flow]" in out

    def test_flows_jobs_output_byte_identical(self, tmp_path, capsys):
        root = write_flow_package(tmp_path)
        assert main(["--flows", "--jobs", "1", "--output", "json", str(root)]) == 1
        serial = capsys.readouterr().out
        assert main(["--flows", "--jobs", "2", "--output", "json", str(root)]) == 1
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_flows_sarif_carries_rl2xx(self, tmp_path, capsys):
        root = write_flow_package(tmp_path)
        assert main(["--flows", "--output", "sarif", str(root)]) == 1
        log = json.loads(capsys.readouterr().out)
        (run,) = log["runs"]
        assert any(r["ruleId"] == "RL203" for r in run["results"])
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RL201", "RL202", "RL203", "RL204", "RL205"} <= rule_ids


def write_tensor_package(tmp_path):
    """A mini ``repro`` package with one tensor defect: an unstable
    ``np.argsort`` steering a decision path (RL304)."""
    root = tmp_path / "repro"
    (root / "dca").mkdir(parents=True)
    (root / "__init__.py").touch()
    (root / "dca" / "__init__.py").touch()
    (root / "dca" / "rank.py").write_text(
        textwrap.dedent(
            """
            import numpy as np

            def pick(weights):
                order = np.argsort(weights)
                return order[0]
            """
        ),
        encoding="utf-8",
    )
    return root


class TestTensorMode:
    def test_tensors_runs_rl3xx_and_exits_one(self, tmp_path, capsys):
        root = write_tensor_package(tmp_path)
        assert main(["--tensors", str(root)]) == 1
        out = capsys.readouterr().out
        assert "RL304" in out
        assert 'kind="stable"' in out

    def test_tensors_implies_project(self, tmp_path, capsys):
        # RL1xx ids are selectable under --tensors without --project.
        root = write_mini_package(tmp_path)
        assert main(["--tensors", "--select", "RL101", str(root)]) == 1
        assert "RL101" in capsys.readouterr().out

    def test_rl3xx_needs_tensors(self, tmp_path, capsys):
        root = write_tensor_package(tmp_path)
        assert main(["--project", "--select", "RL304", str(root)]) == 2
        assert "--tensors" in capsys.readouterr().err

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = write_mini_package(tmp_path, violating=False)
        assert main(["--tensors", str(root)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_list_rules_tags_tensor_scope(self, tmp_path, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL301", "RL302", "RL303", "RL304", "RL305"):
            assert rule_id in out
        assert "[tensor]" in out

    def test_tensors_fix_then_relint_exits_zero(self, tmp_path, capsys):
        root = write_tensor_package(tmp_path)
        assert main(["--fix", str(root)]) == 0
        capsys.readouterr()
        source = (root / "dca" / "rank.py").read_text(encoding="utf-8")
        assert 'np.argsort(weights, kind="stable")' in source
        assert main(["--tensors", str(root)]) == 0

    def test_tensors_sarif_carries_rl3xx(self, tmp_path, capsys):
        root = write_tensor_package(tmp_path)
        assert main(["--tensors", "--output", "sarif", str(root)]) == 1
        log = json.loads(capsys.readouterr().out)
        (run,) = log["runs"]
        assert any(r["ruleId"] == "RL304" for r in run["results"])
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RL301", "RL302", "RL303", "RL304", "RL305"} <= rule_ids


class TestFixFlag:
    def test_fix_rewrites_then_lints_clean(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "def f(items=[]):\n    return items\n")
        assert main(["--fix", str(path)]) == 0
        captured = capsys.readouterr()
        assert "applied 1 fix(es) in 1 file(s)" in captured.err
        assert "items=None" in path.read_text(encoding="utf-8")

    def test_fix_on_clean_tree_reports_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main(["--fix", str(path)]) == 0
        assert "applied 0 fix(es) in 0 file(s)" in capsys.readouterr().err


class TestIncrementalCache:
    def test_warm_run_byte_identical_and_cached(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        assert main(["--project", "--output", "json", str(root)]) == 1
        cold = capsys.readouterr().out
        assert (tmp_path / DEFAULT_CACHE_NAME).is_file()
        assert main(["--project", "--output", "json", str(root)]) == 1
        warm = capsys.readouterr().out
        assert warm == cold

    def test_no_cache_writes_nothing(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        assert main(["--project", "--no-cache", str(root)]) == 1
        capsys.readouterr()
        assert not (tmp_path / DEFAULT_CACHE_NAME).exists()

    def test_warm_flows_run_byte_identical(self, tmp_path, capsys):
        root = write_flow_package(tmp_path)
        assert main(["--flows", "--output", "json", str(root)]) == 1
        cold = capsys.readouterr().out
        assert main(["--flows", "--output", "json", str(root)]) == 1
        assert capsys.readouterr().out == cold

    def test_edit_after_warm_run_changes_findings(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        assert main(["--project", str(root)]) == 1
        capsys.readouterr()
        (root / "core" / "user.py").write_text("X = 1\n", encoding="utf-8")
        assert main(["--project", str(root)]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestBaseline:
    def test_update_then_lint_is_green(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--project", "--update-baseline", "--baseline", str(baseline), str(root)]) == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().err
        document = json.loads(baseline.read_text())
        assert document["schema"] == BASELINE_SCHEMA
        assert len(document["entries"]) == 1
        # The baselined finding no longer fails the run...
        assert main(["--project", "--baseline", str(baseline), str(root)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_finding_still_fails(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--project", "--update-baseline", "--baseline", str(baseline), str(root)]) == 0
        capsys.readouterr()
        (root / "core" / "worse.py").write_text(
            "from repro.dca import config as c2\n", encoding="utf-8"
        )
        assert main(["--project", "--baseline", str(baseline), str(root)]) == 1
        out = capsys.readouterr().out
        assert "worse.py" in out

    def test_fixed_finding_reported_stale(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--project", "--update-baseline", "--baseline", str(baseline), str(root)]) == 0
        capsys.readouterr()
        (root / "core" / "user.py").write_text("X = 1\n", encoding="utf-8")
        assert main(["--project", "--baseline", str(baseline), str(root)]) == 0
        assert "1 stale baseline entry" in capsys.readouterr().out

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        root = write_mini_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"schema": "other/9"}), encoding="utf-8")
        assert main(["--project", "--baseline", str(baseline), str(root)]) == 2
        assert "not a reprolint baseline" in capsys.readouterr().err
