"""CLI behaviour: exit codes, text/JSON output, rule selection, and the
``[tool.reprolint]`` config table (including the no-tomllib fallback)."""

import json
import textwrap

from repro.lint.cli import JSON_SCHEMA_VERSION, main
from repro.lint.config import LintConfig, _fallback_parse, load_config

CLEAN = 'GREETING = "hello"\n'
VIOLATING = textwrap.dedent(
    """
    import random

    def jitter():
        return random.random()
    """
)


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(content, encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_violation_exits_one_with_file_line_rule(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", VIOLATING)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:5: RL001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main(["--select", "RL999", str(path)]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestOutputFormats:
    def test_json_schema(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", VIOLATING)
        assert main(["--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["suppressed"] == 0
        assert payload["summary"] == {"RL001": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule", "severity", "message"}
        assert finding["rule"] == "RL001"
        assert finding["line"] == 5
        assert finding["severity"] == "error"

    def test_json_on_clean_tree(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main(["--format", "json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule_id in out


class TestRuleSelection:
    def test_select_limits_rules(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", VIOLATING + "\n\ndef f(items=[]):\n    return items\n")
        assert main(["--select", "RL004", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"RL004": 1}

    def test_disable_skips_rule(self, tmp_path):
        path = write(tmp_path, "bad.py", VIOLATING)
        assert main(["--disable", "RL001", str(path)]) == 0


class TestConfigTable:
    PYPROJECT = textwrap.dedent(
        """
        [project]
        name = "demo"

        [tool.reprolint]
        paths = ["{target}"]
        disable = ["RL004"]

        [tool.other]
        x = 1
        """
    )

    def test_config_paths_and_disable(self, tmp_path, capsys):
        target = write(tmp_path, "bad.py", VIOLATING + "\n\ndef f(items=[]):\n    return items\n")
        pyproject = write(
            tmp_path,
            "pyproject.toml",
            self.PYPROJECT.format(target=str(target)),
        )
        # No positional paths: targets come from the config table.
        assert main(["--config", str(pyproject), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"RL001": 1}  # RL004 disabled by config

    def test_missing_config_exits_two(self, tmp_path, capsys):
        assert main(["--config", str(tmp_path / "nope.toml")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_load_config_defaults_without_table(self, tmp_path):
        pyproject = write(tmp_path, "pyproject.toml", "[project]\nname = 'demo'\n")
        config = load_config(pyproject)
        assert config.paths == ["src/repro"]
        assert config.enable is None
        assert config.disable == []

    def test_fallback_parser_matches_expected_table(self, tmp_path):
        # Exercised directly so 3.11+ runs cover the 3.9/3.10 path.
        text = self.PYPROJECT.format(target="src/repro")
        table = _fallback_parse(text)
        assert table == {"paths": ["src/repro"], "disable": ["RL004"]}

    def test_fallback_parser_multiline_array(self):
        text = textwrap.dedent(
            """
            [tool.reprolint]
            enable = [
                "RL001",
                "RL002",
            ]
            """
        )
        assert _fallback_parse(text) == {"enable": ["RL001", "RL002"]}

    def test_selected_rule_ids_resolution(self):
        config = LintConfig(enable=["RL001", "RL003"], disable=["RL003"])
        assert config.selected_rule_ids(["RL001", "RL002", "RL003"]) == ["RL001"]
