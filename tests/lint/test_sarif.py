"""SARIF 2.1.0 emitter: structural shape, deterministic serialisation,
and validation against an embedded subset of the official SARIF 2.1.0
JSON schema (the full oasis-tcs schema is ~200 KB and needs a network
fetch; the subset pins every constraint the emitter relies on)."""

import json

import pytest

from repro.lint.findings import Finding, Severity
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    TOOL_NAME,
    render_sarif,
    sarif_log,
)

RULE_METADATA = [
    ("RL101", "package imports must follow the layering DAG", Severity.ERROR),
    ("RL104", "no unordered set iteration", Severity.WARNING),
]


def finding(path="src/repro/core/x.py", line=3, col=5, rule="RL101", severity=Severity.ERROR):
    return Finding(
        path=path,
        line=line,
        col=col,
        rule_id=rule,
        severity=severity,
        message=f"finding from {rule}",
    )


#: Subset of the SARIF 2.1.0 schema: the properties reprolint emits, with
#: the spec's required fields and enums for them.  Extra properties stay
#: legal, as in the full schema.
SARIF_SUBSET_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "informationUri": {"type": "string", "format": "uri"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {"text": {"type": "string"}},
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type": "string"}
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestStructure:
    def test_log_shape(self):
        log = sarif_log([finding()], RULE_METADATA, tool_version="3")
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert log["version"] == SARIF_VERSION
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        assert driver["version"] == "3"
        assert [rule["id"] for rule in driver["rules"]] == ["RL101", "RL104"]

    def test_result_fields(self):
        log = sarif_log([finding(line=7, col=2)], RULE_METADATA)
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "RL101"
        assert result["ruleIndex"] == 0
        assert result["level"] == "error"
        assert result["message"]["text"] == "finding from RL101"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("src/repro/core/x.py")
        assert location["region"] == {"startLine": 7, "startColumn": 2}

    def test_severity_maps_to_level(self):
        log = sarif_log(
            [finding(rule="RL104", severity=Severity.WARNING)], RULE_METADATA
        )
        (result,) = log["runs"][0]["results"]
        assert result["level"] == "warning"
        assert result["ruleIndex"] == 1

    def test_unknown_rule_omits_rule_index(self):
        log = sarif_log([finding(rule="RL999")], RULE_METADATA)
        (result,) = log["runs"][0]["results"]
        assert "ruleIndex" not in result

    def test_empty_findings_give_empty_results(self):
        log = sarif_log([], RULE_METADATA)
        assert log["runs"][0]["results"] == []


class TestDeterminism:
    def test_results_sorted_regardless_of_input_order(self):
        findings = [
            finding(path="src/repro/core/b.py"),
            finding(path="src/repro/core/a.py"),
        ]
        forward = render_sarif(findings, RULE_METADATA)
        backward = render_sarif(list(reversed(findings)), RULE_METADATA)
        assert forward == backward

    def test_render_is_valid_json_with_sorted_keys(self):
        text = render_sarif([finding()], RULE_METADATA)
        parsed = json.loads(text)
        assert json.dumps(parsed, indent=2, sort_keys=True) == text


class TestSchemaValidation:
    def test_log_validates_against_sarif_2_1_0_subset(self):
        jsonschema = pytest.importorskip("jsonschema")
        log = sarif_log(
            [
                finding(),
                finding(rule="RL104", severity=Severity.WARNING, line=9),
                finding(rule="RL999"),
            ],
            RULE_METADATA,
            tool_version="1.2",
        )
        jsonschema.validate(instance=log, schema=SARIF_SUBSET_SCHEMA)

    def test_empty_log_validates(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(
            instance=sarif_log([], RULE_METADATA), schema=SARIF_SUBSET_SCHEMA
        )
