"""Seeded-defect corpus for the tensor rules (RL301-RL305).

Every entry in :data:`CORPUS` is one deliberately planted array bug in
a synthetic ``repro`` package, together with the one rule that must
catch it; :data:`CLEAN` holds the matching innocent near-misses that
must produce *zero* findings from *any* tensor rule (the
under-approximation contract: no invented findings).  Meta-tests pin
the corpus at >= 10 seeded defects and >= 5 clean near-misses.
"""

import pytest

from repro.lint.project import run_project_rules
from repro.lint.tensor_absint import TensorAnalysis
from repro.lint.tensor_rules import registered_tensor_rules

from tests.lint.test_project_rules import build_project


def run_tensor_rule(tmp_path, rule_id, files):
    project = build_project(tmp_path, files)
    analysis = TensorAnalysis.build(project.graph, project.callgraph)
    rule = registered_tensor_rules()[rule_id]()
    return sorted(rule.check(project, analysis))


def run_all_tensor_rules(tmp_path, files):
    project = build_project(tmp_path, files)
    analysis = TensorAnalysis.build(project.graph, project.callgraph)
    findings = []
    for rule_id in sorted(registered_tensor_rules()):
        rule = registered_tensor_rules()[rule_id]()
        findings.extend(rule.check(project, analysis))
    return sorted(findings)


#: (rule id, defect name, fixture files) -- each one planted bug.
CORPUS = [
    (
        "RL301",
        "broadcast-tasks-against-nodes",
        {
            "dca/tally.py": """
            import numpy as np

            def weighted(tasks, nodes):
                votes = np.zeros(tasks, dtype=np.int64)
                weights = np.zeros(nodes, dtype=np.float64)
                return votes * weights
            """,
        },
    ),
    (
        "RL301",
        "broadcast-unequal-literals",
        {
            "dca/grid.py": """
            import numpy as np

            def overlay():
                left = np.zeros(8, dtype=np.float64)
                right = np.ones(9, dtype=np.float64)
                return left + right
            """,
        },
    ),
    (
        "RL301",
        "mask-length-from-other-axis",
        {
            "dca/masking.py": """
            import numpy as np

            def broken_clock(tasks, nodes):
                clock = np.zeros(tasks, dtype=np.float64)
                broken = np.zeros(nodes, dtype=bool)
                return clock[broken]
            """,
        },
    ),
    (
        "RL302",
        "float-store-into-int-tally",
        {
            "dca/votes.py": """
            import numpy as np

            def credit(tasks):
                votes = np.zeros(tasks, dtype=np.int64)
                votes[0] = 1.5
                return votes
            """,
        },
    ),
    (
        "RL302",
        "narrowing-astype-drops-precision",
        {
            "dca/narrow.py": """
            import numpy as np

            def shrink(tasks):
                clock = np.zeros(tasks, dtype=np.float64)
                return clock.astype(np.float32)
            """,
        },
    ),
    (
        "RL302",
        "int-tally-rebound-to-float",
        {
            "dca/rates.py": """
            import numpy as np

            def normalize(tasks, total):
                counts = np.zeros(tasks, dtype=np.int64)
                counts = counts / total
                return counts
            """,
        },
    ),
    (
        "RL302",
        "int-float-equality-compare",
        {
            "dca/compare.py": """
            import numpy as np

            def agreement(tasks):
                hits = np.zeros(tasks, dtype=np.int64)
                rates = np.zeros(tasks, dtype=np.float64)
                return hits == rates
            """,
        },
    ),
    (
        "RL303",
        "view-mutated-after-telemetry-series",
        {
            "dca/snapshot.py": """
            import numpy as np

            def snapshot(rec, jobs):
                clock = np.zeros(jobs, dtype=np.float64)
                view = clock[1:]
                rec.series("clock", clock)
                view[0] = 3.0
                return clock
            """,
        },
    ),
    (
        "RL303",
        "base-mutated-after-fingerprinting-view",
        {
            "dca/digest.py": """
            import numpy as np

            def fingerprinted(cells):
                grid = np.zeros(cells, dtype=np.float64)
                flat = grid.ravel()
                digest = sha256(flat)
                grid[0] = 2.0
                return digest
            """,
        },
    ),
    (
        "RL304",
        "argsort-without-stable-kind",
        {
            "dca/ranking.py": """
            import numpy as np

            def rank(weights):
                return np.argsort(weights)
            """,
        },
    ),
    (
        "RL304",
        "unique-indices-over-set-order",
        {
            "dca/dedupe.py": """
            import numpy as np

            def dedupe(values):
                pool = np.asarray(list(set(values)), dtype=np.float64)
                uniq, first_index = np.unique(pool, return_index=True)
                return uniq, first_index
            """,
        },
    ),
    (
        "RL304",
        "float-sum-over-set-derived-array",
        {
            "dca/total.py": """
            import numpy as np

            def total(values):
                pool = np.asarray(list(set(values)), dtype=np.float64)
                return np.sum(pool)
            """,
        },
    ),
    (
        "RL305",
        "dead-regime-guard",
        {
            "dca/gated.py": """
            import numpy as np

            class EngineUnsupported(ValueError):
                pass

            def _validate(config):
                return None
                raise EngineUnsupported("unreachable guard")

            def run_engine(config):
                _validate(config)
                return np.zeros(config.tasks)
            """,
        },
    ),
    (
        "RL305",
        "entry-point-never-validates",
        {
            "dca/unchecked.py": """
            import numpy as np

            class EngineUnsupported(ValueError):
                pass

            def _validate(config):
                if config.arrival_rate:
                    raise EngineUnsupported("churn is not supported")

            def run_engine(config):
                return np.zeros(config.tasks)
            """,
        },
    ),
]

#: Innocent near-misses: same shapes, no bug; every rule must stay silent.
CLEAN = [
    (
        "RL301",
        "dim-one-broadcasts-fine",
        {
            "dca/outer.py": """
            import numpy as np

            def outer(tasks):
                col = np.zeros((tasks, 1), dtype=np.float64)
                row = np.zeros(tasks, dtype=np.float64)
                return col * row
            """,
        },
    ),
    (
        "RL301",
        "literal-vs-symbol-not-provable",
        {
            "dca/maybe.py": """
            import numpy as np

            def add(tasks):
                a = np.zeros(tasks, dtype=np.float64)
                b = np.zeros(500, dtype=np.float64)
                return a + b
            """,
        },
    ),
    (
        "RL302",
        "int-to-bool-astype-is-masking",
        {
            "dca/bits.py": """
            import numpy as np

            def flags(tasks):
                bits = np.zeros(tasks, dtype=np.int64)
                return bits.astype(bool)
            """,
        },
    ),
    (
        "RL302",
        "widening-astype-is-safe",
        {
            "dca/widen.py": """
            import numpy as np

            def as_rates(tasks):
                counts = np.zeros(tasks, dtype=np.int64)
                rates = counts.astype(np.float64)
                return rates
            """,
        },
    ),
    (
        "RL303",
        "copy-sunk-then-original-mutated",
        {
            "dca/careful.py": """
            import numpy as np

            def snapshot(rec, jobs):
                clock = np.zeros(jobs, dtype=np.float64)
                rec.series("clock", clock.copy())
                clock[0] = 1.0
                return clock
            """,
        },
    ),
    (
        "RL304",
        "stable-kind-sort",
        {
            "dca/stable.py": """
            import numpy as np

            def rank(weights):
                return np.argsort(weights, kind="stable")
            """,
        },
    ),
    (
        "RL304",
        "sorted-before-reduction",
        {
            "dca/ordered.py": """
            import numpy as np

            def total(values):
                pool = np.asarray(sorted(set(values)), dtype=np.float64)
                return np.sum(pool)
            """,
        },
    ),
    (
        "RL305",
        "entry-point-reaches-live-guard",
        {
            "dca/guarded.py": """
            import numpy as np

            class EngineUnsupported(ValueError):
                pass

            def _validate(config):
                if config.arrival_rate:
                    raise EngineUnsupported("churn is not supported")

            def run_engine(config):
                _validate(config)
                return np.zeros(config.tasks)
            """,
        },
    ),
]


@pytest.mark.parametrize(
    "rule_id,name,files", CORPUS, ids=[f"{r}-{n}" for r, n, _ in CORPUS]
)
def test_seeded_defect_caught(tmp_path, rule_id, name, files):
    findings = run_tensor_rule(tmp_path, rule_id, files)
    assert findings, f"seeded defect {name!r} not caught by {rule_id}"
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize(
    "rule_id,name,files", CLEAN, ids=[f"{r}-{n}" for r, n, _ in CLEAN]
)
def test_innocent_variant_stays_silent(tmp_path, rule_id, name, files):
    findings = run_all_tensor_rules(tmp_path, files)
    assert findings == [], f"false positive on clean fixture {name!r}"


def test_corpus_has_at_least_ten_seeded_defects():
    assert len(CORPUS) >= 10
    assert {rule_id for rule_id, _, _ in CORPUS} == {
        "RL301",
        "RL302",
        "RL303",
        "RL304",
        "RL305",
    }


def test_clean_set_has_at_least_five_near_misses():
    assert len(CLEAN) >= 5


def test_tensor_registry_is_exactly_rl301_to_rl305():
    assert sorted(registered_tensor_rules()) == [
        "RL301",
        "RL302",
        "RL303",
        "RL304",
        "RL305",
    ]


def corpus_entry(name):
    """Look a defect up by name so corpus growth can't shift indices."""
    for rule_id, entry_name, files in CORPUS:
        if entry_name == name:
            return rule_id, files
    raise KeyError(name)


class TestRuleMessages:
    def test_rl301_names_both_dims(self, tmp_path):
        rule_id, files = corpus_entry("broadcast-tasks-against-nodes")
        findings = run_tensor_rule(tmp_path, rule_id, files)
        assert "'tasks'" in findings[0].message
        assert "'nodes'" in findings[0].message

    def test_rl302_names_the_column(self, tmp_path):
        rule_id, files = corpus_entry("float-store-into-int-tally")
        findings = run_tensor_rule(tmp_path, rule_id, files)
        assert "'votes'" in findings[0].message
        assert "truncates" in findings[0].message

    def test_rl303_names_sink_and_line(self, tmp_path):
        rule_id, files = corpus_entry("view-mutated-after-telemetry-series")
        findings = run_tensor_rule(tmp_path, rule_id, files)
        assert "rec.series()" in findings[0].message
        assert "'view'" in findings[0].message
        assert "'clock'" in findings[0].message

    def test_rl304_suggests_stable_kind(self, tmp_path):
        rule_id, files = corpus_entry("argsort-without-stable-kind")
        findings = run_tensor_rule(tmp_path, rule_id, files)
        assert 'kind="stable"' in findings[0].message

    def test_rl305_dead_guard_message(self, tmp_path):
        rule_id, files = corpus_entry("dead-regime-guard")
        findings = run_tensor_rule(tmp_path, rule_id, files)
        assert any("dead regime guard" in f.message for f in findings)

    def test_rl305_entry_point_message(self, tmp_path):
        rule_id, files = corpus_entry("entry-point-never-validates")
        findings = run_tensor_rule(tmp_path, rule_id, files)
        assert any("reject" in f.message for f in findings)


class TestSuppression:
    def test_inline_suppression_respected(self, tmp_path):
        build_project(
            tmp_path,
            {
                "dca/ranking.py": (
                    "import numpy as np\n"
                    "\n"
                    "def rank(weights):\n"
                    "    return np.argsort(weights)  # reprolint: disable=RL304\n"
                ),
            },
        )
        findings, suppressed, analyzed = run_project_rules(
            [str(tmp_path)], [], tensor_rule_ids=["RL304"]
        )
        assert analyzed
        assert findings == []
        assert suppressed == 1


class TestInterproceduralShapes:
    def test_summary_carries_shape_across_calls(self, tmp_path):
        """A helper's return shape must reach the caller: the incompatible
        axes only meet across the function boundary."""
        findings = run_tensor_rule(
            tmp_path,
            "RL301",
            {
                "dca/helper.py": """
                import numpy as np

                def node_weights(nodes):
                    return np.zeros(nodes, dtype=np.float64)

                def combine(tasks, nodes):
                    votes = np.zeros(tasks, dtype=np.float64)
                    return votes + node_weights(nodes)
                """,
            },
        )
        assert findings, "helper return shape did not propagate to the caller"
        assert all(f.rule_id == "RL301" for f in findings)
