"""Seeded-defect corpus for the flow rules (RL201-RL205).

Every entry in :data:`CORPUS` is one deliberately planted determinism
bug in a synthetic ``repro`` package, together with the one rule that
must catch it; :data:`CLEAN` holds the matching innocent variants that
must produce *zero* findings (the under-approximation contract: no
invented findings).  A meta-test asserts the corpus stays at >= 10
seeded defects.
"""

import pytest

from repro.lint.absint import FlowAnalysis
from repro.lint.flow_rules import registered_flow_rules

from tests.lint.test_project_rules import PARALLEL_STUB, build_project


def run_flow_rule(tmp_path, rule_id, files):
    project = build_project(tmp_path, files)
    analysis = FlowAnalysis.build(project.graph, project.callgraph)
    rule = registered_flow_rules()[rule_id]()
    return sorted(rule.check(project, analysis))


#: (rule id, defect name, fixture files) -- each one planted bug.
CORPUS = [
    (
        "RL201",
        "stream-passed-into-pool",
        {
            "parallel/__init__.py": PARALLEL_STUB,
            "experiments/driver.py": """
            from repro.parallel import parallel_map

            def work(item):
                value, rng = item
                return value + rng.random()

            def run(registry, items):
                shared = registry.stream("jobs")
                return parallel_map(work, [(item, shared) for item in items])
            """,
        },
    ),
    (
        "RL201",
        "worker-draws-module-level-stream",
        {
            "parallel/__init__.py": PARALLEL_STUB,
            "experiments/noise.py": """
            from repro.parallel import parallel_map

            registry = RngRegistry(7)
            NOISE = registry.stream("noise")

            def work(item):
                return item + NOISE.random()

            def run(items):
                return parallel_map(work, items)
            """,
        },
    ),
    (
        "RL202",
        "draw-after-handoff-to-drawing-callee",
        {
            "sim/phases.py": """
            def child(rng):
                return rng.random()

            def parent(registry):
                s = registry.stream("phase")
                first = child(s)
                second = s.random()
                return first + second
            """,
        },
    ),
    (
        "RL202",
        "draw-after-handoff-to-storing-ctor",
        {
            "sim/nodes.py": """
            class Node:
                def __init__(self, rng):
                    self.rng = rng

            def parent(registry):
                s = registry.stream("jobs")
                node = Node(s)
                return s.random()
            """,
        },
    ),
    (
        "RL203",
        "unseeded-random-passed-into-core",
        {
            "core/decide.py": """
            def pick(rng, options):
                return options[int(rng.random() * len(options))]
            """,
            "experiments/run.py": """
            import random

            from repro.core.decide import pick

            def run(options):
                rng = random.Random()
                return pick(rng, options)
            """,
        },
    ),
    (
        "RL203",
        "unseeded-draw-inside-dca",
        {
            "dca/sched.py": """
            import random

            def jitter():
                rng = random.Random()
                return rng.random()
            """,
        },
    ),
    (
        "RL203",
        "unseeded-draw-inside-subscript-index",
        {
            "dca/pick.py": """
            import random

            def pick(options):
                rng = random.Random()
                return options[rng.randrange(len(options))]
            """,
        },
    ),
    (
        "RL204",
        "sum-over-set-returned-by-callee",
        {
            "core/stats.py": """
            def dedupe(values):
                return set(values)

            def total(values):
                unique = dedupe(values)
                return sum(unique)
            """,
        },
    ),
    (
        "RL204",
        "loop-accumulation-over-frozenset-call",
        {
            "core/means.py": """
            def gather(values):
                return frozenset(values)

            def accumulate(values):
                total = 0.0
                for v in gather(values):
                    total += v
                return total
            """,
        },
    ),
    (
        "RL204",
        "loop-accumulation-over-as-completed",
        {
            "experiments/collect.py": """
            def collect(futures):
                total = 0.0
                for result in as_completed(futures):
                    total += result
                return total
            """,
        },
    ),
    (
        "RL205",
        "worker-method-appends-class-list",
        {
            "parallel/__init__.py": PARALLEL_STUB,
            "core/estimator.py": """
            from repro.parallel import parallel_map

            class Estimator:
                history = []

                def observe(self, item):
                    self.history.append(item)
                    return item

                def run(self, items):
                    return parallel_map(self.observe, items)
            """,
        },
    ),
    (
        "RL205",
        "worker-method-writes-class-dict",
        {
            "parallel/__init__.py": PARALLEL_STUB,
            "core/tally.py": """
            from repro.parallel import parallel_map

            class Tally:
                counts = {}

                def bump(self, key):
                    self.counts[key] = self.counts.get(key, 0) + 1
                    return key

                def run(self, items):
                    return parallel_map(self.bump, items)
            """,
        },
    ),
]

#: Innocent variants: the same shapes done right must stay silent.
CLEAN = [
    (
        "RL201",
        "worker-spawns-own-stream",
        {
            "parallel/__init__.py": PARALLEL_STUB,
            "experiments/driver.py": """
            from repro.parallel import parallel_map

            def work(item):
                registry = RngRegistry(item)
                rng = registry.stream("noise")
                return rng.random()

            def run(items):
                return parallel_map(work, items)
            """,
        },
    ),
    (
        "RL202",
        "handoff-gets-spawned-child-stream",
        {
            "sim/phases.py": """
            def child(rng):
                return rng.random()

            def parent(registry):
                handed = registry.spawn("child")
                first = child(handed)
                mine = registry.stream("mine")
                return first + mine.random()
            """,
        },
    ),
    (
        "RL203",
        "seeded-random-in-core",
        {
            "core/decide.py": """
            import random

            def jitter(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
        },
    ),
    (
        "RL203",
        "unseeded-random-stays-outside-decision-code",
        {
            "experiments/shuffle.py": """
            import random

            def preview(values):
                rng = random.Random()
                return values[int(rng.random() * len(values))]
            """,
        },
    ),
    (
        "RL204",
        "sorted-reestablishes-order",
        {
            "core/stats.py": """
            def dedupe(values):
                return set(values)

            def total(values):
                unique = dedupe(values)
                return sum(sorted(unique))
            """,
        },
    ),
    (
        "RL204",
        "syntactic-set-is-rl104s-problem",
        {
            "core/stats.py": """
            def total(values):
                pool = set(values)
                return sum(pool)
            """,
        },
    ),
    (
        "RL205",
        "init-rebinds-instance-state",
        {
            "parallel/__init__.py": PARALLEL_STUB,
            "core/estimator.py": """
            from repro.parallel import parallel_map

            class Estimator:
                history = []

                def __init__(self):
                    self.history = []

                def observe(self, item):
                    self.history.append(item)
                    return item

                def run(self, items):
                    return parallel_map(self.observe, items)
            """,
        },
    ),
    (
        "RL205",
        "no-pool-no-worker-reachability",
        {
            "core/estimator.py": """
            class Estimator:
                history = []

                def observe(self, item):
                    self.history.append(item)
                    return item
            """,
        },
    ),
]


@pytest.mark.parametrize(
    "rule_id,name,files", CORPUS, ids=[f"{r}-{n}" for r, n, _ in CORPUS]
)
def test_seeded_defect_caught(tmp_path, rule_id, name, files):
    findings = run_flow_rule(tmp_path, rule_id, files)
    assert findings, f"seeded defect {name!r} not caught by {rule_id}"
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize(
    "rule_id,name,files", CLEAN, ids=[f"{r}-{n}" for r, n, _ in CLEAN]
)
def test_innocent_variant_stays_silent(tmp_path, rule_id, name, files):
    findings = run_flow_rule(tmp_path, rule_id, files)
    assert findings == [], f"false positive on clean fixture {name!r}"


def test_corpus_has_at_least_ten_seeded_defects():
    assert len(CORPUS) >= 10
    assert {rule_id for rule_id, _, _ in CORPUS} == {
        "RL201",
        "RL202",
        "RL203",
        "RL204",
        "RL205",
    }


def test_flow_registry_is_exactly_rl201_to_rl205():
    assert sorted(registered_flow_rules()) == [
        "RL201",
        "RL202",
        "RL203",
        "RL204",
        "RL205",
    ]


def corpus_entry(name):
    """Look a defect up by name so corpus growth can't shift indices."""
    for rule_id, entry_name, files in CORPUS:
        if entry_name == name:
            return rule_id, files
    raise KeyError(name)


class TestRuleMessages:
    def test_rl201_pool_message_names_spawn(self, tmp_path):
        rule_id, files = corpus_entry("stream-passed-into-pool")
        findings = run_flow_rule(tmp_path, rule_id, files)
        assert any("registry.spawn" in f.message for f in findings)

    def test_rl202_message_names_callee_and_line(self, tmp_path):
        rule_id, files = corpus_entry("draw-after-handoff-to-drawing-callee")
        findings = run_flow_rule(tmp_path, rule_id, files)
        assert len(findings) == 1
        assert "child()" in findings[0].message
        assert "stream 'phase'" in findings[0].message

    def test_rl203_message_mentions_replay(self, tmp_path):
        rule_id, files = corpus_entry("unseeded-draw-inside-dca")
        findings = run_flow_rule(tmp_path, rule_id, files)
        assert any("cannot be replayed" in f.message for f in findings)

    def test_rl204_names_accumulator(self, tmp_path):
        rule_id, files = corpus_entry("loop-accumulation-over-frozenset-call")
        findings = run_flow_rule(tmp_path, rule_id, files)
        assert any("'total'" in f.message for f in findings)

    def test_rl205_points_at_envelope_reduction(self, tmp_path):
        rule_id, files = corpus_entry("worker-method-appends-class-list")
        findings = run_flow_rule(tmp_path, rule_id, files)
        assert any("ReplicateEnvelope" in f.message for f in findings)


class TestEscapeHatch:
    def test_stream_annotation_suppresses_rl203(self, tmp_path):
        findings = run_flow_rule(
            tmp_path,
            "RL203",
            {
                "dca/sched.py": """
                import random

                def jitter():
                    rng = random.Random()  # reprolint: stream=jitter
                    return rng.random()
                """,
            },
        )
        assert findings == []

    def test_stream_annotation_registers_creation_site(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "dca/sched.py": """
                import random

                def jitter():
                    rng = random.Random()  # reprolint: stream=jitter
                    return rng.random()
                """,
            },
        )
        analysis = FlowAnalysis.build(project.graph, project.callgraph)
        assert "jitter" in analysis.events.created_at
