"""Runtime determinism sanitizer: clean runs pass, an injected
global-RNG draw is detected and pinpointed at the first diverging event.
Covers all three substrates -- DCA, grid, and MapReduce."""

import random

import pytest

from repro.core import IterativeRedundancy, TraditionalRedundancy
from repro.dca.config import DcaConfig
from repro.dca.node import Node
from repro.grid.run import GridConfig
from repro.lint.sanitizer import (
    DeterminismError,
    DeterminismSanitizer,
    dca_runner,
    diff_captures,
    grid_runner,
    mapreduce_runner,
    sanitize_dca,
    sanitize_grid,
    sanitize_mapreduce,
    trace_fingerprint,
)
from repro.mapreduce.job import wordcount_job


def small_config(strategy=None, seed=11):
    return DcaConfig(
        strategy=strategy or IterativeRedundancy(2),
        tasks=60,
        nodes=15,
        reliability=0.7,
        seed=seed,
    )


class TestCleanRuns:
    def test_dca_run_is_deterministic(self):
        report = sanitize_dca(small_config())
        assert report.ok
        assert report.divergence is None
        assert report.events_compared > 0
        assert "deterministic" in report.message()
        report.raise_if_diverged()  # no-op when ok

    def test_three_runs_supported(self):
        report = sanitize_dca(small_config(TraditionalRedundancy(3)), runs=3)
        assert report.ok and report.runs == 3

    def test_runner_captures_events_and_metrics(self):
        events, metrics = dca_runner(small_config())()
        assert len(events) > 0
        assert metrics["tasks"] == 60
        assert trace_fingerprint(events)  # non-empty canonical text

    def test_needs_two_runs(self):
        with pytest.raises(ValueError):
            DeterminismSanitizer(dca_runner(small_config()), runs=1)


class TestInjectedNondeterminism:
    def test_global_rng_draw_is_detected_and_pinpointed(self, monkeypatch):
        # Inject exactly the bug RL001 guards against: a job-duration
        # perturbation drawn from the process-global random module.  Two
        # same-seed runs then consume different global draws and their
        # traces must diverge.
        original = Node.job_duration

        def leaky_duration(self, base_duration):
            # the global draw IS the injected bug under test
            return original(self, base_duration) + random.random() * 0.01  # reprolint: disable=RL001

        monkeypatch.setattr(Node, "job_duration", leaky_duration)
        report = sanitize_dca(small_config())
        assert not report.ok
        divergence = report.divergence
        assert divergence is not None
        assert divergence.kind in ("event", "length", "metric")
        if divergence.kind == "event":
            assert divergence.index >= 0
            assert divergence.expected != divergence.observed
            assert f"#{divergence.index}" in divergence.describe()
        assert "NONDETERMINISM" in report.message()
        with pytest.raises(DeterminismError):
            report.raise_if_diverged()

    def test_fingerprints_differ_under_injection(self, monkeypatch):
        original = Node.job_duration
        monkeypatch.setattr(
            Node,
            "job_duration",
            lambda self, base: original(self, base)
            + random.random() * 0.01,  # reprolint: disable=RL001 -- injected bug
        )
        runner = dca_runner(small_config())
        first, _ = runner()
        second, _ = runner()
        assert trace_fingerprint(first) != trace_fingerprint(second)


class TestDiffCaptures:
    def test_metric_divergence_when_traces_match(self):
        events, metrics = dca_runner(small_config())()
        altered = dict(metrics)
        altered["reliability"] = -1.0
        divergence = diff_captures((events, metrics), (events, altered))
        assert divergence is not None and divergence.kind == "metric"
        assert "reliability" in divergence.expected

    def test_length_divergence(self):
        events, metrics = dca_runner(small_config())()
        divergence = diff_captures((events, metrics), (events[:-1], metrics))
        assert divergence is not None and divergence.kind == "length"
        assert divergence.index == len(events) - 1

    def test_identical_captures_have_no_divergence(self):
        capture = dca_runner(small_config())()
        assert diff_captures(capture, capture) is None


def grid_config(seed=5):
    return GridConfig(
        strategy=IterativeRedundancy(2),
        tasks=40,
        sites=4,
        slots_per_site=8,
        seed=seed,
    )


class TestGridSubstrate:
    def test_same_seed_replay_is_deterministic(self):
        report = sanitize_grid(grid_config())
        assert report.ok, report.message()
        assert report.events_compared == 40  # one DECIDE record per task

    def test_same_seed_fingerprints_match(self):
        runner = grid_runner(grid_config())
        first_events, first_metrics = runner()
        second_events, second_metrics = runner()
        assert trace_fingerprint(first_events) == trace_fingerprint(second_events)
        assert first_metrics == second_metrics

    def test_different_seeds_diverge(self):
        first, _ = grid_runner(grid_config(seed=5))()
        second, _ = grid_runner(grid_config(seed=6))()
        assert trace_fingerprint(first) != trace_fingerprint(second)

    def test_stateful_strategy_cannot_leak_between_runs(self):
        # The runner deep-copies the config each run, so even a strategy
        # carrying mutable state replays identically.
        config = grid_config()
        report = sanitize_grid(config, runs=3)
        assert report.ok, report.message()


def small_job():
    text = "to be or not to be that is the question " * 25
    return wordcount_job(text, chunk_size=60)


class TestMapReduceSubstrate:
    def test_same_seed_replay_is_deterministic(self):
        report = sanitize_mapreduce(
            small_job(), IterativeRedundancy(2), nodes=40, seed=13
        )
        assert report.ok, report.message()
        assert report.events_compared > 0

    def test_same_seed_fingerprints_match(self):
        runner = mapreduce_runner(
            small_job(), IterativeRedundancy(2), nodes=40, seed=13
        )
        first_events, first_metrics = runner()
        second_events, second_metrics = runner()
        assert trace_fingerprint(first_events) == trace_fingerprint(second_events)
        assert first_metrics == second_metrics

    def test_metrics_carry_output_and_corruption(self):
        _, metrics = mapreduce_runner(
            small_job(), IterativeRedundancy(2), nodes=40, seed=13
        )()
        assert "correct" in metrics
        assert "corrupted_chunks" in metrics
        assert isinstance(metrics["output"], dict) and metrics["output"]

    def test_different_seeds_diverge(self):
        first, _ = mapreduce_runner(
            small_job(), IterativeRedundancy(2), nodes=40, seed=13
        )()
        second, _ = mapreduce_runner(
            small_job(), IterativeRedundancy(2), nodes=40, seed=14
        )()
        assert trace_fingerprint(first) != trace_fingerprint(second)
