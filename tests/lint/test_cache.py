"""Incremental cache tests: warm runs must be byte-identical to cold
runs, invalidation must be exact (content hash per file, tree hash for
the whole-program pass, ruleset signature for everything), and a broken
cache file must never be an error."""

import json
from pathlib import Path

import pytest

import repro.lint.project as project_module
from repro.lint.cache import (
    CACHE_SCHEMA,
    LintCache,
    file_sha,
    ruleset_signature,
    tree_hash,
)
from repro.lint.findings import Finding, Severity
from repro.lint.project import lint_project

#: A per-file defect (RL004) plus a whole-program defect (RL101:
#: ``core`` importing ``dca`` violates the layering DAG).
TREE = {
    "core/bad.py": (
        "from repro.dca import cfg\n"
        "\n"
        "def collect(items=[]):\n"
        "    return items\n"
    ),
    "core/clean.py": "X = 1\n",
    "dca/cfg.py": "LIMIT = 3\n",
}

RULE_IDS = ("RL004",)
PROJECT_RULE_IDS = ("RL101",)


@pytest.fixture
def tree(tmp_path):
    root = tmp_path / "repro"
    root.mkdir()
    (root / "__init__.py").touch()
    for relative, source in TREE.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        init = path.parent / "__init__.py"
        if not init.exists():
            init.touch()
        path.write_text(source, encoding="utf-8")
    return root


def make_cache(tmp_path, signature="sig"):
    return LintCache.load(tmp_path / ".reprolint-cache.json", signature)


def run(tree, cache=None, jobs=1):
    return lint_project(
        [str(tree)],
        rule_ids=RULE_IDS,
        project_rule_ids=PROJECT_RULE_IDS,
        jobs=jobs,
        cache=cache,
    )


class TestWarmRuns:
    def test_warm_run_is_byte_identical(self, tree, tmp_path):
        cold = run(tree, cache=make_cache(tmp_path))
        warm_cache = make_cache(tmp_path)
        warm = run(tree, cache=warm_cache)
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed
        assert warm.files_checked == cold.files_checked
        assert warm_cache.misses == 0
        assert warm_cache.hits == cold.files_checked
        # Sanity: the corpus really exercises both cache layers.
        assert {f.rule_id for f in cold.findings} == {"RL004", "RL101"}

    def test_cache_matches_uncached_run(self, tree, tmp_path):
        uncached = run(tree)
        cached = run(tree, cache=make_cache(tmp_path))
        assert cached.findings == uncached.findings

    def test_warm_run_skips_whole_program_pass(self, tree, tmp_path, monkeypatch):
        run(tree, cache=make_cache(tmp_path))

        def explode(*args, **kwargs):
            raise AssertionError("whole-program pass ran on a warm cache")

        monkeypatch.setattr(project_module, "run_project_rules", explode)
        warm = run(tree, cache=make_cache(tmp_path))
        assert warm.analyzed_project
        assert {f.rule_id for f in warm.findings} == {"RL004", "RL101"}

    def test_parallel_warm_and_cold_agree(self, tree, tmp_path):
        serial = run(tree)
        parallel_cold = run(tree, cache=make_cache(tmp_path), jobs=2)
        parallel_warm = run(tree, cache=make_cache(tmp_path), jobs=2)
        assert parallel_cold.findings == serial.findings
        assert parallel_warm.findings == serial.findings


class TestInvalidation:
    def test_changed_file_relinted(self, tree, tmp_path):
        run(tree, cache=make_cache(tmp_path))
        # Fixing the mutable default removes the RL004 finding; the
        # layering violation (unchanged bytes elsewhere) must survive
        # because the tree hash changed and the project pass re-ran.
        bad = tree / "core" / "bad.py"
        bad.write_text(
            "from repro.dca import cfg\n\ndef collect(items=None):\n    return items\n",
            encoding="utf-8",
        )
        warm_cache = make_cache(tmp_path)
        warm = run(tree, cache=warm_cache)
        assert {f.rule_id for f in warm.findings} == {"RL101"}
        assert warm_cache.misses == 1  # only the changed file
        assert warm_cache.hits == warm.files_checked - 1

    def test_new_file_invalidates_project_pass_only(self, tree, tmp_path):
        run(tree, cache=make_cache(tmp_path))
        extra = tree / "core" / "extra.py"
        extra.write_text("from repro.dca import cfg\n", encoding="utf-8")
        warm = run(tree, cache=make_cache(tmp_path))
        # Two layering findings now: the old one and the new file's.
        assert sorted(f.rule_id for f in warm.findings) == [
            "RL004",
            "RL101",
            "RL101",
        ]

    def test_signature_mismatch_starts_fresh(self, tree, tmp_path):
        run(tree, cache=make_cache(tmp_path, signature="old"))
        fresh = make_cache(tmp_path, signature="new")
        result = run(tree, cache=fresh)
        assert fresh.hits == 0
        assert fresh.misses == result.files_checked

    def test_removed_file_pruned_from_cache(self, tree, tmp_path):
        run(tree, cache=make_cache(tmp_path))
        (tree / "core" / "clean.py").unlink()
        run(tree, cache=make_cache(tmp_path))
        document = json.loads(
            (tmp_path / ".reprolint-cache.json").read_text(encoding="utf-8")
        )
        assert not any("clean.py" in path for path in document["files"])


class TestRobustness:
    def test_corrupt_cache_file_treated_as_empty(self, tree, tmp_path):
        path = tmp_path / ".reprolint-cache.json"
        path.write_text("{not json", encoding="utf-8")
        cache = LintCache.load(path, "sig")
        result = run(tree, cache=cache)
        assert {f.rule_id for f in result.findings} == {"RL004", "RL101"}
        # And the run rewrote it into a valid document.
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["schema"] == CACHE_SCHEMA

    def test_wrong_schema_treated_as_empty(self, tmp_path):
        path = tmp_path / ".reprolint-cache.json"
        path.write_text(
            json.dumps({"schema": "something-else/9", "signature": "sig"}),
            encoding="utf-8",
        )
        cache = LintCache.load(path, "sig")
        assert cache.get_file("a.py", "sha") is None

    def test_save_without_changes_writes_nothing(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.save()
        assert not (tmp_path / ".reprolint-cache.json").exists()


class TestPrimitives:
    def test_file_sha_tracks_content(self, tmp_path):
        path = tmp_path / "a.py"
        path.write_text("x = 1\n", encoding="utf-8")
        first = file_sha(str(path))
        path.write_text("x = 2\n", encoding="utf-8")
        assert file_sha(str(path)) != first

    def test_tree_hash_order_independent_but_content_sensitive(self):
        a = tree_hash({"a.py": "1", "b.py": "2"})
        assert a == tree_hash({"b.py": "2", "a.py": "1"})
        assert a != tree_hash({"a.py": "1", "b.py": "3"})
        assert a != tree_hash({"a.py": "1"})

    def test_ruleset_signature_sensitive_to_version_and_rules(self):
        base = ruleset_signature("1.0", ["RL001"], ["RL101"])
        assert base == ruleset_signature("1.0", ["RL001"], ["RL101"])
        assert base != ruleset_signature("1.1", ["RL001"], ["RL101"])
        assert base != ruleset_signature("1.0", ["RL001", "RL002"], ["RL101"])
        # Group order matters (file vs project vs flow selections are
        # distinct), but order within a group does not.
        assert ruleset_signature("1.0", ["RL002", "RL001"]) == ruleset_signature(
            "1.0", ["RL001", "RL002"]
        )

    def test_findings_round_trip_through_dicts(self):
        finding = Finding(
            path="src/repro/x.py",
            line=3,
            col=7,
            rule_id="RL004",
            severity=Severity.ERROR,
            message="mutable default",
        )
        assert Finding.from_dict(finding.as_dict()) == finding


class TestTensorSignature:
    """Satellite of the tensor tier: the ruleset signature must move
    when the numpy intrinsic tables move (a table edit busts the cache)
    and must NOT move for comment-only edits to ``arrays.py`` (the
    digest covers table *contents*, not file bytes)."""

    @staticmethod
    def _variant_digest(tmp_path, transform):
        import importlib.util
        import sys

        from repro.lint import arrays

        source = Path(arrays.__file__).read_text(encoding="utf-8")
        variant = transform(source)
        path = tmp_path / "arrays_variant.py"
        path.write_text(variant, encoding="utf-8")
        spec = importlib.util.spec_from_file_location("arrays_variant", str(path))
        module = importlib.util.module_from_spec(spec)
        # Dataclasses in the module resolve annotations through
        # sys.modules[cls.__module__]; register before executing.
        sys.modules["arrays_variant"] = module
        try:
            spec.loader.exec_module(module)
            return module.tensor_tables_digest()
        finally:
            del sys.modules["arrays_variant"]

    def test_table_edit_changes_digest_and_signature(self, tmp_path):
        from repro.lint.arrays import tensor_tables_digest

        def add_msort(source):
            needle = 'frozenset({"sort", "argsort", "lexsort"})'
            assert needle in source
            return source.replace(
                needle, 'frozenset({"sort", "argsort", "lexsort", "msort"})'
            )

        edited = self._variant_digest(tmp_path, add_msort)
        current = tensor_tables_digest()
        assert edited != current
        tensor_ids = ["RL301", "RL302", "RL303", "RL304", "RL305"]
        assert ruleset_signature(
            "1.0", [], [], [], tensor_ids, [current]
        ) != ruleset_signature("1.0", [], [], [], tensor_ids, [edited])

    def test_comment_only_edit_keeps_digest(self, tmp_path):
        from repro.lint.arrays import tensor_tables_digest

        unchanged = self._variant_digest(
            tmp_path, lambda source: source + "\n# comment-only edit\n"
        )
        assert unchanged == tensor_tables_digest()

    def test_tensor_group_participates_in_signature(self):
        from repro.lint.arrays import tensor_tables_digest

        digest = [tensor_tables_digest()]
        without = ruleset_signature("1.0", ["RL001"], ["RL101"], ["RL201"])
        with_tensors = ruleset_signature(
            "1.0", ["RL001"], ["RL101"], ["RL201"], ["RL304"], digest
        )
        assert without != with_tensors
        # Dropping a single tensor rule re-keys the cache too.
        assert with_tensors != ruleset_signature(
            "1.0", ["RL001"], ["RL101"], ["RL201"], ["RL305"], digest
        )
