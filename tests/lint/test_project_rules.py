"""Positive and negative fixtures for each whole-program rule
(RL101-RL106).  Fixtures are synthetic ``repro`` packages written to a
temp directory and run through the real graph/callgraph pipeline."""

import textwrap

import pytest

from repro.lint.graph import load_project
from repro.lint.project_rules import (
    ALLOWED_IMPORTS,
    ProjectContext,
    registered_project_rules,
)

#: A stub of the real fan-out entry point, so fixtures can submit workers.
PARALLEL_STUB = """
def parallel_map(worker, items, jobs=None, chunk_size=None):
    return [worker(item) for item in items]
"""


def build_project(tmp_path, files):
    """Write ``{relative path: source}`` as a ``repro`` package and build
    the full project context (import graph + call graph)."""
    root = tmp_path / "repro"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").touch()
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.parents:
            if parent == root:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.touch()
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return ProjectContext.build(load_project(root))


def run_rule(tmp_path, rule_id, files):
    project = build_project(tmp_path, files)
    rule = registered_project_rules()[rule_id]()
    return sorted(rule.check(project))


def messages(findings):
    return [finding.message for finding in findings]


class TestRL101Layering:
    def test_lower_layer_importing_higher_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL101",
            {
                "core/bad.py": "from repro.dca import config\n",
                "dca/config.py": "X = 1\n",
            },
        )
        assert len(findings) == 1
        assert "layering violation" in findings[0].message
        assert "'core' may not import 'dca'" in findings[0].message
        assert findings[0].path.endswith("core/bad.py")

    def test_allowed_direction_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL101",
            {
                "dca/sim.py": "from repro.core.types import Decision\n",
                "core/types.py": "Decision = object\n",
            },
        )
        assert findings == []

    def test_unknown_package_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL101",
            {
                "mystery/mod.py": "from repro.core.types import Decision\n",
                "core/types.py": "Decision = object\n",
            },
        )
        assert len(findings) == 1
        assert "not in the layering map" in findings[0].message

    def test_import_cycle_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL101",
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": "from repro.core import a\n",
            },
        )
        assert len(findings) == 1
        assert "import cycle" in findings[0].message
        assert "repro.core.a -> repro.core.b" in findings[0].message

    def test_lazy_import_breaks_cycle(self, tmp_path):
        # A function-scoped import is the sanctioned cycle-breaker.
        findings = run_rule(
            tmp_path,
            "RL101",
            {
                "core/a.py": "from repro.core import b\n",
                "core/b.py": (
                    "def back():\n"
                    "    from repro.core import a\n"
                    "    return a\n"
                ),
            },
        )
        assert findings == []

    def test_layer_map_is_a_dag(self):
        # The map itself must not smuggle a cycle in.
        state = {}

        def visit(pkg):
            if state.get(pkg) == "done":
                return
            assert state.get(pkg) != "visiting", f"cycle through {pkg}"
            state[pkg] = "visiting"
            for dep in ALLOWED_IMPORTS.get(pkg, ()):
                visit(dep)
            state[pkg] = "done"

        for pkg in ALLOWED_IMPORTS:
            visit(pkg)


class TestRL102ParallelSafety:
    def test_lambda_worker_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL102",
            {
                "parallel/__init__.py": PARALLEL_STUB,
                "experiments/run.py": """
                from repro.parallel import parallel_map

                def go(items):
                    return parallel_map(lambda x: x + 1, items)
                """,
            },
        )
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_nested_function_worker_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL102",
            {
                "parallel/__init__.py": PARALLEL_STUB,
                "experiments/run.py": """
                from repro.parallel import parallel_map

                def go(items, offset):
                    def shifted(x):
                        return x + offset

                    return parallel_map(shifted, items)
                """,
            },
        )
        assert len(findings) == 1
        assert "'shifted'" in findings[0].message
        assert "closes over" in findings[0].message

    def test_bound_method_worker_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL102",
            {
                "parallel/__init__.py": PARALLEL_STUB,
                "experiments/run.py": """
                from repro.parallel import parallel_map

                class Harness:
                    def work(self, x):
                        return x

                    def go(self, items):
                        return parallel_map(self.work, items)
                """,
            },
        )
        assert len(findings) == 1
        assert "bound method self.work" in findings[0].message

    def test_module_level_worker_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL102",
            {
                "parallel/__init__.py": PARALLEL_STUB,
                "experiments/run.py": """
                from functools import partial

                from repro.parallel import parallel_map

                def work(x, offset=0):
                    return x + offset

                def go(items):
                    return parallel_map(partial(work, offset=2), items)
                """,
            },
        )
        assert findings == []

    def test_executor_submit_lambda_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL102",
            {
                "experiments/run.py": """
                from concurrent.futures import ProcessPoolExecutor

                def go(items):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(lambda x: x, item) for item in items]
                """,
            },
        )
        assert len(findings) == 1
        assert "lambda" in findings[0].message


class TestRL103WorkerMutableState:
    FILES = {
        "parallel/__init__.py": PARALLEL_STUB,
        "experiments/run.py": """
        from repro.parallel import parallel_map

        CACHE = {}

        def work(x):
            CACHE[x] = x * 2
            return CACHE[x]

        def go(items):
            return parallel_map(work, items)
        """,
    }

    def test_worker_mutating_module_global_flagged(self, tmp_path):
        findings = run_rule(tmp_path, "RL103", self.FILES)
        assert len(findings) == 1
        assert "work() mutates module-level 'CACHE'" in findings[0].message

    def test_transitive_callee_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL103",
            {
                "parallel/__init__.py": PARALLEL_STUB,
                "experiments/run.py": """
                from repro.parallel import parallel_map

                SEEN = []

                def record(x):
                    SEEN.append(x)

                def work(x):
                    record(x)
                    return x

                def go(items):
                    return parallel_map(work, items)
                """,
            },
        )
        assert len(findings) == 1
        assert "record() mutates module-level 'SEEN'" in findings[0].message

    def test_local_mutation_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL103",
            {
                "parallel/__init__.py": PARALLEL_STUB,
                "experiments/run.py": """
                from repro.parallel import parallel_map

                def work(x):
                    cache = {}
                    cache[x] = x * 2
                    return cache[x]

                def go(items):
                    return parallel_map(work, items)
                """,
            },
        )
        assert findings == []

    def test_mutation_outside_worker_closure_clean(self, tmp_path):
        # The same mutation is fine when nothing reachable from a pool
        # worker performs it.
        findings = run_rule(
            tmp_path,
            "RL103",
            {
                "experiments/run.py": """
                CACHE = {}

                def remember(x):
                    CACHE[x] = x
                """,
            },
        )
        assert findings == []


class TestRL104UnorderedIteration:
    def test_accumulation_over_set_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL104",
            {
                "core/agg.py": """
                def total(values):
                    seen = set(values)
                    acc = 0.0
                    for value in seen:
                        acc += value
                    return acc
                """,
            },
        )
        assert len(findings) == 1
        assert "accumulates into 'acc'" in findings[0].message

    def test_rng_draw_per_element_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL104",
            {
                "core/agg.py": """
                def sample(rng, nodes):
                    pool = set(nodes)
                    out = []
                    for node in pool:
                        out.append(rng.random())
                    return out
                """,
            },
        )
        assert len(findings) == 1
        assert "draws from an RNG stream per element" in findings[0].message

    def test_sum_over_set_literal_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL104",
            {"core/agg.py": "TOTAL = sum({0.1, 0.2, 0.3})\n"},
        )
        assert len(findings) == 1
        assert "sum() over an unordered set" in findings[0].message

    def test_sorted_iteration_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL104",
            {
                "core/agg.py": """
                def total(values):
                    seen = set(values)
                    acc = 0.0
                    for value in sorted(seen):
                        acc += value
                    return acc
                """,
            },
        )
        assert findings == []

    def test_plain_iteration_without_reduction_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL104",
            {
                "core/agg.py": """
                def check(values):
                    for value in set(values):
                        if value < 0:
                            raise ValueError(value)
                """,
            },
        )
        assert findings == []

    def test_sorted_rebinding_clean(self, tmp_path):
        # Regression: ``seen = sorted(seen)`` turns the set back into a
        # deterministic list; the accumulation below must not fire.
        findings = run_rule(
            tmp_path,
            "RL104",
            {
                "core/agg.py": """
                def total(values):
                    seen = set(values)
                    seen = sorted(seen)
                    acc = 0.0
                    for value in seen:
                        acc += value
                    return acc
                """,
            },
        )
        assert findings == []

    def test_sorted_items_reduction_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL104",
            {
                "core/agg.py": """
                def total(weights):
                    pairs = sorted(weights.items())
                    acc = 0.0
                    for _, weight in pairs:
                        acc += weight
                    return acc
                """,
            },
        )
        assert findings == []

    def test_demotion_fixed_point_keeps_real_sets(self, tmp_path):
        # ``s = s | t`` keeps ``s`` a set (no demotion), so the
        # accumulation over it still fires after the rebinding fix.
        findings = run_rule(
            tmp_path,
            "RL104",
            {
                "core/agg.py": """
                def total(a, b):
                    s = set(a)
                    t = set(b)
                    s = s | t
                    acc = 0.0
                    for value in s:
                        acc += value
                    return acc
                """,
            },
        )
        assert len(findings) == 1
        assert "accumulates into 'acc'" in findings[0].message


class TestRL105RngProvenance:
    def test_stream_taking_function_minting_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL105",
            {
                "core/strat.py": """
                import random

                def decide(rng, p):
                    private = random.Random(42)
                    return rng.random() < p or private.random() < p
                """,
            },
        )
        assert len(findings) == 1
        assert "decide() is handed a registry stream (rng)" in findings[0].message

    def test_seeded_fallback_for_absent_stream_clean(self, tmp_path):
        # ``rng or random.Random(0)`` / ``if rng is None`` defaults are
        # deterministic and allowed.
        findings = run_rule(
            tmp_path,
            "RL105",
            {
                "core/strat.py": """
                import random

                def decide(p, rng=None):
                    rng = rng or random.Random(0)
                    return rng.random() < p

                def decide2(p, rng=None):
                    if rng is None:
                        rng = random.Random(7)
                    return rng.random() < p
                """,
            },
        )
        assert findings == []

    def test_unseeded_fallback_still_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL105",
            {
                "core/strat.py": """
                import random

                def decide(p, rng=None):
                    rng = rng or random.Random()
                    return rng.random() < p
                """,
            },
        )
        assert len(findings) == 1

    def test_unseeded_rng_escaping_function_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL105",
            {
                "core/strat.py": """
                import random

                def make_rng():
                    return random.Random()
                """,
            },
        )
        assert len(findings) == 1
        assert "unseeded random.Random() escapes make_rng()" in findings[0].message

    def test_seeded_escape_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL105",
            {
                "core/strat.py": """
                import random

                def make_rng(seed):
                    return random.Random(seed)
                """,
            },
        )
        assert findings == []

    def test_module_level_unseeded_rng_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL105",
            {"core/strat.py": "import random\n\nGLOBAL_RNG = random.Random()\n"},
        )
        assert len(findings) == 1
        assert "module-level random.Random()" in findings[0].message


class TestRL106PublicApi:
    def test_phantom_all_export_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL106",
            {
                "core/__init__.py": """
                from repro.core.types import Decision

                __all__ = ["Decision", "Phantom"]
                """,
                "core/types.py": "Decision = object\n",
            },
        )
        assert len(findings) == 1
        assert "__all__ exports 'Phantom'" in findings[0].message

    def test_drifted_reimport_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL106",
            {
                "core/__init__.py": "from repro.core.types import Gone\n",
                "core/types.py": "Decision = object\n",
            },
        )
        assert len(findings) == 1
        assert "does not define 'Gone'" in findings[0].message

    def test_consistent_init_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "RL106",
            {
                "core/__init__.py": """
                from repro.core.types import Decision

                __all__ = ["Decision", "types"]
                """,
                "core/types.py": "Decision = object\n",
            },
        )
        assert findings == []

    def test_non_init_modules_ignored(self, tmp_path):
        # Drifted imports in ordinary modules are a runtime concern, not
        # an API-contract one; RL106 only audits __init__ files.
        findings = run_rule(
            tmp_path,
            "RL106",
            {
                "core/user.py": "from repro.core.types import Gone\n",
                "core/types.py": "Decision = object\n",
            },
        )
        assert findings == []


def test_every_project_rule_has_registry_entry():
    registry = registered_project_rules()
    assert sorted(registry) == [
        "RL101",
        "RL102",
        "RL103",
        "RL104",
        "RL105",
        "RL106",
    ]
    for rule_id, cls in registry.items():
        assert cls.rule_id == rule_id
        assert cls.summary


@pytest.mark.parametrize("package", sorted(ALLOWED_IMPORTS))
def test_layer_map_targets_exist(package):
    for dep in ALLOWED_IMPORTS[package]:
        assert dep in ALLOWED_IMPORTS, f"{package} allows unknown layer {dep}"
