"""The shipped tree must satisfy its own invariants: linting ``src/repro``
produces zero findings (suppressions with stated justifications aside),
per-file and whole-program alike -- the self-linting pipeline CI runs."""

from pathlib import Path

import repro
from repro.lint import (
    LintEngine,
    lint_project,
    registered_flow_rules,
    registered_project_rules,
    registered_rules,
    registered_tensor_rules,
)

SRC_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_lints_clean():
    engine = LintEngine()
    findings = engine.lint_paths([str(SRC_ROOT)])
    assert findings == [], "\n".join(f.format() for f in findings)
    # Guard against accidental mass-suppression: the three documented
    # disables (SystemRandom seeding, per-site and per-client streams)
    # should be roughly all there is.
    assert engine.suppressed_count <= 6
    assert engine.files_checked > 50


def test_tests_and_benchmarks_lint_clean():
    # Same bar for the test and benchmark trees; their exact-equality
    # asserts carry file-level RL003 disables with stated justification.
    engine = LintEngine()
    findings = engine.lint_paths(
        [str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")]
    )
    assert findings == [], "\n".join(f.format() for f in findings)
    assert engine.files_checked > 30


def test_project_rules_lint_clean():
    # The whole-program pass (RL101-RL106) over the real package: the
    # layering DAG holds, the import graph is acyclic, pool workers are
    # picklable, and no RNG provenance leaks -- without a baseline.
    report = lint_project(
        [str(SRC_ROOT), str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")],
        rule_ids=[],
        project_rule_ids=sorted(registered_project_rules()),
        jobs=1,
    )
    assert report.analyzed_project
    assert report.findings == [], "\n".join(f.format() for f in report.findings)


def test_flow_rules_lint_clean():
    # The flow-sensitive pass (RL201-RL205) over the real tree: no
    # stream is shared across replicates, reused after hand-off, or
    # unseeded in decision code, and no float reduction sees a
    # provably-unordered operand.  The acceptance bar for --flows.
    report = lint_project(
        [str(SRC_ROOT), str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")],
        rule_ids=[],
        project_rule_ids=[],
        flow_rule_ids=sorted(registered_flow_rules()),
        jobs=1,
    )
    assert report.analyzed_project
    assert report.findings == [], "\n".join(f.format() for f in report.findings)


def test_tensor_rules_lint_clean():
    # The tensor pass (RL301-RL305) over the real tree: no provably
    # incompatible broadcasts, no silent dtype drift on the columnar
    # columns, no mutation through fingerprinted aliases, no unstable
    # sorts in decision paths, and every ColumnarUnsupported guard is
    # live and reached.  The acceptance bar for --tensors.
    report = lint_project(
        [str(SRC_ROOT), str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")],
        rule_ids=[],
        project_rule_ids=[],
        tensor_rule_ids=sorted(registered_tensor_rules()),
        jobs=1,
    )
    assert report.analyzed_project
    assert report.findings == [], "\n".join(f.format() for f in report.findings)


def test_full_project_mode_matches_serial_composition():
    # --project = per-file rules + project rules; the combined run over
    # src/repro must stay clean and count every module.
    report = lint_project(
        [str(SRC_ROOT)],
        rule_ids=sorted(registered_rules()),
        project_rule_ids=sorted(registered_project_rules()),
        jobs=1,
    )
    assert report.findings == [], "\n".join(f.format() for f in report.findings)
    assert report.files_checked > 50
