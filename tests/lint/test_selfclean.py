"""The shipped tree must satisfy its own invariants: linting ``src/repro``
produces zero findings (suppressions with stated justifications aside)."""

from pathlib import Path

import repro
from repro.lint import LintEngine

SRC_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_lints_clean():
    engine = LintEngine()
    findings = engine.lint_paths([str(SRC_ROOT)])
    assert findings == [], "\n".join(f.format() for f in findings)
    # Guard against accidental mass-suppression: the three documented
    # disables (SystemRandom seeding, per-site and per-client streams)
    # should be roughly all there is.
    assert engine.suppressed_count <= 6
    assert engine.files_checked > 50


def test_tests_and_benchmarks_lint_clean():
    # Same bar for the test and benchmark trees; their exact-equality
    # asserts carry file-level RL003 disables with stated justification.
    engine = LintEngine()
    findings = engine.lint_paths(
        [str(REPO_ROOT / "tests"), str(REPO_ROOT / "benchmarks")]
    )
    assert findings == [], "\n".join(f.format() for f in findings)
    assert engine.files_checked > 30
