# reprolint: disable-file=RL003 -- byte-exact golden comparisons are the point
"""Golden same-seed trace fingerprints: the optimization contract.

These sha256 digests were captured from the pre-optimization engine (the
PR-3 seed) and must never change: the hot-path optimizations -- tuple
heap keys, ``__slots__`` events, queue compaction, memoized confidence
kernels, decision tables, hoisted lookups -- are all required to be
*order-preserving*.  Any change to RNG draw order, event ordering, or
vote accounting shows up here as a digest mismatch.

If one of these ever fails, the change under test altered simulation
*behaviour*, not just speed; fix the change, do not refresh the digests.
(Deliberate semantic changes to the DCA model would need new goldens --
and a very good reason.)
"""

import hashlib

import pytest

from repro.core import (
    IterativeRedundancy,
    ProgressiveRedundancy,
    TraditionalRedundancy,
)
from repro.dca import DcaConfig
from repro.lint.sanitizer import dca_runner, trace_fingerprint
from repro.parallel import combined_fingerprint, dca_replicate_specs, run_dca_replicates

#: (strategy factory, DcaConfig kwargs, pre-optimization sha256).
GOLDENS = [
    (
        "iterative_d3",
        lambda: IterativeRedundancy(3),
        dict(tasks=60, nodes=25, reliability=0.7, seed=1234),
        "ed98c36d14c2ca0560fd760e9298d78fac3364cc6b48ba30cac21444e7991c6e",
    ),
    (
        "progressive_k7",
        lambda: ProgressiveRedundancy(7),
        dict(tasks=60, nodes=25, reliability=0.7, seed=1234),
        "0d7ed8e8ebc0983fbb1669474c0fce9efc892162943c8933f3dc548efbf935a6",
    ),
    (
        "traditional_k5",
        lambda: TraditionalRedundancy(5),
        dict(tasks=60, nodes=25, reliability=0.7, seed=1234),
        "35b127eeeaa038f783440ea407385028a6ca47f5f53b396119d3c39e8047eef8",
    ),
    (
        # Churn + silent nodes: exercises cancellation, compaction, and
        # the deadline path, where lazily-deleted events actually pile up.
        "iterative_d2_churn",
        lambda: IterativeRedundancy(2),
        dict(
            tasks=40,
            nodes=15,
            reliability=0.65,
            seed=99,
            arrival_rate=0.5,
            departure_rate=0.5,
            unresponsive_prob=0.1,
        ),
        "e25de6eedcecb605fa4afa1c13a00691050366d436fead2e3b70fe7da6d12b34",
    ),
]


def _trace_digest(factory, config_kwargs) -> str:
    events, _metrics = dca_runner(DcaConfig(strategy=factory(), **config_kwargs))()
    return hashlib.sha256(trace_fingerprint(events).encode()).hexdigest()


@pytest.mark.parametrize(
    "name,factory,config_kwargs,expected",
    GOLDENS,
    ids=[g[0] for g in GOLDENS],
)
def test_trace_fingerprint_matches_pre_optimization_golden(
    name, factory, config_kwargs, expected
):
    assert _trace_digest(factory, config_kwargs) == expected, (
        f"{name}: same-seed trace diverged from the pre-optimization "
        "engine -- an optimization changed simulation behaviour"
    )


def test_goldens_are_deterministic():
    """The digest itself is reproducible back to back in one process."""
    name, factory, config_kwargs, expected = GOLDENS[0]
    del name
    assert _trace_digest(factory, config_kwargs) == expected
    assert _trace_digest(factory, config_kwargs) == expected


def test_parallel_replication_still_matches_serial():
    """``jobs=4 == jobs=1`` survives the hot-path rewrite end to end."""
    params = dict(tasks=60, nodes=25, reliability=0.7, replications=3, seed=1234)
    serial = run_dca_replicates(
        dca_replicate_specs(lambda: IterativeRedundancy(3), **params), jobs=1
    )
    fanned = run_dca_replicates(
        dca_replicate_specs(lambda: IterativeRedundancy(3), **params), jobs=4
    )
    assert combined_fingerprint(serial) == combined_fingerprint(fanned)
