"""The resource broker: where grid jobs go decides what votes are worth.

Routing policies:

* ``random``      -- uniform over online sites (the DCA assumption),
* ``least_loaded``-- minimise queueing (what real brokers do),
* ``round_robin`` -- deterministic spreading.

Independently of the policy, *anti-affinity* refuses to place two jobs of
the same task on one site.  With site-level correlated faults, replicas
sharing a site share fate, so a vote among them is partially fictitious;
anti-affinity restores the independence the redundancy analysis assumes.
The grid ablation quantifies the difference.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.grid.site import GridSite, _QueuedJob

POLICIES = ("random", "least_loaded", "round_robin")


class ResourceBroker:
    """Routes jobs to grid sites.

    Args:
        sites: The grid's sites.
        rng: Randomness for the random policy and tie-breaks.
        policy: One of :data:`POLICIES`.
        anti_affinity: Never co-locate two jobs of one task on a site
            (falls back to the least-used site when every site already
            hosts the task -- counted in :attr:`affinity_violations`).
    """

    def __init__(
        self,
        sites: Sequence[GridSite],
        rng: random.Random,
        *,
        policy: str = "random",
        anti_affinity: bool = False,
    ) -> None:
        if not sites:
            raise ValueError("broker needs at least one site")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick from {POLICIES}")
        self.sites = list(sites)
        self.rng = rng
        self.policy = policy
        self.anti_affinity = anti_affinity
        self._task_sites: Dict[int, Set[int]] = {}
        self._round_robin = itertools.cycle(range(len(self.sites)))
        self.jobs_routed = 0
        self.affinity_violations = 0

    # ------------------------------------------------------------------

    def route(self, job: _QueuedJob) -> GridSite:
        """Pick a site for the job and submit it there."""
        candidates = [site for site in self.sites if site.online]
        if not candidates:
            candidates = list(self.sites)  # all in maintenance: queue anyway
        used = self._task_sites.setdefault(job.task_id, set())
        if self.anti_affinity:
            fresh = [site for site in candidates if site.site_id not in used]
            if fresh:
                candidates = fresh
            else:
                self.affinity_violations += 1
        site = self._pick(candidates)
        used.add(site.site_id)
        self.jobs_routed += 1
        site.submit(job)
        return site

    def forget_task(self, task_id: int) -> None:
        """Drop affinity bookkeeping for a finished task."""
        self._task_sites.pop(task_id, None)

    # ------------------------------------------------------------------

    def _pick(self, candidates: List[GridSite]) -> GridSite:
        if self.policy == "random":
            return self.rng.choice(candidates)
        if self.policy == "least_loaded":
            lowest = min(site.load for site in candidates)
            tied = [site for site in candidates if site.load == lowest]
            return self.rng.choice(tied)
        # round_robin: next online site in the fixed cycle.
        for _ in range(len(self.sites)):
            index = next(self._round_robin)
            site = self.sites[index]
            if site in candidates:
                return site
        return candidates[0]  # pragma: no cover - candidates never empty
