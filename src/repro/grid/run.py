"""Running a redundant computation across grid sites."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.strategy import RedundancyStrategy
from repro.core.types import Decision, JobOutcome, VoteState
from repro.dca.report import DcaReport, TaskRecord
from repro.grid.broker import ResourceBroker
from repro.grid.site import GridSite, MaintenanceWindow, _QueuedJob
from repro.sim.engine import Simulator, StopSimulation


@dataclass
class GridConfig:
    """One grid run.

    Attributes:
        strategy: Redundancy strategy for the tasks.
        tasks: Number of independent binary tasks.
        sites: Number of grid sites.
        slots_per_site: Parallel capacity per site.
        site_fault_prob: Per-(site, task) correlated poisoning probability.
        job_fault_prob: Residual independent per-job fault rate.
        policy: Broker routing policy.
        anti_affinity: Spread each task's replicas across sites.
        maintenance: Optional per-site maintenance windows, keyed by site.
        seed: Root seed.
    """

    strategy: RedundancyStrategy
    tasks: int = 1_000
    sites: int = 8
    slots_per_site: int = 16
    site_fault_prob: float = 0.1
    job_fault_prob: float = 0.1
    policy: str = "random"
    anti_affinity: bool = False
    maintenance: Dict[int, Tuple[MaintenanceWindow, ...]] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ValueError(f"need at least one task, got {self.tasks}")
        if self.sites < 1:
            raise ValueError(f"need at least one site, got {self.sites}")

    def expected_job_reliability(self) -> float:
        """Marginal per-job reliability (site poisoning folded in)."""
        return (1.0 - self.site_fault_prob) * (1.0 - self.job_fault_prob)


@dataclass
class _GridTaskState:
    task_id: int
    vote: VoteState = field(default_factory=VoteState)
    jobs_used: int = 0
    waves: int = 1
    first_dispatch: Optional[float] = None
    done: bool = False


def run_grid(config: GridConfig) -> DcaReport:
    """Execute the computation on the grid; returns the usual measures."""
    sim = Simulator(seed=config.seed)
    sites = [
        GridSite(
            sim,
            site_id,
            slots=config.slots_per_site,
            site_fault_prob=config.site_fault_prob,
            job_fault_prob=config.job_fault_prob,
            maintenance=config.maintenance.get(site_id, ()),
        )
        for site_id in range(config.sites)
    ]
    broker = ResourceBroker(
        sites,
        sim.rng.stream("broker"),
        policy=config.policy,
        anti_affinity=config.anti_affinity,
    )
    strategy = config.strategy
    states = {task_id: _GridTaskState(task_id) for task_id in range(config.tasks)}
    records: List[TaskRecord] = []
    remaining = config.tasks
    job_counter = 0

    def dispatch(state: _GridTaskState, count: int) -> None:
        nonlocal job_counter
        state.vote.dispatched(count)
        if state.first_dispatch is None:
            state.first_dispatch = sim.now
        for _ in range(count):
            job = _QueuedJob(
                job_id=job_counter,
                task_id=state.task_id,
                true_value=True,
                wrong_value=False,
                on_result=lambda job_id, value, s=state: on_result(s, value),
            )
            job_counter += 1
            broker.route(job)

    def on_result(state: _GridTaskState, value) -> None:
        nonlocal remaining
        if state.done:
            return
        state.vote.record(JobOutcome(value=value))
        state.jobs_used += 1
        if state.vote.outstanding > 0:
            return
        decision = strategy.decide(state.vote)
        if not decision.done:
            state.waves += 1
            dispatch(state, decision.more_jobs)
            return
        state.done = True
        broker.forget_task(state.task_id)
        now = sim.now
        records.append(
            TaskRecord(
                task_id=state.task_id,
                value=decision.accepted,
                correct=decision.accepted is True,
                jobs_used=state.jobs_used,
                waves=state.waves,
                response_time=now - (state.first_dispatch or now),
                turnaround=now,
            )
        )
        remaining -= 1
        if remaining == 0:
            raise StopSimulation

    for state in states.values():
        dispatch(state, strategy.initial_jobs())
    sim.run()

    return DcaReport(
        strategy=strategy.describe(),
        tasks_submitted=config.tasks,
        records=records,
        makespan=sim.now,
        total_jobs_dispatched=broker.jobs_routed,
        seed=config.seed,
    )
