"""Grid sites: bounded clusters with batch queues and shared fate.

A site executes jobs on a fixed number of slots; excess jobs wait in its
FIFO batch queue.  Failures have two layers:

* a *site-level* fault mode: for each task, the whole site is either
  poisoned (all its jobs for that task return the colluding wrong value)
  or clean -- drawn once per (site, task), which is what makes same-site
  replicas correlated;
* a *node-level* residual: even on a clean site each job independently
  fails with the site's per-job fault rate.

Maintenance windows take the whole site offline: queued and running jobs
are frozen until the window ends (their deadlines, managed by the caller,
may expire meanwhile).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class MaintenanceWindow:
    """A scheduled full-site outage [start, start + duration)."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("maintenance window needs start >= 0 and duration > 0")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class _QueuedJob:
    job_id: int
    task_id: int
    true_value: object
    wrong_value: object
    on_result: Callable[[int, object], None]


class GridSite:
    """One cluster in the grid.

    Args:
        sim: The simulator.
        site_id: Identity.
        slots: Parallel job capacity.
        site_fault_prob: Per-task probability the whole site is poisoned
            for that task (the correlated fault mode).
        job_fault_prob: Residual independent per-job fault probability on
            a clean site.
        duration_low / duration_high: Uniform job service times.
        maintenance: Scheduled outages.
    """

    def __init__(
        self,
        sim: Simulator,
        site_id: int,
        *,
        slots: int = 16,
        site_fault_prob: float = 0.0,
        job_fault_prob: float = 0.1,
        duration_low: float = 0.5,
        duration_high: float = 1.5,
        maintenance: Tuple[MaintenanceWindow, ...] = (),
    ) -> None:
        if slots < 1:
            raise ValueError(f"site needs at least one slot, got {slots}")
        for name, p in (("site_fault_prob", site_fault_prob), ("job_fault_prob", job_fault_prob)):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must lie in [0, 1), got {p}")
        if not 0.0 < duration_low <= duration_high:
            raise ValueError("need 0 < duration_low <= duration_high")
        self.sim = sim
        self.site_id = site_id
        self.slots = slots
        self.site_fault_prob = site_fault_prob
        self.job_fault_prob = job_fault_prob
        self.duration_low = duration_low
        self.duration_high = duration_high
        self.maintenance = tuple(sorted(maintenance, key=lambda w: w.start))
        # Per-site streams keyed by the deterministic site id: the name
        # set is fixed by the config, so auditability survives.
        self._rng = sim.rng.stream(f"site-{site_id}")  # reprolint: disable=RL005
        self._queue: Deque[_QueuedJob] = deque()
        self._running = 0
        self._poisoned: Dict[int, bool] = {}
        self.jobs_completed = 0
        self.jobs_queued_total = 0
        self._offline = False
        for window in self.maintenance:
            sim.schedule(window.start, lambda ev, w=window: self._enter_maintenance(w))

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def online(self) -> bool:
        return not self._offline

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def load(self) -> int:
        """Running plus queued jobs (the broker's least-loaded metric)."""
        return self._running + len(self._queue)

    # ------------------------------------------------------------------
    # Submission and execution
    # ------------------------------------------------------------------

    def submit(self, job: _QueuedJob) -> None:
        """Enqueue a job; it starts when a slot frees and the site is up."""
        self.jobs_queued_total += 1
        self._queue.append(job)
        self._try_start()

    def _try_start(self) -> None:
        while self.online and self._running < self.slots and self._queue:
            job = self._queue.popleft()
            self._running += 1
            duration = self._rng.uniform(self.duration_low, self.duration_high)
            self.sim.schedule_after(duration, lambda ev, j=job: self._finish(j))

    def _finish(self, job: _QueuedJob) -> None:
        self._running -= 1
        self.jobs_completed += 1
        value = self._job_value(job)
        job.on_result(job.job_id, value)
        self._try_start()

    def _job_value(self, job: _QueuedJob):
        if self._task_poisoned(job.task_id):
            return job.wrong_value
        if self._rng.random() < self.job_fault_prob:
            return job.wrong_value
        return job.true_value

    def _task_poisoned(self, task_id: int) -> bool:
        poisoned = self._poisoned.get(task_id)
        if poisoned is None:
            poisoned = self._rng.random() < self.site_fault_prob
            self._poisoned[task_id] = poisoned
        return poisoned

    def effective_job_reliability(self) -> float:
        """P(one job correct) marginalised over the site fault mode."""
        clean = 1.0 - self.site_fault_prob
        return clean * (1.0 - self.job_fault_prob)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _enter_maintenance(self, window: MaintenanceWindow) -> None:
        self._offline = True
        self.sim.schedule(window.end, lambda ev: self._exit_maintenance())

    def _exit_maintenance(self) -> None:
        self._offline = False
        self._try_start()
