"""A grid-computing substrate (the paper's third DCA class).

The paper's opening lists grid systems (e.g., Globus) alongside
volunteer computing and MapReduce as distributed computation
architectures that need redundancy.  Grids differ from volunteer pools in
structure: compute *sites* (clusters) with bounded slot counts and batch
queues, a resource *broker* that routes jobs to sites, and failure modes
that correlate *within* a site (a misconfigured node image, a flaky
shared filesystem, a maintenance window takes out the whole cluster).

That correlation is exactly the Section 5.3 relaxation: replicas of one
task placed on the same site do not fail independently, so a vote among
them is worth less than it looks.  The substrate makes the interplay
measurable:

* :class:`~repro.grid.site.GridSite` -- slots, a FIFO batch queue, site
  reliability, and scheduled maintenance windows;
* :class:`~repro.grid.broker.ResourceBroker` -- routing policies
  (random, least-loaded, round-robin) with optional *anti-affinity*:
  never place two jobs of the same task on one site;
* :func:`~repro.grid.run.run_grid` -- execute a redundant computation
  across sites and report the usual Section 4.1 measures.
"""

from repro.grid.site import GridSite, MaintenanceWindow
from repro.grid.broker import ResourceBroker
from repro.grid.run import GridConfig, run_grid

__all__ = [
    "GridConfig",
    "GridSite",
    "MaintenanceWindow",
    "ResourceBroker",
    "run_grid",
]
