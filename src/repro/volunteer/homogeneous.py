"""Homogeneous redundancy: comparing numerically fuzzy results.

Section 5.3: "two non-identical results may actually represent the same
information (e.g., evaluations of sqrt(2) may return slight differences in
the least significant bits) ... BOINC uses homogeneous redundancy, an
approach that sorts nodes into equivalence classes that report identical
answers."

Two mechanisms are provided:

* :func:`platform_value` -- the *problem*: perturbs a numeric result with
  a deterministic, platform-specific epsilon, so two honest nodes on
  different platforms disagree bitwise;
* :class:`FuzzyMatcher` -- the *fix* on the comparison side: canonicalise
  values into tolerance buckets before voting, so numerically equal
  results count as the same vote.

The ablation experiment (``repro.experiments.ablations``) shows exact
comparison across platforms destroying the vote, and either fix (fuzzy
matching, or scheduling each task within one platform class) restoring it.
"""

from __future__ import annotations

import math
from typing import Hashable, Union

from repro.core.types import ResultValue
from repro.volunteer.client import VolunteerNodeProfile

#: Scale of the platform-specific numeric noise.
PLATFORM_EPSILON = 1e-9


def platform_value(value: ResultValue, profile: VolunteerNodeProfile) -> ResultValue:
    """Inject platform-dependent least-significant-bit noise.

    Only floats are perturbed; discrete results (the binary model) pass
    through untouched.  The perturbation is a deterministic function of
    the platform, so all nodes of one platform still agree bitwise --
    exactly the structure homogeneous redundancy exploits.
    """
    if isinstance(value, float):
        return value + (profile.platform + 1) * PLATFORM_EPSILON * (1.0 + abs(value))
    return value


class FuzzyMatcher:
    """Canonicalises numeric results into tolerance buckets.

    Values within ``tolerance`` of each other land in the same bucket
    (up to bucket-boundary effects, which a tolerance well above the
    platform epsilon makes negligible).  Non-floats pass through.

    Use as the server's ``value_matcher``::

        server = VolunteerServer(sim, strategy, value_matcher=FuzzyMatcher(1e-6))
    """

    def __init__(self, tolerance: float) -> None:
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.tolerance = tolerance

    def __call__(self, value: ResultValue) -> ResultValue:
        if isinstance(value, float):
            if math.isnan(value):
                return ("nan",)
            return round(value / self.tolerance)
        return value


def same_platform_only(profile_a: VolunteerNodeProfile, profile_b: VolunteerNodeProfile) -> bool:
    """Scheduling-side homogeneous redundancy: replicas of one task may be
    compared only when they ran on the same platform class."""
    return profile_a.platform == profile_b.platform
