"""Volunteer clients: poll, compute, report (or silently vanish).

Each client is a generator process.  Its failure behaviour mirrors the
three failure classes of the paper's BOINC experiment (Section 4.1):

1. *seeded* failures -- with probability ``seeded_fault_prob`` (0.3 in the
   paper) the client reports the colluding wrong result;
2. *unresponsiveness* -- with probability ``unresponsive_prob`` the client
   never reports, and the server's deadline expires;
3. *natural* failures -- with probability ``natural_fault_prob`` the
   client reports the wrong result for environmental reasons the
   experimenter did not seed (the paper could not know these rates on
   PlanetLab; here they are drawn per node by the testbed generator and
   deliberately not exposed to the algorithms).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.types import ResultValue
from repro.sim.engine import Simulator
from repro.sim.processes import Process, Timeout
from repro.volunteer.server import JobAssignment, VolunteerServer


@dataclass(frozen=True)
class VolunteerNodeProfile:
    """Static description of one volunteer machine.

    Attributes:
        node_id: Identity the scheduler sees.
        speed_factor: Job-duration multiplier (heterogeneous machines).
        seeded_fault_prob: Experimenter-seeded wrong-result probability.
        natural_fault_prob: Environment-caused wrong-result probability.
        unresponsive_prob: Probability of never reporting a job.
        poll_interval: Mean delay between scheduler polls when idle.
        platform: Equivalence-class label for homogeneous redundancy
            (Section 5.3); nodes of different platforms may legitimately
            produce bitwise-different numeric results.
        mean_online / mean_offline: Availability cycling -- volunteers
            come and go (the machine is in use, asleep, or disconnected).
            When ``mean_offline`` is positive the client alternates
            exponentially distributed online/offline periods; a job in
            flight when the machine goes offline is finished only after
            it returns (often blowing the server's deadline), just like
            real BOINC hosts.  ``mean_offline = 0`` means always online.
    """

    node_id: int
    speed_factor: float = 1.0
    seeded_fault_prob: float = 0.0
    natural_fault_prob: float = 0.0
    unresponsive_prob: float = 0.0
    poll_interval: float = 0.2
    platform: int = 0
    mean_online: float = 0.0
    mean_offline: float = 0.0

    def __post_init__(self) -> None:
        for name in ("seeded_fault_prob", "natural_fault_prob", "unresponsive_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.speed_factor <= 0:
            raise ValueError(f"speed factor must be positive, got {self.speed_factor}")
        if self.poll_interval <= 0:
            raise ValueError(f"poll interval must be positive, got {self.poll_interval}")
        if self.mean_online < 0 or self.mean_offline < 0:
            raise ValueError("availability means must be non-negative")
        if self.mean_offline > 0 and self.mean_online <= 0:
            raise ValueError("cycling availability needs a positive mean_online")

    @property
    def cycles_availability(self) -> bool:
        return self.mean_offline > 0.0

    @property
    def availability(self) -> float:
        """Long-run fraction of time the machine is online."""
        if not self.cycles_availability:
            return 1.0
        return self.mean_online / (self.mean_online + self.mean_offline)

    @property
    def effective_reliability(self) -> float:
        """P(correct | reported): what the paper calls the node's r
        contribution.  Unknown to the algorithms; used only for scoring
        and the Figure 5(b) r-estimation cross-check."""
        return (1.0 - self.seeded_fault_prob) * (1.0 - self.natural_fault_prob)


class VolunteerClient:
    """Drives one volunteer's poll/compute/report loop.

    Args:
        sim: The simulator.
        server: The work-unit server to poll.
        profile: This volunteer's machine profile.
        rng: Private randomness (derive from the sim registry).
        compute: Optional real computation: called with the work unit's
            payload and must return the result value.  When ``None`` the
            client "computes" by reporting the unit's ground truth (the
            simulated-work mode the paper's XDEVS jobs use).
        value_transform: Optional post-processing of the computed value
            (used to inject platform-specific numeric noise for the
            homogeneous-redundancy study).
    """

    def __init__(
        self,
        sim: Simulator,
        server: VolunteerServer,
        profile: VolunteerNodeProfile,
        rng: random.Random,
        *,
        compute: Optional[Callable[[object], ResultValue]] = None,
        value_transform: Optional[Callable[[ResultValue, "VolunteerNodeProfile"], ResultValue]] = None,
    ) -> None:
        self.sim = sim
        self.server = server
        self.profile = profile
        self.rng = rng
        self.compute = compute
        self.value_transform = value_transform
        self.jobs_reported = 0
        self.jobs_dropped = 0
        self.offline_periods = 0
        self._online_until = (
            sim.now + rng.expovariate(1.0 / profile.mean_online)
            if profile.cycles_availability
            else float("inf")
        )
        self.process = Process(sim, self._loop(), name=f"client-{profile.node_id}")

    def stop(self) -> None:
        self.process.interrupt()

    # ------------------------------------------------------------------

    def _result_for(self, assignment: JobAssignment) -> ResultValue:
        unit = assignment.unit
        if self.compute is not None:
            value = self.compute(unit.payload)
        else:
            value = unit.true_value
        # Seeded and natural faults flip the result to the colluding wrong
        # value (worst case, Section 2.2).
        if self.rng.random() < self.profile.seeded_fault_prob:
            value = unit.wrong_value
        elif self.rng.random() < self.profile.natural_fault_prob:
            value = unit.wrong_value
        if self.value_transform is not None:
            value = self.value_transform(value, self.profile)
        return value

    def _offline_gap(self) -> float:
        """Duration of one offline period; refreshes the online window."""
        self.offline_periods += 1
        gap = self.rng.expovariate(1.0 / self.profile.mean_offline)
        self._online_until = (
            self.sim.now + gap + self.rng.expovariate(1.0 / self.profile.mean_online)
        )
        return gap

    def _loop(self):
        profile = self.profile
        while True:
            if profile.cycles_availability and self.sim.now >= self._online_until:
                # The machine left (in use / asleep / disconnected).
                yield Timeout(self._offline_gap())
                continue
            # Idle poll with jitter so clients do not synchronise.
            yield Timeout(self.rng.uniform(0.5, 1.5) * profile.poll_interval)
            if not self.server.has_open_work:
                return
            assignment = self.server.request_work(profile.node_id)
            if assignment is None:
                continue
            duration = (
                self.rng.uniform(0.5, 1.5) * profile.speed_factor
            )
            if self.rng.random() < profile.unresponsive_prob:
                # Vanish for this job: burn the wall-clock but never report.
                self.jobs_dropped += 1
                yield Timeout(duration)
                continue
            if (
                profile.cycles_availability
                and self.sim.now + duration > self._online_until
            ):
                # The machine suspends mid-job and resumes after its
                # offline period (one gap; offline periods dwarf job
                # durations).  Deadlines may well expire meanwhile.
                duration += self._offline_gap()
            yield Timeout(duration)
            value = self._result_for(assignment)
            self.server.report_result(assignment, profile.node_id, value)
            self.jobs_reported += 1
