"""Deployment harness: wire testbed + server + clients and run to verdicts.

Reproduces the paper's BOINC experiment shape: a 3-SAT problem decomposed
into 140 work units, 200 PlanetLab-like volunteers, redundancy strategy
plugged into validation.  Also supports synthetic (non-SAT) work units for
quick parameter sweeps.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.strategy import RedundancyStrategy
from repro.core.types import ResultValue
from repro.dca.report import DcaReport
from repro.sat.decompose import SatTaskSpec, decompose, recombine
from repro.sat.formula import CnfFormula, random_3sat
from repro.sat.solver import check_range_numpy
from repro.sim.engine import Simulator, StopSimulation
from repro.volunteer.client import VolunteerClient, VolunteerNodeProfile
from repro.volunteer.planetlab import PlanetLabTestbed
from repro.volunteer.server import VolunteerServer, WorkUnit


@dataclass
class VolunteerConfig:
    """Parameters of one volunteer deployment.

    Attributes:
        strategy: Redundancy strategy under test.
        testbed: Node-profile generator (defaults to the paper's 200-node
            PlanetLab-like slice).
        seed: Root seed.
        sat_vars / sat_clauses: 3-SAT problem shape (the paper used
            22-variable problems; the clause count is chosen near the
            phase transition when left ``None``).
        tasks: Work units per problem (the paper used 140).
        use_sat: When True, work units are real 3-SAT slices and their
            ground truth is computed with the vectorised checker.  When
            False, units are synthetic binary tasks (fast sweeps).
        really_compute: When True, honest clients actually run the slice
            check instead of reporting stored ground truth.  Slower;
            exercised by an integration test and an example.
        deadline: Server-side report deadline.
        max_time: Safety horizon for the simulation.
    """

    strategy: RedundancyStrategy
    testbed: PlanetLabTestbed = field(default_factory=PlanetLabTestbed)
    seed: int = 0
    sat_vars: int = 22
    sat_clauses: Optional[int] = None
    tasks: int = 140
    use_sat: bool = True
    really_compute: bool = False
    deadline: float = 30.0
    max_time: Optional[float] = None
    value_matcher: Optional[Callable[[ResultValue], ResultValue]] = None

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ValueError(f"need at least one task, got {self.tasks}")
        if self.sat_vars < 3:
            raise ValueError(f"3-SAT needs >= 3 variables, got {self.sat_vars}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    @property
    def effective_sat_clauses(self) -> int:
        if self.sat_clauses is not None:
            return self.sat_clauses
        return max(1, round(4.27 * self.sat_vars))


@dataclass
class VolunteerReport(DcaReport):
    """DCA-style measures plus deployment-level results."""

    problem_answer: Optional[bool] = None
    problem_truth: Optional[bool] = None
    derived_reliability: float = math.nan
    deadline_misses: int = 0
    assignments_issued: int = 0

    @property
    def problem_correct(self) -> Optional[bool]:
        if self.problem_answer is None or self.problem_truth is None:
            return None
        return self.problem_answer == self.problem_truth


def run_volunteer(config: VolunteerConfig) -> VolunteerReport:
    """Execute one volunteer deployment and aggregate the report."""
    sim = Simulator(seed=config.seed)
    testbed_rng = sim.rng.stream("testbed")
    profiles = config.testbed.generate(testbed_rng)

    units, formula, truth = _build_units(config, sim.rng.stream("workload"))

    def all_done() -> None:
        raise StopSimulation

    server = VolunteerServer(
        sim,
        config.strategy,
        deadline=config.deadline,
        value_matcher=config.value_matcher,
        pool_size=len(profiles),
        on_all_done=all_done,
    )
    for unit in units:
        server.submit(unit)

    compute = None
    if config.really_compute and formula is not None:
        compute = lambda payload: check_range_numpy(formula, payload.start, payload.stop)

    clients = [
        VolunteerClient(
            sim,
            server,
            profile,
            # Per-client streams keyed by the deterministic node id from
            # the generated testbed; the name set is fixed by the config.
            sim.rng.stream(f"client-{profile.node_id}"),  # reprolint: disable=RL005
            compute=compute,
        )
        for profile in profiles
    ]
    sim.run(until=config.max_time)

    answer = None
    if config.use_sat and server.remaining_units == 0:
        answer = recombine(server.verdicts())

    report = VolunteerReport(
        strategy=config.strategy.describe(),
        tasks_submitted=config.tasks,
        records=server.records,
        makespan=sim.now,
        total_jobs_dispatched=server.assignments_issued,
        jobs_timed_out=server.deadline_misses,
        seed=config.seed,
        problem_answer=answer,
        problem_truth=truth,
        deadline_misses=server.deadline_misses,
        assignments_issued=server.assignments_issued,
    )
    report.derived_reliability = derive_reliability(report, config.strategy)
    return report


def _build_units(config: VolunteerConfig, rng: random.Random):
    """Create work units (SAT slices or synthetic binary tasks)."""
    if not config.use_sat:
        units = [WorkUnit(unit_id=i) for i in range(config.tasks)]
        return units, None, None
    formula = random_3sat(config.sat_vars, config.effective_sat_clauses, rng)
    specs = decompose(formula, config.tasks)
    units = []
    for spec in specs:
        truth_value = check_range_numpy(formula, spec.start, spec.stop)
        units.append(
            WorkUnit(
                unit_id=spec.task_id,
                payload=spec,
                true_value=truth_value,
                wrong_value=not truth_value,
            )
        )
    problem_truth = any(unit.true_value for unit in units)
    return units, formula, problem_truth


def derive_reliability(report: DcaReport, strategy: RedundancyStrategy) -> float:
    """Estimate the (unknown) node reliability from observed cost, the way
    Section 4.2 derives 0.64 < r < 0.67 from the measurements.

    For iterative redundancy the cost closed form inverts cleanly:
    C = d (2R - 1) / (2r - 1) with R = R_IR(r, d); solve for r by
    bisection.  For progressive redundancy, invert Equation (3)
    numerically.  Traditional redundancy's cost carries no information
    about r (it is always k), so the estimate falls back to inverting the
    observed reliability via Equation (2).
    """
    from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy
    from repro.core import analysis

    if not report.records:
        return math.nan
    # The closed forms count *responses*; jobs burned on deadline misses
    # are pure transport overhead, so exclude them from the cost signal.
    responded = report.total_jobs - report.jobs_timed_out
    cost = responded / len(report.records)
    observed_reliability = report.system_reliability

    def bisect(func, lo: float = 0.501, hi: float = 0.999) -> float:
        f_lo, f_hi = func(lo), func(hi)
        if f_lo * f_hi > 0:
            return math.nan
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            f_mid = func(mid)
            if f_lo * f_mid <= 0:
                hi = mid
            else:
                lo, f_lo = mid, f_mid
        return 0.5 * (lo + hi)

    if isinstance(strategy, IterativeRedundancy):
        d = strategy.d
        return bisect(lambda r: analysis.iterative_cost(r, d) - cost)
    if isinstance(strategy, ProgressiveRedundancy):
        k = strategy.k
        return bisect(lambda r: analysis.progressive_cost(r, k) - cost)
    if isinstance(strategy, TraditionalRedundancy):
        k = strategy.k
        if math.isnan(observed_reliability):
            return math.nan
        return bisect(
            lambda r: analysis.traditional_reliability(r, k) - observed_reliability
        )
    return math.nan
