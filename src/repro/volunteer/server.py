"""The volunteer-computing work-unit server.

Plays the role of the BOINC server complex (scheduler + transitioner +
validator) with the redundancy strategy plugged into the validation step:

* :meth:`VolunteerServer.request_work` is the scheduler RPC: it hands the
  polling node a job for some work unit that (a) still needs results and
  (b) this node has not already served -- BOINC's one-result-per-node
  rule, which enforces the independence that voting requires;
* :meth:`VolunteerServer.report_result` is the upload + validation path:
  outcomes fold into the work unit's vote and the strategy decides whether
  to accept or replicate further (the transitioner's job);
* deadlines: each assignment carries one; a silent job is folded into the
  vote as a no-response (Section 2.2's "failed") and the strategy's next
  decision naturally re-issues work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.core.strategy import NodeAware, RedundancyStrategy
from repro.core.types import Decision, JobOutcome, ResultValue, TaskVerdict, VoteState
from repro.dca.report import TaskRecord
from repro.sim.engine import Simulator
from repro.sim.events import Event


@dataclass
class WorkUnit:
    """Server-side state for one task.

    Attributes:
        unit_id: Task identifier (unique per deployment).
        payload: Opaque description of the work (e.g. a
            :class:`~repro.sat.decompose.SatTaskSpec`), forwarded to
            clients.
        true_value: Ground truth, used by honest clients that do not
            really compute, and by the harness for scoring.
        wrong_value: The colluding wrong value for this unit.
    """

    unit_id: int
    payload: object = None
    true_value: ResultValue = True
    wrong_value: ResultValue = False
    vote: VoteState = field(default_factory=VoteState)
    served_nodes: Set[int] = field(default_factory=set)
    pending: int = 0
    jobs_used: int = 0
    waves: int = 1
    first_dispatch: Optional[float] = None
    created_at: float = 0.0
    done: bool = False


@dataclass
class JobAssignment:
    """What the scheduler RPC returns to a polling client."""

    job_id: int
    unit: WorkUnit
    deadline: float
    deadline_event: Optional[Event] = None
    completed: bool = False


class VolunteerServer:
    """Work distribution and validation for one volunteer deployment.

    Args:
        sim: The simulator (used for the clock and deadline events).
        strategy: Redundancy strategy driving validation.
        deadline: Relative report deadline attached to each assignment.
        value_matcher: Optional canonicaliser for fuzzy results (see
            :mod:`repro.volunteer.homogeneous`); identity by default.
        on_all_done: Called when every submitted unit has a verdict.
    """

    def __init__(
        self,
        sim: Simulator,
        strategy: RedundancyStrategy,
        *,
        deadline: float = 20.0,
        value_matcher: Optional[Callable[[ResultValue], ResultValue]] = None,
        pool_size: Optional[int] = None,
        on_all_done: Optional[Callable[[], None]] = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if pool_size is not None and pool_size < 1:
            raise ValueError(f"pool size must be positive, got {pool_size}")
        self.sim = sim
        self.strategy = strategy
        self.deadline = deadline
        self.value_matcher = value_matcher or (lambda value: value)
        self.pool_size = pool_size
        self.on_all_done = on_all_done
        #: Assignments that had to reuse a node that already voted on the
        #: unit, because the whole pool was exhausted.  Breaks strict vote
        #: independence, so it is counted and surfaced (the paper's model
        #: assumes the pool is far larger than any single vote).
        self.repeat_assignments = 0

        self._node_aware = isinstance(strategy, NodeAware)
        self._units: Dict[int, WorkUnit] = {}
        #: Units with unassigned pending jobs, in dispatch order.
        self._ready: Deque[int] = deque()
        self._next_job_id = 0
        self.records: List[TaskRecord] = []
        self.assignments_issued = 0
        self.results_received = 0
        self.deadline_misses = 0
        self.requests_denied = 0
        self._remaining = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, unit: WorkUnit) -> None:
        """Register a work unit and queue its first wave."""
        if unit.unit_id in self._units:
            raise ValueError(f"work unit {unit.unit_id} already submitted")
        unit.created_at = self.sim.now
        self._units[unit.unit_id] = unit
        self._remaining += 1
        self._add_pending(unit, self.strategy.initial_jobs())

    @property
    def remaining_units(self) -> int:
        return self._remaining

    @property
    def has_open_work(self) -> bool:
        return self._remaining > 0

    def _add_pending(self, unit: WorkUnit, count: int) -> None:
        unit.pending += count
        unit.vote.dispatched(count)
        if unit.unit_id not in self._ready:
            self._ready.append(unit.unit_id)

    # ------------------------------------------------------------------
    # Scheduler RPC
    # ------------------------------------------------------------------

    def request_work(self, node_id: int) -> Optional[JobAssignment]:
        """Hand ``node_id`` a job, or ``None`` if nothing is eligible.

        Scans ready units in FIFO order, skipping units this node already
        served (one result per node per unit).  A unit whose pending count
        drops to zero leaves the ready queue.
        """
        for _ in range(len(self._ready)):
            unit_id = self._ready[0]
            unit = self._units[unit_id]
            if unit.done or unit.pending <= 0:
                self._ready.popleft()
                continue
            if node_id in unit.served_nodes:
                # Normally ineligible -- but if every node in the pool has
                # already voted on this unit, waiting would starve it
                # forever; fall back to a (counted) repeat assignment.
                exhausted = (
                    self.pool_size is not None
                    and len(unit.served_nodes) >= self.pool_size
                )
                if not exhausted:
                    # Rotate: maybe another unit suits this node.
                    self._ready.rotate(-1)
                    continue
                self.repeat_assignments += 1
            unit.pending -= 1
            if unit.pending == 0:
                self._ready.popleft()
            unit.served_nodes.add(node_id)
            if unit.first_dispatch is None:
                unit.first_dispatch = self.sim.now
            assignment = JobAssignment(
                job_id=self._next_job_id,
                unit=unit,
                deadline=self.sim.now + self.deadline,
            )
            self._next_job_id += 1
            self.assignments_issued += 1
            assignment.deadline_event = self.sim.schedule_after(
                self.deadline,
                lambda ev, a=assignment, n=node_id: self._on_deadline(a, n),
            )
            return assignment
        self.requests_denied += 1
        return None

    # ------------------------------------------------------------------
    # Upload + validation
    # ------------------------------------------------------------------

    def report_result(
        self, assignment: JobAssignment, node_id: int, value: ResultValue
    ) -> None:
        """Accept a client's result and run validation."""
        if assignment.completed:
            return  # deadline already voided this job (late result)
        assignment.completed = True
        if assignment.deadline_event is not None:
            self.sim.cancel(assignment.deadline_event)
        self.results_received += 1
        canonical = self.value_matcher(value)
        self._record(assignment.unit, JobOutcome(value=canonical, node_id=node_id))

    def _on_deadline(self, assignment: JobAssignment, node_id: int) -> None:
        if assignment.completed:
            return
        assignment.completed = True
        self.deadline_misses += 1
        unit = assignment.unit
        # The node failed silently and contributed no vote, so its slot on
        # this unit is released: the one-result-per-node rule protects vote
        # independence, and a silent job cast no vote.  (This also prevents
        # small pools from starving a unit of eligible nodes.)
        unit.served_nodes.discard(node_id)
        self._record(unit, JobOutcome(value=None, node_id=node_id))

    def _record(self, unit: WorkUnit, outcome: JobOutcome) -> None:
        if unit.done:
            return
        unit.vote.record(outcome)
        unit.jobs_used += 1
        if self._node_aware:
            self.strategy.record_outcome(unit.unit_id, outcome)
        if unit.vote.outstanding == 0:
            self._transition(unit)

    def _transition(self, unit: WorkUnit) -> None:
        """BOINC's transitioner step: ask the strategy what the unit needs."""
        decision = self.strategy.decide(unit.vote)
        if not decision.done:
            unit.waves += 1
            self._add_pending(unit, decision.more_jobs)
            return
        unit.done = True
        now = self.sim.now
        first = unit.first_dispatch if unit.first_dispatch is not None else now
        self.records.append(
            TaskRecord(
                task_id=unit.unit_id,
                value=decision.accepted,
                correct=decision.accepted == unit.true_value,
                jobs_used=unit.jobs_used,
                waves=unit.waves,
                response_time=now - first,
                turnaround=now - unit.created_at,
            )
        )
        if self._node_aware:
            self.strategy.task_finished(
                unit.unit_id,
                TaskVerdict(
                    value=decision.accepted,
                    correct=None,
                    jobs_used=unit.jobs_used,
                    waves=unit.waves,
                ),
            )
        self._remaining -= 1
        if self._remaining == 0 and self.on_all_done is not None:
            self.on_all_done()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def verdicts(self) -> Dict[int, ResultValue]:
        """Accepted value per finished unit (for recombination)."""
        return {record.task_id: record.value for record in self.records}
