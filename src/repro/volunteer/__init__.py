"""A BOINC-like volunteer-computing substrate (the deployment platform).

The paper's second evaluation ran BOINC on a 200-node PlanetLab slice,
solving 22-variable 3-SAT problems decomposed into 140 tasks, with the
job-assignment and result-validation procedures modified to employ the
three redundancy techniques.  Neither BOINC-on-PlanetLab nor PlanetLab
itself is reproducible on a laptop, so this package builds the same
architecture synthetically (see DESIGN.md, substitution table):

* **pull model** -- clients poll the server for work
  (:class:`~repro.volunteer.client.VolunteerClient`), unlike the push
  model of :mod:`repro.dca`;
* **work-unit server** with BOINC's one-result-per-node rule and
  deadline-driven re-issue (:class:`~repro.volunteer.server.VolunteerServer`);
* **strategy-driven validation**: the same
  :class:`~repro.core.strategy.RedundancyStrategy` objects decide
  replication, exactly where BOINC's validator/transitioner would;
* **PlanetLab-like testbed** (:mod:`~repro.volunteer.planetlab`):
  heterogeneous speeds, seeded 30% faults, plus *natural* fault and
  unresponsiveness processes that push the effective node reliability
  into the paper's observed 0.64-0.67 band without the algorithms knowing
  it;
* **homogeneous redundancy** (:mod:`~repro.volunteer.homogeneous`) for
  numerically fuzzy, platform-dependent results (Section 5.3).
"""

from repro.volunteer.client import VolunteerClient, VolunteerNodeProfile
from repro.volunteer.deployment import VolunteerConfig, VolunteerReport, run_volunteer
from repro.volunteer.homogeneous import FuzzyMatcher, platform_value
from repro.volunteer.planetlab import PlanetLabTestbed
from repro.volunteer.server import JobAssignment, VolunteerServer, WorkUnit

__all__ = [
    "FuzzyMatcher",
    "JobAssignment",
    "PlanetLabTestbed",
    "VolunteerClient",
    "VolunteerConfig",
    "VolunteerNodeProfile",
    "VolunteerReport",
    "VolunteerServer",
    "WorkUnit",
    "platform_value",
    "run_volunteer",
]
