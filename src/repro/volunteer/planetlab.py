"""A synthetic PlanetLab-like testbed.

PlanetLab machines vary widely in speed and flakiness, and the paper's
deployment deliberately did not know the resulting node reliability: it
seeded 30% faults and then *derived* from the measurements that the
overall reliability sat in 0.64 < r < 0.67, the gap being natural
PlanetLab failures.  The generator reproduces that situation:

* speeds are log-normal (a few very slow machines, like real slices),
* every node gets the seeded fault probability (0.3 by default),
* each node draws a private *natural* fault probability and an
  unresponsiveness probability from modest ranges, so the effective
  reliability lands below the seeded 0.7 by an amount the algorithms are
  never told.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.volunteer.client import VolunteerNodeProfile


@dataclass(frozen=True)
class PlanetLabTestbed:
    """Generator of PlanetLab-like volunteer node profiles.

    Attributes:
        nodes: Slice size (the paper used 200).
        seeded_fault_prob: Experimenter-controlled wrong-result rate.
        natural_fault_max: Each node's natural fault probability is drawn
            uniformly from [0, natural_fault_max]; the default 0.1 yields
            a mean natural rate of 0.05 and an effective pool reliability
            of about 0.7 * 0.95 = 0.665, inside the paper's derived band.
        unresponsive_max: Per-node silent probability drawn from
            [0, unresponsive_max].
        speed_sigma: Sigma of the log-normal speed factor.
        platforms: Number of hardware/OS equivalence classes.
    """

    nodes: int = 200
    seeded_fault_prob: float = 0.3
    natural_fault_max: float = 0.1
    unresponsive_max: float = 0.06
    speed_sigma: float = 0.35
    platforms: int = 4

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"need at least one node, got {self.nodes}")
        for name in ("seeded_fault_prob", "natural_fault_max", "unresponsive_max"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must lie in [0, 1), got {value}")
        if self.speed_sigma < 0:
            raise ValueError("speed sigma must be non-negative")
        if self.platforms < 1:
            raise ValueError("need at least one platform class")

    def generate(self, rng: random.Random) -> List[VolunteerNodeProfile]:
        """Draw the slice's node profiles."""
        profiles = []
        for node_id in range(self.nodes):
            speed = math.exp(rng.gauss(0.0, self.speed_sigma))
            profiles.append(
                VolunteerNodeProfile(
                    node_id=node_id,
                    speed_factor=speed,
                    seeded_fault_prob=self.seeded_fault_prob,
                    natural_fault_prob=rng.uniform(0.0, self.natural_fault_max),
                    unresponsive_prob=rng.uniform(0.0, self.unresponsive_max),
                    poll_interval=0.2,
                    platform=rng.randrange(self.platforms),
                )
            )
        return profiles

    def expected_reliability(self) -> float:
        """Pool-mean P(correct | reported) implied by the parameters.

        The deployment harness never feeds this to the algorithms; the
        Figure 5(b) experiment instead *derives* r from measurements and
        checks it lands near this value.
        """
        mean_natural = self.natural_fault_max / 2.0
        return (1.0 - self.seeded_fault_prob) * (1.0 - mean_natural)
