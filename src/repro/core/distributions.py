"""Node-reliability distributions for the Section 5.3 relaxations.

The paper's baseline assumption 1 gives every job the same failure
probability because nodes are chosen uniformly at random.  Section 5.3
relaxes this: nodes may have distinct reliabilities (replace ``r`` by the
relevant per-node values).  These distribution objects generate per-node
reliabilities for the DCA and volunteer substrates and expose the pool
mean, which is the effective ``r`` the analysis sees.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Sequence


class ReliabilityDistribution(abc.ABC):
    """Generates per-node reliabilities in [0, 1]."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one node's reliability."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Population mean reliability (the pool-level ``r``)."""

    def sample_pool(self, n: int, rng: random.Random) -> List[float]:
        """Draw reliabilities for a pool of ``n`` nodes."""
        if n < 1:
            raise ValueError(f"pool size must be positive, got {n}")
        return [self.sample(rng) for _ in range(n)]


@dataclass(frozen=True)
class FixedReliability(ReliabilityDistribution):
    """Every node has the same reliability ``r`` (the paper's baseline)."""

    r: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.r <= 1.0:
            raise ValueError(f"reliability must lie in [0, 1], got {self.r}")

    def sample(self, rng: random.Random) -> float:
        return self.r

    def mean(self) -> float:
        return self.r


@dataclass(frozen=True)
class BetaReliability(ReliabilityDistribution):
    """Reliabilities drawn from Beta(alpha, beta) -- heterogeneous pools.

    The mean is alpha / (alpha + beta); pick parameters to match a target
    pool-level ``r`` while varying the spread.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("Beta parameters must be positive")

    @classmethod
    def with_mean(cls, mean: float, concentration: float = 10.0) -> "BetaReliability":
        """Beta distribution with the given mean and total concentration."""
        if not 0.0 < mean < 1.0:
            raise ValueError(f"mean must lie strictly in (0, 1), got {mean}")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        return cls(alpha=mean * concentration, beta=(1.0 - mean) * concentration)

    def sample(self, rng: random.Random) -> float:
        return rng.betavariate(self.alpha, self.beta)

    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)


@dataclass(frozen=True)
class TwoClassReliability(ReliabilityDistribution):
    """A mixture of an honest class and a faulty/malicious class.

    Models the classic volunteer-computing population: a fraction
    ``faulty_fraction`` of nodes with low reliability ``faulty_r`` among
    otherwise good nodes with reliability ``good_r``.
    """

    good_r: float
    faulty_r: float
    faulty_fraction: float

    def __post_init__(self) -> None:
        for name, value in (("good_r", self.good_r), ("faulty_r", self.faulty_r)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if not 0.0 <= self.faulty_fraction <= 1.0:
            raise ValueError("faulty_fraction must lie in [0, 1]")

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.faulty_fraction:
            return self.faulty_r
        return self.good_r

    def mean(self) -> float:
        return (
            self.faulty_fraction * self.faulty_r
            + (1.0 - self.faulty_fraction) * self.good_r
        )


@dataclass(frozen=True)
class DiscreteReliability(ReliabilityDistribution):
    """An explicit finite mixture of reliability levels."""

    levels: Sequence[float]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.weights) or not self.levels:
            raise ValueError("levels and weights must be equal-length and non-empty")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        for level in self.levels:
            if not 0.0 <= level <= 1.0:
                raise ValueError(f"reliability level {level} outside [0, 1]")

    def sample(self, rng: random.Random) -> float:
        return rng.choices(list(self.levels), weights=list(self.weights), k=1)[0]

    def mean(self) -> float:
        total = sum(self.weights)
        return sum(l * w for l, w in zip(self.levels, self.weights)) / total
