"""Closed-form analysis of the three redundancy techniques.

Implements Equations (1) through (6) of the paper, plus independent
dynamic-programming cross-checks, the paper's ``d / (2r - 1)`` cost
approximation, wave-count/response-time models used by Figure 6, and the
equal-reliability cost-comparison machinery behind Figure 5(c).

Notation follows the paper:

* ``r``  -- average probability a single job returns the correct result,
* ``k``  -- vote size for traditional (TR) and progressive (PR) redundancy,
* ``d``  -- required margin for iterative redundancy (IR),
* ``R(r)`` -- system reliability, ``C(r)`` -- cost factor (expected jobs
  per task, relative to a redundancy-free system).

Derivations beyond the paper's text, used for cross-checks:

* PR's expected cost equals the expected *stopping time* of drawing i.i.d.
  correct/wrong votes until one side holds ``(k+1)/2``; the wave-based
  algorithm dispatches exactly that many jobs because a wave can only
  close the vote if *all* its jobs agree (each wave is exactly the
  leader's deficit).
* IR's margin performs a +-1 random walk (up with probability ``r``)
  absorbed at +-d; the same all-or-nothing wave argument applies, so the
  expected cost is the classical gambler's-ruin expected duration

      C_IR(r, d) = d * (2 R - 1) / (2 r - 1),
      R = r^d / (r^d + (1-r)^d),

  which converges to the paper's approximation ``d / (2r - 1)`` as
  ``R -> 1``, and the reliability is the classical absorption probability
  ``1 / (1 + rho^d)`` with ``rho = (1-r)/r`` -- exactly Equation (6).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.core.confidence import margin_confidence

__all__ = [
    "traditional_cost",
    "traditional_reliability",
    "progressive_cost",
    "progressive_cost_dp",
    "progressive_reliability",
    "progressive_expected_waves",
    "iterative_cost",
    "iterative_cost_series",
    "iterative_cost_approx",
    "iterative_reliability",
    "iterative_expected_waves",
    "iterative_job_distribution",
    "iterative_job_quantile",
    "progressive_cost_heterogeneous",
    "traditional_reliability_heterogeneous",
    "expected_wave_duration",
    "expected_response_time",
    "continuous_traditional_k",
    "continuous_iterative_margin",
    "improvement_over_traditional",
]


def _validate_r(r: float) -> None:
    if not 0.0 < r < 1.0:
        raise ValueError(f"node reliability r must lie strictly in (0, 1), got {r}")


def _validate_k(k: int) -> None:
    if k < 1 or k % 2 == 0:
        raise ValueError(f"k must be a positive odd integer, got {k}")


def _validate_d(d: int) -> None:
    if d < 1:
        raise ValueError(f"margin d must be a positive integer, got {d}")


# ----------------------------------------------------------------------
# Traditional redundancy: Equations (1) and (2)
# ----------------------------------------------------------------------

def traditional_cost(k: int) -> float:
    """Equation (1): C_TR(r) = k, independent of r."""
    _validate_k(k)
    return float(k)


def traditional_reliability(r: float, k: int) -> float:
    """Equation (2): probability at most (k-1)/2 of k jobs fail.

    R_TR(r) = sum_{i=0}^{(k-1)/2} C(k, i) r^{k-i} (1-r)^i
    """
    _validate_r(r)
    _validate_k(k)
    q = 1.0 - r
    return sum(
        math.comb(k, i) * r ** (k - i) * q**i for i in range((k - 1) // 2 + 1)
    )


# ----------------------------------------------------------------------
# Progressive redundancy: Equations (3) and (4)
# ----------------------------------------------------------------------

def progressive_reliability(r: float, k: int) -> float:
    """Equation (4): identical to traditional redundancy's reliability."""
    return traditional_reliability(r, k)


def progressive_cost(r: float, k: int) -> float:
    """Equation (3), literally as printed in the paper.

    C_PR(r) = (k+1)/2
              + sum_{i=(k+3)/2}^{k} sum_{j=i-(k+1)/2}^{(k-1)/2}
                    C(i-1, j) r^{i-1-j} (1-r)^j

    Interpretation: the consensus size must always be dispatched; each
    additional job ``i`` is needed exactly when the first ``i - 1``
    responses contain no consensus, i.e. both the correct count and the
    wrong count are below (k+1)/2.
    """
    _validate_r(r)
    _validate_k(k)
    m = (k + 1) // 2
    q = 1.0 - r
    total = float(m)
    for i in range(m + 1, k + 1):
        for j in range(i - m, m):
            total += math.comb(i - 1, j) * r ** (i - 1 - j) * q**j
    return total


def progressive_cost_dp(r: float, k: int) -> float:
    """Independent cross-check of Equation (3) via the wave process.

    Simulates the exact wave algorithm in probability space: state
    ``(a, b)`` (correct and wrong response counts), each wave dispatches
    ``m - max(a, b)`` jobs whose correct/wrong split is binomial(r).
    Returns the expected total number of jobs dispatched.
    """
    _validate_r(r)
    _validate_k(k)
    m = (k + 1) // 2
    q = 1.0 - r

    @lru_cache(maxsize=None)
    def expected_from(a: int, b: int) -> float:
        if a >= m or b >= m:
            return 0.0
        wave = m - max(a, b)
        total = float(wave)
        for correct in range(wave + 1):
            p = math.comb(wave, correct) * r**correct * q ** (wave - correct)
            total += p * expected_from(a + correct, b + (wave - correct))
        return total

    result = expected_from(0, 0)
    expected_from.cache_clear()
    return result


def progressive_expected_waves(r: float, k: int) -> float:
    """Expected number of dispatch rounds for k-vote PR (used by Fig. 6)."""
    _validate_r(r)
    _validate_k(k)
    m = (k + 1) // 2
    q = 1.0 - r

    @lru_cache(maxsize=None)
    def waves_from(a: int, b: int) -> float:
        if a >= m or b >= m:
            return 0.0
        wave = m - max(a, b)
        total = 1.0
        for correct in range(wave + 1):
            p = math.comb(wave, correct) * r**correct * q ** (wave - correct)
            total += p * waves_from(a + correct, b + (wave - correct))
        return total

    result = waves_from(0, 0)
    waves_from.cache_clear()
    return result


# ----------------------------------------------------------------------
# Iterative redundancy: Equations (5) and (6)
# ----------------------------------------------------------------------

def iterative_reliability(r: float, d: int) -> float:
    """Equation (6): R_IR(r) = r^d / (r^d + (1-r)^d)."""
    _validate_r(r)
    _validate_d(d)
    return margin_confidence(r, d)


def iterative_cost(r: float, d: int) -> float:
    """Exact expected cost of iterative redundancy (closed form).

    The margin performs a +-1 random walk (up w.p. r) absorbed at +-d;
    the gambler's-ruin expected duration gives

        C_IR(r, d) = d * (2 R_IR(r, d) - 1) / (2 r - 1),

    with the removable singularity C_IR(1/2, d) = d^2 (symmetric walk).
    Matches the paper's Equation (5) series (see
    :func:`iterative_cost_series`) and approaches ``d / (2r - 1)`` for
    non-trivial d (the paper's approximation).
    """
    _validate_r(r)
    _validate_d(d)
    if abs(r - 0.5) < 1e-12:
        return float(d * d)
    reliability = iterative_reliability(r, d)
    return d * (2.0 * reliability - 1.0) / (2.0 * r - 1.0)


def iterative_cost_approx(r: float, d: int) -> float:
    """The paper's approximation: C_IR(r) ~ d / (2r - 1) for non-trivial d."""
    _validate_r(r)
    _validate_d(d)
    if r <= 0.5:
        raise ValueError("approximation d/(2r-1) requires r > 0.5")
    return d / (2.0 * r - 1.0)


def iterative_job_distribution(
    r: float, d: int, *, tail: float = 1e-12, max_jobs: int = 1_000_000
) -> Iterator[Tuple[int, float]]:
    """Distribution of total jobs used by IR: pairs ``(d + 2b, probability)``.

    Equation (5) weights each possible total ``d + 2b`` (ending with
    ``d + b`` votes on one side and ``b`` on the other) by its
    probability.  Computed by evolving the margin random walk one step at
    a time and recording absorption mass at +-d; iteration stops once the
    unabsorbed mass falls below ``tail``.
    """
    _validate_r(r)
    _validate_d(d)
    q = 1.0 - r
    # interior[margin] = probability of being unabsorbed at this margin.
    interior: Dict[int, float] = {0: 1.0}
    steps = 0
    while interior and steps < max_jobs:
        steps += 1
        nxt: Dict[int, float] = {}
        absorbed = 0.0
        for margin, mass in interior.items():
            for delta, p in ((1, r), (-1, q)):
                new = margin + delta
                weight = mass * p
                if abs(new) >= d:
                    absorbed += weight
                else:
                    nxt[new] = nxt.get(new, 0.0) + weight
        if absorbed > 0.0:
            yield steps, absorbed
        interior = nxt
        if sum(interior.values()) < tail:
            break


def iterative_job_quantile(r: float, d: int, q: float) -> int:
    """The q-quantile of IR's per-task job count.

    Iterative redundancy is unbounded in the worst case (Section 5.2);
    this quantifies the tail: the smallest total job count n such that
    P(task finishes within n jobs) >= q.  Useful for capacity planning
    and for interpreting the "maximum jobs for any single task" measure
    the simulations record.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must lie strictly in (0, 1), got {q}")
    cumulative = 0.0
    last = d
    for jobs, prob in iterative_job_distribution(r, d, tail=1e-15):
        cumulative += prob
        last = jobs
        if cumulative >= q:
            return jobs
    return last  # pragma: no cover - tail cutoff below any sane q


def iterative_cost_series(r: float, d: int, *, tail: float = 1e-12) -> float:
    """Equation (5) evaluated as a (truncated) series -- cross-checks
    :func:`iterative_cost`.

    C_IR(r) = sum_b (d + 2b) P(d + 2b jobs produce d + b identical results)
    """
    remaining_mass = 1.0
    total = 0.0
    last_jobs = d
    for jobs, prob in iterative_job_distribution(r, d, tail=tail):
        total += jobs * prob
        remaining_mass -= prob
        last_jobs = jobs
    # Bound the truncation error: the surviving mass needs at least one
    # more step each; attribute it to the next possible total.
    total += max(0.0, remaining_mass) * (last_jobs + 2)
    return total


def iterative_expected_waves(r: float, d: int, *, tail: float = 1e-12) -> float:
    """Expected number of dispatch rounds for IR (used by Fig. 6).

    Evolves the *wave* process: a wave dispatches ``d - |margin|`` jobs at
    once; the walk is absorbed when ``|margin|`` reaches ``d``.
    """
    _validate_r(r)
    _validate_d(d)
    q = 1.0 - r
    interior: Dict[int, float] = {0: 1.0}
    expected = 0.0
    while interior:
        mass_now = sum(interior.values())
        if mass_now < tail:
            break
        expected += mass_now  # every surviving trajectory runs one more wave
        nxt: Dict[int, float] = {}
        for margin, mass in interior.items():
            wave = d - abs(margin)
            for correct in range(wave + 1):
                p = math.comb(wave, correct) * r**correct * q ** (wave - correct)
                new = margin + correct - (wave - correct)
                if abs(new) >= d:
                    continue  # absorbed; contributes no further waves
                nxt[new] = nxt.get(new, 0.0) + mass * p
        interior = nxt
    return expected


# ----------------------------------------------------------------------
# Response-time models (Figure 6)
# ----------------------------------------------------------------------

def expected_wave_duration(
    wave_size: int, *, low: float = 0.5, high: float = 1.5
) -> float:
    """Expected duration of a wave of ``wave_size`` parallel jobs.

    Job durations are i.i.d. Uniform(low, high) (the paper's XDEVS setup);
    a wave completes when its slowest job does, so the duration is the
    maximum of ``wave_size`` draws:  E[max] = low + (high - low) * n/(n+1).
    This models an unloaded system; the DES measures the loaded case.
    """
    if wave_size < 1:
        raise ValueError(f"wave size must be positive, got {wave_size}")
    n = wave_size
    return low + (high - low) * n / (n + 1.0)


def expected_response_time(
    r: float,
    strategy: str,
    param: int,
    *,
    low: float = 0.5,
    high: float = 1.5,
    tail: float = 1e-10,
) -> float:
    """Unloaded-system expected response time per task, by technique.

    Args:
        strategy: ``"traditional"``, ``"progressive"``, or ``"iterative"``.
        param: ``k`` for TR/PR, ``d`` for IR.

    TR uses one wave of k jobs.  For PR/IR the expectation sums, over the
    wave process, each wave's expected max-duration given its size.
    """
    _validate_r(r)
    q = 1.0 - r
    if strategy == "traditional":
        return expected_wave_duration(param, low=low, high=high)
    if strategy == "progressive":
        m = (param + 1) // 2

        @lru_cache(maxsize=None)
        def time_from(a: int, b: int) -> float:
            if a >= m or b >= m:
                return 0.0
            wave = m - max(a, b)
            total = expected_wave_duration(wave, low=low, high=high)
            for correct in range(wave + 1):
                p = math.comb(wave, correct) * r**correct * q ** (wave - correct)
                total += p * time_from(a + correct, b + (wave - correct))
            return total

        result = time_from(0, 0)
        time_from.cache_clear()
        return result
    if strategy == "iterative":
        d = param
        interior: Dict[int, float] = {0: 1.0}
        expected = 0.0
        while interior and sum(interior.values()) >= tail:
            nxt: Dict[int, float] = {}
            for margin, mass in interior.items():
                wave = d - abs(margin)
                expected += mass * expected_wave_duration(wave, low=low, high=high)
                for correct in range(wave + 1):
                    p = math.comb(wave, correct) * r**correct * q ** (wave - correct)
                    new = margin + correct - (wave - correct)
                    if abs(new) >= d:
                        continue
                    nxt[new] = nxt.get(new, 0.0) + mass * p
            interior = nxt
        return expected
    raise ValueError(f"unknown strategy {strategy!r}")


# ----------------------------------------------------------------------
# Equal-reliability comparison (Figure 5c)
# ----------------------------------------------------------------------

def continuous_traditional_k(r: float, target: float) -> float:
    """Real-valued k with R_TR(r, k) = target, via the Beta identity.

    For odd k = 2m - 1, R_TR(r, k) = P(Bin(k, 1-r) <= m - 1) = I_r(m, m)
    (the regularised incomplete Beta function), which extends smoothly to
    real m.  Used to interpolate traditional redundancy's cost at an exact
    reliability target when comparing techniques (Figure 5c).
    """
    _validate_r(r)
    if not 0.5 < target < 1.0:
        raise ValueError(f"target must lie in (0.5, 1), got {target}")
    if r <= 0.5:
        raise ValueError("traditional redundancy cannot exceed 0.5 reliability at r <= 0.5")
    from scipy import optimize, special

    def gap(m: float) -> float:
        return special.betainc(m, m, r) - target

    # gap(0.5+) < 0 possible; find a bracket by doubling.
    lo, hi = 0.5, 1.0
    while gap(hi) < 0:
        hi *= 2.0
        if hi > 1e7:
            raise ArithmeticError("failed to bracket continuous k")
    if gap(lo) > 0:
        lo = 1e-9
    m = optimize.brentq(gap, lo, hi, xtol=1e-12)
    return 2.0 * m - 1.0


def continuous_iterative_margin(r: float, target: float) -> float:
    """Real-valued d with R_IR(r, d) = target (inverse of Equation (6))."""
    _validate_r(r)
    if not 0.5 < target < 1.0:
        raise ValueError(f"target must lie in (0.5, 1), got {target}")
    if r <= 0.5:
        raise ValueError("iterative redundancy cannot exceed 0.5 reliability at r <= 0.5")
    rho = (1.0 - r) / r
    return math.log((1.0 - target) / target) / math.log(rho)


def _iterative_cost_real(r: float, d_real: float, target: float) -> float:
    """Closed-form IR cost with a real-valued margin (smooth interpolation)."""
    if abs(r - 0.5) < 1e-12:
        return d_real * d_real
    return d_real * (2.0 * target - 1.0) / (2.0 * r - 1.0)


def improvement_over_traditional(r: float, k: int = 19) -> Tuple[float, float]:
    """Figure 5(c): cost-factor improvement of PR and IR over TR at equal
    reliability, as a function of node reliability ``r``.

    Methodology (the paper does not spell out its interpolation; this
    matches all of its quoted values -- see EXPERIMENTS.md):

    * fix the vote size ``k`` (the paper's running example is 19);
    * PR delivers exactly TR's reliability, so its improvement is simply
      ``k / C_PR(r, k)``;
    * IR's margin is tuned (real-valued, for smoothness) so that
      R_IR(r, d) = R_TR(r, k); its improvement is ``k / C_IR(r, d)``.

    Returns:
        ``(pr_improvement, ir_improvement)``.
    """
    _validate_r(r)
    _validate_k(k)
    if r <= 0.5:
        raise ValueError("comparison requires r > 0.5")
    target = traditional_reliability(r, k)
    pr_improvement = k / progressive_cost(r, k)
    d_real = continuous_iterative_margin(r, target)
    ir_cost = _iterative_cost_real(r, d_real, target)
    ir_improvement = k / ir_cost
    return pr_improvement, ir_improvement


# ----------------------------------------------------------------------
# Heterogeneous-reliability generalisation (Section 5.3)
# ----------------------------------------------------------------------

def progressive_cost_heterogeneous(reliabilities: Sequence[float]) -> float:
    """Expected cost of k-vote PR with per-draw job reliabilities.

    Section 5.3 generalises Equation (3) by replacing ``r`` with the
    reliability ``r_c`` of each successive job ``c``.  ``reliabilities``
    gives the success probability of the c-th job dispatched (c = 1..k);
    the expected cost is the consensus size plus, for each further job,
    the probability that the preceding jobs contained no consensus --
    computed by evolving the (correct, wrong) count distribution one
    heterogeneous draw at a time.
    """
    k = len(reliabilities)
    _validate_k(k)
    for r in reliabilities:
        _validate_r(r)
    m = (k + 1) // 2
    # dist[(a, b)] = P(a correct, b wrong among the first draws), pruned
    # of states that already reached a consensus.
    dist: Dict[tuple, float] = {(0, 0): 1.0}
    expected = float(m)
    for index, r in enumerate(reliabilities, start=1):
        nxt: Dict[tuple, float] = {}
        for (a, b), mass in dist.items():
            for success, p in ((True, r), (False, 1.0 - r)):
                new = (a + 1, b) if success else (a, b + 1)
                if new[0] >= m or new[1] >= m:
                    continue  # consensus reached: no further cost
                nxt[new] = nxt.get(new, 0.0) + mass * p
        dist = nxt
        if index >= m and index < k:
            # Job index+1 is dispatched iff no consensus among the first
            # `index` jobs.
            expected += sum(dist.values())
        if not dist:
            break
    return expected


def traditional_reliability_heterogeneous(reliabilities: Sequence[float]) -> float:
    """R of one k-vote with per-job success probabilities (Section 5.3).

    Computes P(majority of the k jobs succeed) for independent Bernoulli
    jobs with distinct success probabilities, by dynamic programming over
    the success count (Poisson-binomial CDF).
    """
    k = len(reliabilities)
    if k < 1 or k % 2 == 0:
        raise ValueError(f"need an odd number of job reliabilities, got {k}")
    for r in reliabilities:
        _validate_r(r)
    # dist[s] = P(exactly s successes so far)
    dist = [1.0]
    for r in reliabilities:
        nxt = [0.0] * (len(dist) + 1)
        for s, p in enumerate(dist):
            nxt[s] += p * (1.0 - r)
            nxt[s + 1] += p * r
        dist = nxt
    majority = (k + 1) // 2
    return sum(dist[majority:])
