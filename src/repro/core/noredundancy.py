"""The k = 1 baseline: no redundancy at all.

A system without redundancy dispatches a single job per task and accepts
whatever comes back; its reliability equals the node reliability ``r`` and
its cost factor is 1.  Separated from
:class:`~repro.core.traditional.TraditionalRedundancy` only for clarity in
experiment tables.
"""

from __future__ import annotations

from repro.core.strategy import RedundancyStrategy
from repro.core.types import Decision, VoteState


class NoRedundancy(RedundancyStrategy):
    """Dispatch one job and accept its answer."""

    name = "none(k=1)"

    def initial_jobs(self) -> int:
        return 1

    def decide(self, vote: VoteState) -> Decision:
        leader = vote.leader
        if leader is None:
            # The single job timed out without a value; try once more.
            return Decision.dispatch(1)
        return Decision.accept(leader)

    def max_total_jobs(self) -> int:
        return 1
