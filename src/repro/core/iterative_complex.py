"""The "complex" iterative-redundancy algorithm (Section 3.3).

Before the simplifying insight, iterative redundancy is described as: keep
a confidence threshold R; after every wave compute the confidence
``q(r, a, b)`` that the majority is correct, and if it falls short,
dispatch ``d(r, R, b) - a`` more jobs -- the minimum that would reach R if
they all agreed with the majority.  This form requires the node
reliability ``r`` as an input, which Theorem 1 proves unnecessary: the
complex algorithm dispatches exactly the same number of jobs in every
situation as the simple margin algorithm with ``d = d(r, R, 0)``.

It is implemented here (a) as executable documentation of the paper's
derivation and (b) so property tests can verify the Theorem-1 equivalence
end to end.
"""

from __future__ import annotations

from repro.core.confidence import required_agreement, required_margin
from repro.core.strategy import RedundancyStrategy
from repro.core.types import Decision, VoteState


class ComplexIterativeRedundancy(RedundancyStrategy):
    """Confidence-threshold iterative redundancy that *does* use ``r``.

    Args:
        r: Average node reliability (must exceed 0.5).
        target: Desired system reliability R in (0.5, 1).

    Dispatches identically to
    ``IterativeRedundancy(required_margin(r, target))`` -- Theorem 1.

    The construction-time *decision table* is that same theorem put to
    work: ``q(r, a, b) >= R  <=>  a - b >= d(r, R, 0)`` (monotonicity of
    ``q`` in the margin) and ``d(r, R, b) = d(r, R, 0) + b``, so the
    per-vote log/exp evaluation of the printed algorithm collapses to
    integer compares against the one precomputed margin.
    """

    def __init__(self, r: float, target: float) -> None:
        if not 0.5 < r < 1.0:
            raise ValueError(f"complex algorithm needs r in (0.5, 1), got {r}")
        if not 0.5 < target < 1.0:
            raise ValueError(f"target must lie in (0.5, 1), got {target}")
        self.r = r
        self.target = target
        #: d(r, R, 0) -- the entire decision table, by Theorems 1 and 2.
        self._required_margin = required_margin(r, target)
        self.equivalent_margin = max(1, self._required_margin)
        self.name = f"iterative-complex(r={r}, R={target})"

    def initial_jobs(self) -> int:
        """d(r, R, 0): jobs whose unanimous agreement would reach R."""
        return max(1, required_agreement(self.r, self.target, 0))

    def decide(self, vote: VoteState) -> Decision:
        a = vote.leader_count
        b = vote.runner_up_count
        d0 = self._required_margin
        # confidence(r, a, b) >= target  <=>  a - b >= d(r, R, 0).
        if vote.leader is not None and a - b >= d0:
            return Decision.accept(vote.leader)
        # d(r, R, b) = d(r, R, 0) + b  (Theorem 1).
        needed = max(1, d0 + b)
        if vote.leader is None:
            return Decision.dispatch(needed)
        return Decision.dispatch(needed - a)

    def describe(self) -> str:
        return self.name
