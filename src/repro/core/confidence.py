"""Confidence mathematics: q(r, a, b), d(r, R, b), and the theorems.

Section 3.3 of the paper defines the *confidence* that the ``a`` agreeing
jobs (rather than the ``b`` disagreeing ones) reported the correct result::

                     r^a (1-r)^b
    q(r, a, b) = ---------------------------
                 r^a (1-r)^b + (1-r)^a r^b

and ``d(r, R, b)`` as the minimum ``a`` such that ``q(r, a, b) >= R``.

Theorem 1 (the simplifying insight) states that ``q`` depends only on the
margin ``a - b``:  ``q(r, a, b) = q(r, a + j, b + j)`` for all ``j >= 0``.
Consequently ``d(r, R, b) = d(r, R, 0) + b`` and the iterative-redundancy
algorithm needs only the single margin ``d = d(r, R, 0)``.

All functions here work in log space where overflow is possible and fall
back to the direct formula otherwise, so they are exact for the small
operands used throughout and stable for extreme ones.

Performance: the kernels are called from every strategy decision loop and
every analytic sweep, yet by Theorem 1 they depend only on ``(r, margin)``
/ ``(r, target)`` -- tiny key spaces in any experiment.  Both are memoized
with module-level LRU caches (never method caches, which would pin ``self``
alive -- reprolint RL007 guards the distinction).

Precision: the two sides of a vote satisfy ``q(r, a, b) + q(r, b, a) = 1``
exactly.  :func:`margin_confidence` therefore computes only the *trailing*
side directly -- ``1 / (2 + expm1(e))``, which has no catastrophic
cancellation -- and returns the leading side as its complement, so the pair
sums to 1 within 1 ulp all the way into the extreme-exponent regime.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional

__all__ = [
    "confidence",
    "margin_confidence",
    "required_agreement",
    "required_margin",
    "achievable_reliability",
]


def _validate_r(r: float) -> None:
    if not 0.0 < r < 1.0:
        raise ValueError(f"node reliability r must lie strictly in (0, 1), got {r}")


def confidence(r: float, a: int, b: int) -> float:
    """The paper's q(r, a, b): probability the ``a``-side is correct.

    Args:
        r: Average probability that a single job returns the correct
            result.
        a: Number of jobs reporting the (presumed-majority) value.
        b: Number of jobs reporting the other value.

    Returns:
        q(r, a, b) in (0, 1).  By Theorem 1 this equals
        ``margin_confidence(r, a - b)`` whenever ``a >= b``.
    """
    _validate_r(r)
    if a < 0 or b < 0:
        raise ValueError(f"vote counts must be non-negative, got a={a}, b={b}")
    # q(r, a, b) = 1 / (1 + ((1-r)/r)^(a-b)) computed via the margin,
    # which is exactly the Theorem-1 reduction and avoids overflow for
    # large a, b.
    return margin_confidence(r, a - b)


def _trailing_confidence(exponent: float) -> float:
    """``1 / (1 + exp(exponent))`` for ``exponent >= 0`` (the side <= 1/2).

    Uses ``2 + expm1`` rather than ``1 + exp`` so the denominator is built
    from the exactly-representable ``exp(exponent) - 1``; no cancellation
    occurs anywhere in this branch, making the trailing side accurate to
    1 ulp even for extreme exponents.
    """
    if exponent > 700.0:  # exp overflows; confidence underflows smoothly
        return math.exp(-exponent)
    return 1.0 / (2.0 + math.expm1(exponent))


@lru_cache(maxsize=None)
def _margin_confidence_cached(r: float, margin: int) -> float:
    # 1 / (1 + rho^d) with rho = (1-r)/r; log-space for robustness.
    log_rho = math.log1p(-r) - math.log(r)
    exponent = margin * log_rho
    if exponent >= 0.0:
        return _trailing_confidence(exponent)
    # Leading side: complement of the accurately-computed trailing side,
    # so q(r, d) + q(r, -d) lands within 1 ulp of 1 by construction.
    return 1.0 - _trailing_confidence(-exponent)


def margin_confidence(r: float, margin: int) -> float:
    """Confidence that the leading side is correct, given its lead.

    Equals ``r^d / (r^d + (1-r)^d)`` for ``margin = d`` (Equation (6) of
    the paper gives exactly this as the system reliability of iterative
    redundancy with parameter ``d``).  Negative margins are allowed and
    give the complementary confidence; the two directions sum to 1 within
    1 ulp.  Memoized on ``(r, margin)`` (Theorem 1: nothing else matters).
    """
    _validate_r(r)
    return _margin_confidence_cached(r, margin)


def required_agreement(r: float, target: float, b: int) -> int:
    """The paper's d(r, R, b): minimum ``a`` with ``q(r, a, b) >= R``.

    Args:
        r: Node reliability; must exceed 1/2 or no finite ``a`` can reach
            a target above 1/2.
        target: Desired confidence R in (0, 1).
        b: Number of disagreeing votes already seen.

    Returns:
        The minimal number of agreeing votes.

    Raises:
        ValueError: if ``r <= 0.5`` and ``target > 0.5`` (unreachable) or
            arguments are out of range.
    """
    if b < 0:
        raise ValueError(f"b must be non-negative, got {b}")
    return required_margin(r, target) + b


@lru_cache(maxsize=None)
def _required_margin_cached(r: float, target: float) -> int:
    # Solve r^d / (r^d + (1-r)^d) >= R  <=>  rho^d <= (1-R)/R,
    # rho = (1-r)/r < 1  <=>  d >= log((1-R)/R) / log(rho).
    rho = (1.0 - r) / r
    exact = math.log((1.0 - target) / target) / math.log(rho)
    d = max(0, math.ceil(exact - 1e-12))
    # Guard against floating-point edge cases around the ceiling.
    while margin_confidence(r, d) < target:
        d += 1
    while d > 0 and margin_confidence(r, d - 1) >= target:
        d -= 1
    return d


def required_margin(r: float, target: float) -> int:
    """Minimum margin d with ``margin_confidence(r, d) >= target``.

    This is d(r, R, 0), the single parameter the simple iterative-
    redundancy algorithm needs (Theorem 1 makes it independent of ``b``).
    Memoized on ``(r, target)``.
    """
    _validate_r(r)
    if not 0.0 < target < 1.0:
        raise ValueError(f"target reliability must lie strictly in (0, 1), got {target}")
    if target <= 0.5:
        return 0
    if r <= 0.5:
        raise ValueError(
            f"no finite margin reaches confidence {target} when r={r} <= 0.5"
        )
    return _required_margin_cached(r, target)


def achievable_reliability(r: float, d: int) -> float:
    """System reliability delivered by iterative redundancy with margin d.

    Synonym of :func:`margin_confidence` named for the user-facing
    direction: given a margin budget, what reliability do we get?
    (Equation (6): R_IR(r) = r^d / (r^d + (1-r)^d).)
    """
    if d < 0:
        raise ValueError(f"margin d must be non-negative, got {d}")
    return margin_confidence(r, d)
