"""Traditional k-modular redundancy (Figure 2a of the paper).

The state of the practice in deployed DCAs (BOINC, Hadoop): perform
``k`` independent executions of the task in parallel and take a majority
vote.  Cost factor is always exactly ``k`` (Equation (1)); reliability is
the probability that at least ``(k + 1) / 2`` executions succeed
(Equation (2)).
"""

from __future__ import annotations

from repro.core.strategy import RedundancyStrategy
from repro.core.types import Decision, VoteState
from repro.core.voting import majority_value


def validate_k(k: int) -> None:
    """k must be a positive odd integer (k = 1 means no redundancy)."""
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if k % 2 == 0:
        raise ValueError(f"k must be odd so a majority always exists, got {k}")


class TraditionalRedundancy(RedundancyStrategy):
    """k-vote traditional redundancy: one wave of ``k`` jobs, then vote.

    Args:
        k: Odd number of independent executions per task.

    Example:
        >>> strategy = TraditionalRedundancy(3)
        >>> strategy.initial_jobs()
        3
    """

    def __init__(self, k: int) -> None:
        validate_k(k)
        self.k = k
        self.name = f"traditional(k={k})"

    def initial_jobs(self) -> int:
        return self.k

    def decide(self, vote: VoteState) -> Decision:
        if vote.responses < self.k:
            # Some jobs timed out without reporting; re-issue them so the
            # vote still rests on k actual responses (paper Section 2.2
            # treats a silent node as failed, and BOINC-style servers
            # replace such jobs).
            return Decision.dispatch(self.k - vote.responses)
        winner = majority_value(vote, self.k)
        if winner is not None:
            return Decision.accept(winner)
        # No majority can happen only outside the binary model (three or
        # more distinct values, or too many silent failures).  Take the
        # plurality leader; with zero responses the task is retried whole.
        leader = vote.leader
        if leader is None:
            return Decision.dispatch(self.k)
        return Decision.accept(leader)

    def max_total_jobs(self) -> int:
        return self.k

    def describe(self) -> str:
        return self.name
