"""The strategy protocol every redundancy technique implements.

A strategy is a *wave decider*: the task server dispatches a wave of jobs,
waits for all of them to complete, folds the outcomes into a
:class:`~repro.core.types.VoteState`, and asks the strategy what to do
next.  The strategy answers with a :class:`~repro.core.types.Decision` --
either ``accept(value)`` or ``dispatch(n)`` more jobs.

Keeping strategies pure functions of the vote state means one
implementation serves three substrates: the closed-form analysis, the
discrete-event DCA model, and the volunteer-computing substrate.

Strategies that need node identities across tasks (the credibility and
adaptive-replication comparators of Sections 5-6) additionally implement
:class:`NodeAware`; substrates feed them per-job outcomes and final
verdicts so they can maintain reputations.
"""

from __future__ import annotations

import abc
from functools import lru_cache
from typing import Optional, Protocol, runtime_checkable

from repro.core.types import Decision, JobOutcome, TaskVerdict, VoteState


class RedundancyStrategy(abc.ABC):
    """Decides how many redundant jobs each task needs.

    Subclasses must be safe to share across tasks: all per-task state lives
    in the :class:`VoteState` the substrate passes in.
    """

    #: Short identifier used in reports and experiment tables.
    name: str = "strategy"

    @abc.abstractmethod
    def initial_jobs(self) -> int:
        """Number of jobs the first wave of every task should contain."""

    @abc.abstractmethod
    def decide(self, vote: VoteState) -> Decision:
        """Given the completed votes so far, accept or dispatch more.

        Called only when no dispatched jobs remain outstanding
        (``vote.outstanding == 0``) and at least one wave has completed.
        """

    def max_total_jobs(self) -> Optional[int]:
        """Upper bound on jobs per task, or ``None`` if unbounded.

        Traditional and progressive redundancy are bounded by ``k``;
        iterative redundancy is unbounded (Section 5.2: "any one task may
        require arbitrarily many waves of jobs").  Substrates may use this
        for sanity checks but must not truncate unbounded strategies.
        """
        return None

    def describe(self) -> str:
        """Human-readable parameterisation for reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"


@runtime_checkable
class NodeAware(Protocol):
    """Optional interface for strategies that track node reputations.

    Substrates call :meth:`record_outcome` for every completed job (with
    the node id attached) and :meth:`task_finished` once a task's verdict
    is accepted, letting the strategy update per-node statistics such as
    credibility scores or adaptive-replication trust.
    """

    def record_outcome(self, task_id: int, outcome: JobOutcome) -> None:
        """Observe one job's outcome for reputation bookkeeping."""

    def task_finished(self, task_id: int, verdict: TaskVerdict) -> None:
        """Observe a task's accepted verdict (without ground truth)."""


@lru_cache(maxsize=None)
def _node_aware_type(strategy_type: type) -> bool:
    return issubclass(strategy_type, NodeAware)


def is_node_aware(strategy: RedundancyStrategy) -> bool:
    """Whether ``strategy`` implements the :class:`NodeAware` protocol.

    ``isinstance`` against a ``runtime_checkable`` protocol re-walks the
    protocol's members on every call, which is measurable when substrates
    check per task; this memoizes the answer per strategy *class*.  (All
    strategies in this repo define the protocol methods on the class, so
    the ``issubclass`` check is equivalent to the instance check.)
    """
    return _node_aware_type(type(strategy))
