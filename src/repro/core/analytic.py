"""Closed-form fast path: predict DES sweep measurements analytically.

Figures 5 and 6 compare simulation against Equations (1)-(6); for the
paper's idealised regime (homogeneous reliability, no churn, no silent
nodes) those closed forms *are* the model the simulation samples.  This
module packages them behind the same vocabulary the experiment harness
uses -- a strategy instance in, a measurement out -- so sweeps can swap a
multi-second DES replication for a microsecond closed-form evaluation
(``mode="analytic"`` in :func:`repro.experiments.common.replicate_dca`).

The mapping is strategy-class driven:

===============================  =============================================
Strategy                         Closed forms (all from :mod:`repro.core.analysis`)
===============================  =============================================
``TraditionalRedundancy(k)``     Equations (1), (2); one wave of ``k`` jobs
``ProgressiveRedundancy(k)``     Equations (3), (4); wave process over ``k``
``IterativeRedundancy(d)``       Equations (5), (6); gambler's-ruin walk
``ComplexIterativeRedundancy``   Theorem 1: identical to IR at the
                                 ``equivalent_margin``
``NoRedundancy``                 The ``k = 1`` degenerate case
===============================  =============================================

Anything else -- node-aware strategies whose behaviour depends on history,
or DES configurations the equations do not model (churn, silent nodes,
load) -- raises :class:`ValueError` rather than returning a silently wrong
number.  Response times use the *unloaded* model of
:func:`repro.core.analysis.expected_response_time` (every wave starts
immediately); simulations with fewer nodes than the offered load will
measure higher values, which is exactly the effect Figure 6 isolates.

Iterative redundancy has no finite worst case (Section 5.2), so the
``max_jobs`` prediction reports a *quantile* of the per-task job
distribution (default 0.999) -- the analytic counterpart of the "maximum
jobs for any single task" column the simulations record.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import analysis
from repro.core.iterative import IterativeRedundancy
from repro.core.iterative_complex import ComplexIterativeRedundancy
from repro.core.noredundancy import NoRedundancy
from repro.core.progressive import ProgressiveRedundancy
from repro.core.strategy import RedundancyStrategy
from repro.core.traditional import TraditionalRedundancy

__all__ = [
    "AnalyticPrediction",
    "analytic_prediction",
    "check_analytic_overrides",
    "supports_analytic",
]

#: DcaConfig overrides the closed forms can honour.  Everything else
#: (churn, silent nodes, heterogeneous speeds, spot checks...) changes the
#: sampled process away from Equations (1)-(6).
_SUPPORTED_OVERRIDES = frozenset({"duration_low", "duration_high"})


@dataclass(frozen=True)
class AnalyticPrediction:
    """Closed-form counterpart of one DES sweep point.

    Attributes:
        reliability: System reliability R(r) for the strategy.
        cost_factor: Expected jobs per task C(r).
        mean_response_time: Unloaded-system expected task response time.
        max_jobs: Jobs-per-task bound; exact for TR/PR (``k``), the
            ``max_jobs_quantile`` of the job distribution for IR.
        strategy_name: ``describe()`` of the predicted strategy.
    """

    reliability: float
    cost_factor: float
    mean_response_time: float
    max_jobs: int
    strategy_name: str


def supports_analytic(strategy: RedundancyStrategy) -> bool:
    """Whether :func:`analytic_prediction` can evaluate ``strategy``."""
    return isinstance(
        strategy,
        (
            TraditionalRedundancy,
            ProgressiveRedundancy,
            IterativeRedundancy,
            ComplexIterativeRedundancy,
            NoRedundancy,
        ),
    )


def analytic_prediction(
    strategy: RedundancyStrategy,
    r: float,
    *,
    duration_low: float = 0.5,
    duration_high: float = 1.5,
    max_jobs_quantile: float = 0.999,
) -> AnalyticPrediction:
    """Evaluate the closed forms for ``strategy`` at node reliability ``r``.

    Args:
        strategy: One of the strategies listed in the module table.
        r: Average node reliability in (0, 1).
        duration_low / duration_high: Uniform nominal job duration bounds
            (must match the DES configuration being predicted).
        max_jobs_quantile: Quantile reported as ``max_jobs`` for the
            unbounded iterative strategy.

    Raises:
        ValueError: for strategies with no closed form (node-aware,
            custom), mirroring the "reject, don't guess" contract.
    """
    if isinstance(strategy, NoRedundancy):
        return AnalyticPrediction(
            reliability=r,
            cost_factor=1.0,
            mean_response_time=analysis.expected_wave_duration(
                1, low=duration_low, high=duration_high
            ),
            max_jobs=1,
            strategy_name=strategy.describe(),
        )
    if isinstance(strategy, TraditionalRedundancy):
        k = strategy.k
        return AnalyticPrediction(
            reliability=analysis.traditional_reliability(r, k),
            cost_factor=analysis.traditional_cost(k),
            mean_response_time=analysis.expected_response_time(
                r, "traditional", k, low=duration_low, high=duration_high
            ),
            max_jobs=k,
            strategy_name=strategy.describe(),
        )
    if isinstance(strategy, ProgressiveRedundancy):
        k = strategy.k
        return AnalyticPrediction(
            reliability=analysis.progressive_reliability(r, k),
            cost_factor=analysis.progressive_cost(r, k),
            mean_response_time=analysis.expected_response_time(
                r, "progressive", k, low=duration_low, high=duration_high
            ),
            max_jobs=k,
            strategy_name=strategy.describe(),
        )
    if isinstance(strategy, (IterativeRedundancy, ComplexIterativeRedundancy)):
        # Theorem 1: the complex algorithm is IR at its equivalent margin.
        d = (
            strategy.d
            if isinstance(strategy, IterativeRedundancy)
            else strategy.equivalent_margin
        )
        return AnalyticPrediction(
            reliability=analysis.iterative_reliability(r, d),
            cost_factor=analysis.iterative_cost(r, d),
            mean_response_time=analysis.expected_response_time(
                r, "iterative", d, low=duration_low, high=duration_high
            ),
            max_jobs=analysis.iterative_job_quantile(r, d, max_jobs_quantile),
            strategy_name=strategy.describe(),
        )
    raise ValueError(
        f"no closed form for {strategy.describe()!r}: analytic mode covers "
        "traditional, progressive, and iterative redundancy only"
    )


def check_analytic_overrides(config_overrides: dict) -> None:
    """Reject DES configuration the closed forms cannot honour.

    The equations assume no churn, no silent nodes, homogeneous node
    speeds, and no spot-check diversion; overrides that merely restate a
    default (e.g. ``arrival_rate=0.0``) are fine.
    """
    for key, value in config_overrides.items():
        if key in _SUPPORTED_OVERRIDES:
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool) and value == 0:
            continue  # explicit zero = the modelled default
        raise ValueError(
            f"analytic mode cannot model config override {key}={value!r}; "
            "run mode='sim' for churned/loaded/heterogeneous configurations"
        )
