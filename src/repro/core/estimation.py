"""Estimating the unknown node reliability from vote observations.

Iterative redundancy never *needs* the node reliability ``r``, but
operators still want to know it (capacity planning, choosing ``d`` for a
new reliability target, detecting pool degradation).  Section 4.2 of the
paper derives PlanetLab's ``r`` from measured costs; this module
generalises that into proper estimators:

* :func:`estimate_from_job_counts` -- maximum-likelihood ``r`` from the
  per-task job totals an IR deployment observes.  A task that used
  ``d + 2b`` jobs finished ``(d + b)``-to-``b``; the counts' likelihood
  follows the absorbed random walk.  The sufficient statistic turns out
  to be beautifully simple (Wald's identity again): the MLE satisfies
  ``E[T] = C_IR(r, d)``, i.e. *invert the cost closed form at the
  empirical mean*, which is exactly what the paper did by hand.
* :func:`estimate_from_votes` -- MLE from fully observed vote splits
  (when the operator logs every job's agreement, not just totals):
  each job agrees with the eventual winner w.p. ``r`` up to the winner's
  correctness, giving a closed-form ratio estimate with a
  winner-correctness correction.
* :func:`degradation_monitor` -- a sliding-window alarm on the job-count
  stream: flags when the pool's implied ``r`` drifts below a floor.

All estimators consume only information the server legitimately has --
no ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.analysis import iterative_cost, iterative_reliability

__all__ = [
    "estimate_from_job_counts",
    "estimate_from_votes",
    "DegradationAlarm",
    "degradation_monitor",
]


def _invert_cost(mean_jobs: float, d: int) -> float:
    """Solve C_IR(r, d) = mean_jobs for r in (0.5, 1) by bisection.

    C_IR is strictly decreasing in r on (0.5, 1), from d^2 down to d.
    Values at or below d clamp to r -> 1; at or above d^2 clamp to 0.5.
    """
    low_cost = iterative_cost(0.999999, d)  # ~ d
    high_cost = float(d * d)
    if mean_jobs <= low_cost:
        return 1.0
    if mean_jobs >= high_cost:
        return 0.5
    lo, hi = 0.5 + 1e-9, 1.0 - 1e-9
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if iterative_cost(mid, d) > mean_jobs:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def estimate_from_job_counts(job_counts: Sequence[int], d: int) -> float:
    """MLE of ``r`` from IR per-task job totals.

    By Wald's identity the expected total is ``C_IR(r, d)``; the MLE of a
    stopped random walk's step probability matches moments, so the
    estimator inverts the cost closed form at the sample mean.  Returns a
    value in [0.5, 1.0] (the sign of the drift is unidentifiable from
    totals alone, so the estimate is the magnitude-side root -- the same
    convention the paper uses when deriving PlanetLab's r).
    """
    if d < 1:
        raise ValueError(f"margin d must be positive, got {d}")
    counts = list(job_counts)
    if not counts:
        raise ValueError("need at least one observed task")
    for count in counts:
        if count < d or (count - d) % 2 != 0:
            raise ValueError(
                f"impossible IR job count {count} for d={d} "
                "(totals are d + 2b)"
            )
    mean_jobs = sum(counts) / len(counts)
    return _invert_cost(mean_jobs, d)


def estimate_from_votes(
    winner_votes: int, loser_votes: int, d: Optional[int] = None
) -> float:
    """Estimate ``r`` from aggregate agree/disagree counts across tasks.

    ``winner_votes`` jobs agreed with their task's accepted value and
    ``loser_votes`` did not.  If every accepted value were correct, the
    agreement fraction would estimate ``r`` directly; accepted values are
    themselves wrong with probability ``1 - R_IR(r, d)``, so when ``d``
    is supplied the estimate is refined by one fixed-point correction:

        agree_frac = R * r + (1 - R) * (1 - r)

    solved for ``r`` with ``R = R_IR(r, d)`` iterated to convergence.
    """
    if winner_votes < 0 or loser_votes < 0:
        raise ValueError("vote counts must be non-negative")
    total = winner_votes + loser_votes
    if total == 0:
        raise ValueError("need at least one vote")
    agree_frac = winner_votes / total
    if d is None:
        return agree_frac
    if d < 1:
        raise ValueError(f"margin d must be positive, got {d}")
    r = max(0.5 + 1e-9, min(1.0 - 1e-9, agree_frac))
    for _ in range(100):
        reliability = iterative_reliability(r, d)
        denominator = 2.0 * reliability - 1.0
        if denominator <= 1e-9:
            break
        corrected = (agree_frac - (1.0 - reliability)) / denominator
        corrected = max(0.5 + 1e-9, min(1.0 - 1e-9, corrected))
        if abs(corrected - r) < 1e-12:
            r = corrected
            break
        r = corrected
    return r


@dataclass(frozen=True)
class DegradationAlarm:
    """Raised condition from :func:`degradation_monitor`."""

    task_index: int
    estimated_r: float
    window_mean_jobs: float


def degradation_monitor(
    job_counts: Iterable[int],
    d: int,
    *,
    window: int = 200,
    floor: float = 0.6,
) -> List[DegradationAlarm]:
    """Scan an IR job-count stream for pool degradation.

    Maintains a sliding window of per-task totals; whenever the window is
    full and its implied ``r`` (cost inversion) sits below ``floor``, an
    alarm is emitted (one per window position, so a sustained degradation
    produces a run of alarms whose length measures its duration).
    """
    if window < 2:
        raise ValueError(f"window must be at least 2, got {window}")
    if not 0.5 < floor < 1.0:
        raise ValueError(f"floor must lie in (0.5, 1), got {floor}")
    alarms: List[DegradationAlarm] = []
    buffer: List[int] = []
    total = 0
    for index, count in enumerate(job_counts):
        buffer.append(count)
        total += count
        if len(buffer) > window:
            total -= buffer.pop(0)
        if len(buffer) == window:
            mean_jobs = total / window
            estimate = _invert_cost(mean_jobs, d)
            if estimate < floor:
                alarms.append(
                    DegradationAlarm(
                        task_index=index,
                        estimated_r=estimate,
                        window_mean_jobs=mean_jobs,
                    )
                )
    return alarms
