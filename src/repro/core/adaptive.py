"""BOINC-style adaptive replication -- a comparator (Section 5.1).

BOINC's adaptive replication "prevents replication of a task if a trusted
node returns its result": each host accumulates trust by having results
validated against a quorum; once trusted, its results are accepted without
replication (with occasional random audits).  The paper argues malicious
nodes can earn trust and then defect, which the ablation experiments
reproduce (see ``repro.experiments.ablations``).

Implementation sketch (mirrors BOINC's host scheduling logic in spirit):

* every node starts untrusted; untrusted nodes' tasks use a quorum of
  ``quorum`` matching results (dispatch lazily like progressive
  redundancy with consensus = quorum);
* a node becomes trusted after ``trust_after`` consecutive validated
  results; a validation failure resets its streak;
* a trusted node's first result is accepted outright, except that with
  probability ``audit_rate`` the task is replicated anyway (the audit),
  keeping trust honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import random

from repro.core.strategy import RedundancyStrategy
from repro.core.types import Decision, JobOutcome, TaskVerdict, VoteState


@dataclass
class TrustRecord:
    """Consecutive-validation streak for one node."""

    streak: int = 0
    validated: int = 0
    invalidated: int = 0


class AdaptiveReplication(RedundancyStrategy):
    """Trust-gated replication in the style of BOINC adaptive replication.

    Implements :class:`~repro.core.strategy.NodeAware`; requires node ids
    on outcomes.

    Args:
        quorum: Matching results required for untrusted (or audited) tasks.
        trust_after: Consecutive validations before a node is trusted.
        audit_rate: Probability a trusted result is replicated anyway.
        rng: Source of audit randomness (injectable for determinism).
    """

    def __init__(
        self,
        quorum: int = 2,
        trust_after: int = 10,
        audit_rate: float = 0.05,
        rng: Optional[random.Random] = None,
    ) -> None:
        if quorum < 2:
            raise ValueError(f"quorum must be at least 2, got {quorum}")
        if trust_after < 1:
            raise ValueError(f"trust_after must be positive, got {trust_after}")
        if not 0.0 <= audit_rate <= 1.0:
            raise ValueError(f"audit_rate must lie in [0, 1], got {audit_rate}")
        self.quorum = quorum
        self.trust_after = trust_after
        self.audit_rate = audit_rate
        self.rng = rng or random.Random(0)
        self._trust: Dict[int, TrustRecord] = {}
        self._task_first_node: Dict[int, Optional[int]] = {}
        self._task_nodes: Dict[int, Dict] = {}
        self._task_audited: Dict[int, bool] = {}
        self._current_task: Optional[int] = None
        self.name = f"adaptive(q={quorum}, trust_after={trust_after})"

    # ------------------------------------------------------------------
    # Trust bookkeeping (NodeAware)
    # ------------------------------------------------------------------

    def trust_record(self, node_id: int) -> TrustRecord:
        record = self._trust.get(node_id)
        if record is None:
            record = TrustRecord()
            self._trust[node_id] = record
        return record

    def is_trusted(self, node_id: Optional[int]) -> bool:
        if node_id is None:
            return False
        return self.trust_record(node_id).streak >= self.trust_after

    def record_outcome(self, task_id: int, outcome: JobOutcome) -> None:
        self._current_task = task_id
        if task_id not in self._task_first_node:
            self._task_first_node[task_id] = outcome.node_id
            self._task_audited[task_id] = self.rng.random() < self.audit_rate
        if outcome.value is not None:
            self._task_nodes.setdefault(task_id, {}).setdefault(
                outcome.value, []
            ).append(outcome.node_id)

    def task_finished(self, task_id: int, verdict: TaskVerdict) -> None:
        votes = self._task_nodes.pop(task_id, {})
        self._task_first_node.pop(task_id, None)
        self._task_audited.pop(task_id, None)
        # Update trust: nodes agreeing with the accepted value validate,
        # others invalidate, exactly as BOINC's validator would see it.
        for value, node_ids in votes.items():
            for node_id in node_ids:
                if node_id is None:
                    continue
                record = self.trust_record(node_id)
                if value == verdict.value:
                    record.streak += 1
                    record.validated += 1
                else:
                    record.streak = 0
                    record.invalidated += 1

    # ------------------------------------------------------------------
    # RedundancyStrategy
    # ------------------------------------------------------------------

    def initial_jobs(self) -> int:
        return 1

    def decide(self, vote: VoteState) -> Decision:
        task_id = self._current_task
        if vote.leader is None:
            return Decision.dispatch(1)
        first_node = self._task_first_node.get(task_id) if task_id is not None else None
        audited = self._task_audited.get(task_id, False) if task_id is not None else False
        single_result = vote.total_completed == 1 and vote.responses == 1
        if single_result and self.is_trusted(first_node) and not audited:
            return Decision.accept(vote.leader)
        # Replicated path: lazily build a quorum of matching results.
        if vote.leader_count >= self.quorum:
            return Decision.accept(vote.leader)
        return Decision.dispatch(self.quorum - vote.leader_count)

    def describe(self) -> str:
        return self.name
