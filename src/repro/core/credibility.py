"""Credibility-based fault tolerance (Sarmenta 2002) -- a comparator.

Sections 5.1 and 6 of the paper contrast iterative redundancy with
credibility-based fault tolerance: a volunteer-computing defence that
estimates each node's reliability from *spot-checks* (jobs whose answer
the server already knows), combines per-node credibilities into a
conditional probability that a result group is correct, and blacklists
nodes caught cheating.  Its weaknesses, which the ablation experiments
reproduce:

* spot-check jobs are pure overhead (they compute nothing new),
* estimating credibility requires storing per-node history,
* malicious nodes can *earn* credibility and then defect, and
* blacklisted nodes can return under a fresh identity (whitewashing),
  resetting their credibility to that of a new volunteer.

The implementation follows Sarmenta's credibility definitions in
simplified form: a node that has survived ``s`` spot-checks without being
caught, under an assumed population fault fraction ``f``, has credibility

    Cr(node) = 1 - f / (s + 1)

(the more checks survived, the likelier the node is honest), and a result
group's credibility is the Bayesian combination of its supporters' and
dissenters' credibilities, structurally the heterogeneous version of the
paper's q(r, a, b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.core.strategy import RedundancyStrategy
from repro.core.types import Decision, JobOutcome, ResultValue, TaskVerdict, VoteState


@dataclass
class NodeRecord:
    """Per-node reputation state kept by the credibility manager."""

    spot_checks_passed: int = 0
    results_reported: int = 0
    blacklisted: bool = False


class CredibilityManager:
    """Tracks spot-check history and computes node/result credibilities.

    Args:
        assumed_fault_fraction: Sarmenta's ``f`` -- the presumed fraction
            of faulty nodes in the population; bounds how much trust a
            brand-new node gets (Cr = 1 - f).
        spot_check_rate: Fraction of job slots the server diverts to
            spot-checks (overhead the ablation measures).
    """

    def __init__(
        self,
        assumed_fault_fraction: float = 0.3,
        spot_check_rate: float = 0.1,
    ) -> None:
        if not 0.0 < assumed_fault_fraction < 1.0:
            raise ValueError("assumed fault fraction must lie in (0, 1)")
        if not 0.0 <= spot_check_rate < 1.0:
            raise ValueError("spot-check rate must lie in [0, 1)")
        self.assumed_fault_fraction = assumed_fault_fraction
        self.spot_check_rate = spot_check_rate
        self._nodes: Dict[int, NodeRecord] = {}
        self.spot_checks_issued = 0
        self.blacklist_events = 0

    # ------------------------------------------------------------------
    # Reputation bookkeeping
    # ------------------------------------------------------------------

    def record(self, node_id: int) -> NodeRecord:
        record = self._nodes.get(node_id)
        if record is None:
            record = NodeRecord()
            self._nodes[node_id] = record
        return record

    def node_credibility(self, node_id: Optional[int]) -> float:
        """Cr(node) = 1 - f / (s + 1); blacklisted nodes get 0.5 (a coin
        flip: their answers carry no information)."""
        if node_id is None:
            return 1.0 - self.assumed_fault_fraction
        record = self.record(node_id)
        if record.blacklisted:
            return 0.5
        return 1.0 - self.assumed_fault_fraction / (record.spot_checks_passed + 1)

    def spot_check(self, node_id: int, *, passed: bool) -> None:
        """Record a spot-check outcome for ``node_id``."""
        self.spot_checks_issued += 1
        record = self.record(node_id)
        if passed:
            record.spot_checks_passed += 1
        else:
            if not record.blacklisted:
                self.blacklist_events += 1
            record.blacklisted = True

    def forget(self, node_id: int) -> None:
        """The node left (or *whitewashed*: rejoined under a new id)."""
        self._nodes.pop(node_id, None)

    def is_blacklisted(self, node_id: int) -> bool:
        return self.record(node_id).blacklisted

    # ------------------------------------------------------------------
    # Result-group credibility
    # ------------------------------------------------------------------

    def group_credibility(
        self,
        supporters: Iterable[Optional[int]],
        dissenters: Iterable[Optional[int]],
    ) -> float:
        """Probability the supporters' common result is correct.

        Heterogeneous Bayesian vote: with per-node credibilities ``c_i``,

            P = prod_A c_i * prod_B (1-c_j)
                / (that + prod_A (1-c_i) * prod_B c_j)

        which reduces to the paper's q(r, a, b) when all credibilities
        equal ``r``.  Computed in log space.
        """
        log_support = 0.0
        log_oppose = 0.0
        for node_id in supporters:
            c = _clamp(self.node_credibility(node_id))
            log_support += math.log(c)
            log_oppose += math.log1p(-c)
        for node_id in dissenters:
            c = _clamp(self.node_credibility(node_id))
            log_support += math.log1p(-c)
            log_oppose += math.log(c)
        # P = 1 / (1 + exp(log_oppose - log_support))
        diff = log_oppose - log_support
        if diff > 700:
            return math.exp(-diff)
        return 1.0 / (1.0 + math.exp(diff))


def _clamp(p: float, eps: float = 1e-9) -> float:
    return min(1.0 - eps, max(eps, p))


class CredibilityStrategy(RedundancyStrategy):
    """Validation policy: accept once the majority group's credibility
    (computed from per-node reputations) reaches the target.

    Implements the :class:`~repro.core.strategy.NodeAware` protocol: the
    substrate must attach node ids to outcomes.  Unlike iterative
    redundancy, the decision depends on *who* voted, so the strategy keeps
    a per-task map of supporters/dissenters.
    """

    def __init__(
        self,
        manager: CredibilityManager,
        target: float = 0.99,
        *,
        max_group: int = 64,
    ) -> None:
        if not 0.5 < target < 1.0:
            raise ValueError(f"target must lie in (0.5, 1), got {target}")
        self.manager = manager
        self.target = target
        self.max_group = max_group
        self._task_votes: Dict[int, Dict[ResultValue, list]] = {}
        self._current_task: Optional[int] = None
        self.name = f"credibility(R={target})"

    # -- NodeAware protocol -------------------------------------------------

    def record_outcome(self, task_id: int, outcome: JobOutcome) -> None:
        if outcome.value is None:
            return
        votes = self._task_votes.setdefault(task_id, {})
        votes.setdefault(outcome.value, []).append(outcome.node_id)
        self._current_task = task_id
        node_id = outcome.node_id
        if node_id is not None:
            self.manager.record(node_id).results_reported += 1

    def task_finished(self, task_id: int, verdict: TaskVerdict) -> None:
        self._task_votes.pop(task_id, None)

    # -- RedundancyStrategy -------------------------------------------------

    def initial_jobs(self) -> int:
        return 1

    def decide(self, vote: VoteState) -> Decision:
        task_id = self._current_task
        votes = self._task_votes.get(task_id, {}) if task_id is not None else {}
        if not votes:
            return Decision.dispatch(1)
        # Rank groups by combined credibility against all others.
        best_value = None
        best_credibility = -1.0
        for value, supporters in votes.items():
            dissenters = [
                node
                for other, nodes in votes.items()
                if other != value
                for node in nodes
            ]
            credibility = self.manager.group_credibility(supporters, dissenters)
            if credibility > best_credibility:
                best_credibility = credibility
                best_value = value
        if best_credibility >= self.target:
            return Decision.accept(best_value)
        if vote.total_completed >= self.max_group:
            # Reputation estimates cannot reach the target (e.g. heavy
            # whitewashing keeps every credibility low); cut losses.
            return Decision.accept(best_value)
        return Decision.dispatch(1)

    def describe(self) -> str:
        return self.name
