"""Vote-tallying helpers shared by strategies, validators, and analysis.

The binary Byzantine worst case needs only majority checks; the §5.3
relaxation to arbitrary result values needs plurality.  Both live here so
every substrate counts votes the same way.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.types import JobOutcome, ResultValue, VoteState


def tally_results(outcomes: Iterable[JobOutcome]) -> VoteState:
    """Fold a sequence of job outcomes into a fresh :class:`VoteState`."""
    state = VoteState()
    for outcome in outcomes:
        state.record(outcome)
    return state


def majority_value(state: VoteState, k: int) -> Optional[ResultValue]:
    """The value holding at least ``(k + 1) // 2`` votes, if any.

    This is the consensus rule of k-vote traditional/progressive
    redundancy: a result stands once a majority of the *planned* ``k``
    executions agree on it.  Returns ``None`` when no value has reached
    the majority threshold yet.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    threshold = (k + 1) // 2
    leader = state.leader
    if leader is not None and state.leader_count >= threshold:
        return leader
    return None


def consensus_reached(state: VoteState, k: int) -> bool:
    """True once some value holds a majority of ``k`` planned votes."""
    return majority_value(state, k) is not None


def plurality_value(state: VoteState, *, min_lead: int = 1) -> Optional[ResultValue]:
    """The value leading all others by at least ``min_lead`` votes.

    Used for the §5.3 non-binary relaxation: when failing nodes do not
    collude on a single wrong value, the correct answer can win by
    plurality even without a majority.
    """
    if min_lead < 1:
        raise ValueError(f"min_lead must be at least 1, got {min_lead}")
    if state.leader is None:
        return None
    if state.margin >= min_lead:
        return state.leader
    return None


def unanimous_value(state: VoteState) -> Optional[ResultValue]:
    """The single reported value if every response agrees, else ``None``."""
    ranked = state.ranked()
    if len(ranked) == 1:
        return ranked[0][0]
    return None
