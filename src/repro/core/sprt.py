"""Iterative redundancy as a sequential probability ratio test (SPRT).

A lens the paper does not spell out but that illuminates *why* iterative
redundancy is cost-optimal (Section 3.3's claim): the margin rule is
exactly Wald's sequential probability ratio test between the hypotheses

* H+ : the leading answer is correct (each vote favours it w.p. ``r``),
* H- : the leading answer is wrong  (each vote favours it w.p. ``1-r``),

with symmetric log-likelihood-ratio thresholds.  Each agreeing vote adds
``log(r / (1-r))`` to the log-likelihood ratio and each disagreeing vote
subtracts the same amount, so the LLR is proportional to the margin
``a - b``, and "stop when the margin reaches d" is "stop when the LLR
reaches d * log(r/(1-r))".  Wald's classic optimality theorem (the SPRT
minimises expected sample size among all tests with equal error rates)
is precisely the paper's minimum-cost claim, and Wald's error bounds
reproduce Equation (6).

This module makes the correspondence executable: conversions between the
margin ``d`` and SPRT thresholds/error rates, plus Wald's expected sample
size, which agrees with Equation (5)'s closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.analysis import iterative_cost, iterative_reliability

__all__ = [
    "SprtDesign",
    "llr_per_vote",
    "margin_for_error_rate",
    "design_from_margin",
    "wald_expected_samples",
]


def llr_per_vote(r: float) -> float:
    """Log-likelihood-ratio contribution of one agreeing vote.

    Under H+ a vote agrees w.p. ``r``; under H- w.p. ``1-r``; the LLR
    step is log(r / (1-r)) (and its negation for a disagreeing vote).
    """
    if not 0.0 < r < 1.0:
        raise ValueError(f"r must lie strictly in (0, 1), got {r}")
    return math.log(r / (1.0 - r))


@dataclass(frozen=True)
class SprtDesign:
    """A symmetric SPRT characterised by the paper's margin parameter.

    Attributes:
        d: The margin (number of net agreeing votes) at which the test
            stops.
        r: The per-vote reliability the design is evaluated against.
        error_rate: Probability of accepting the wrong hypothesis
            (= 1 - R_IR(r, d); both error directions are equal by
            symmetry).
        threshold: The LLR stopping threshold, d * log(r / (1-r)).
    """

    d: int
    r: float
    error_rate: float
    threshold: float

    @property
    def reliability(self) -> float:
        return 1.0 - self.error_rate

    @property
    def expected_samples(self) -> float:
        """Expected votes consumed = the paper's cost factor C_IR(r, d)."""
        return iterative_cost(self.r, self.d)


def design_from_margin(r: float, d: int) -> SprtDesign:
    """Interpret margin ``d`` at reliability ``r`` as an SPRT design."""
    if d < 1:
        raise ValueError(f"margin must be positive, got {d}")
    reliability = iterative_reliability(r, d)
    return SprtDesign(
        d=d,
        r=r,
        error_rate=1.0 - reliability,
        threshold=d * llr_per_vote(r),
    )


def margin_for_error_rate(r: float, alpha: float) -> int:
    """Smallest margin whose symmetric error rate is at most ``alpha``.

    Wald's threshold for a symmetric test with error ``alpha`` is
    ``log((1 - alpha) / alpha)``; dividing by the per-vote LLR and
    rounding up gives the margin.  Identical to
    :func:`repro.core.confidence.required_margin` with target
    ``1 - alpha`` -- the two derivations meet, which the tests check.
    """
    if not 0.0 < alpha < 0.5:
        raise ValueError(f"error rate must lie in (0, 0.5), got {alpha}")
    if r <= 0.5:
        raise ValueError(f"SPRT between H+ and H- needs r > 0.5, got {r}")
    threshold = math.log((1.0 - alpha) / alpha)
    d = max(1, math.ceil(threshold / llr_per_vote(r) - 1e-12))
    # Guard the boundary exactly as required_margin does -- comparing on
    # the reliability side, since 1.0 - x and the complement probability
    # round differently in floating point.
    target = 1.0 - alpha
    while iterative_reliability(r, d) < target:
        d += 1
    while d > 1 and iterative_reliability(r, d - 1) >= target:
        d -= 1
    return d


def wald_expected_samples(r: float, d: int) -> float:
    """Wald's expected-sample-size identity for the symmetric test.

    E[N] = E[LLR at stopping] / E[LLR per vote].  With symmetric
    absorption at +-d * step and acceptance probability R,

        E[N] = d * (2R - 1) / (2r - 1)

    -- the same closed form as the gambler's-ruin derivation of
    Equation (5), reached by an independent argument (optional stopping /
    Wald's identity instead of first-step analysis).
    """
    if d < 1:
        raise ValueError(f"margin must be positive, got {d}")
    if not 0.0 < r < 1.0:
        raise ValueError(f"r must lie strictly in (0, 1), got {r}")
    if abs(r - 0.5) < 1e-12:
        return float(d * d)
    reliability = iterative_reliability(r, d)
    step_mean = (2.0 * r - 1.0) * llr_per_vote(r)
    stop_mean = (2.0 * reliability - 1.0) * d * llr_per_vote(r)
    return stop_mean / step_mean
