"""Substrate-free strategy execution: run a strategy against a result
source and observe its verdict, job count, and wave count.

This is the lightest of the three substrates (the others are the DES DCA
model and the volunteer substrate): no clock, no nodes, just the decision
loop.  It powers Monte-Carlo estimates of cost and reliability that
cross-check the closed forms, plus the strategy unit tests, which feed
deterministic result streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.strategy import RedundancyStrategy, is_node_aware
from repro.core.types import JobOutcome, ResultValue, TaskVerdict, VoteState

#: Produces one job's outcome; receives the 0-based global job index.
ResultSource = Callable[[int], JobOutcome]


class WaveLimitExceeded(RuntimeError):
    """The strategy kept dispatching past the configured safety limit."""


def run_task(
    strategy: RedundancyStrategy,
    source: ResultSource,
    *,
    true_value: Optional[ResultValue] = None,
    task_id: int = 0,
    max_waves: int = 10_000,
) -> TaskVerdict:
    """Drive ``strategy`` to a verdict for one task.

    Args:
        strategy: The redundancy strategy to execute.
        source: Called once per job with the running job index; returns the
            job's outcome.  Use :func:`bernoulli_source` for the paper's
            binary model.
        true_value: Ground truth, used only to mark the verdict's
            ``correct`` field (``None`` leaves it unknown).
        task_id: Identifier passed to node-aware strategies.
        max_waves: Safety valve; iterative redundancy is unbounded in
            principle, so runaway loops raise instead of spinning.

    Returns:
        The accepted :class:`TaskVerdict`.
    """
    vote = VoteState()
    node_aware = is_node_aware(strategy)
    record = vote.record
    decide = strategy.decide
    jobs_used = 0
    waves = 0
    pending = strategy.initial_jobs()
    while True:
        if waves >= max_waves:
            raise WaveLimitExceeded(
                f"{strategy.describe()} exceeded {max_waves} waves"
            )
        waves += 1
        vote.dispatched(pending)
        for _ in range(pending):
            outcome = source(jobs_used)
            jobs_used += 1
            record(outcome)
            if node_aware:
                strategy.record_outcome(task_id, outcome)
        decision = decide(vote)
        if decision.done:
            verdict = TaskVerdict(
                value=decision.accepted,
                correct=None if true_value is None else decision.accepted == true_value,
                jobs_used=jobs_used,
                waves=waves,
            )
            if node_aware:
                strategy.task_finished(task_id, verdict)
            return verdict
        pending = decision.more_jobs


def bernoulli_source(
    rng: random.Random,
    r: float,
    *,
    correct: ResultValue = True,
    wrong: ResultValue = False,
) -> ResultSource:
    """The paper's binary worst case: each job is correct with probability
    ``r``, otherwise reports the single colluding wrong value."""
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"reliability must lie in [0, 1], got {r}")
    draw = rng.random

    def source(index: int) -> JobOutcome:
        value = correct if draw() < r else wrong
        return JobOutcome(value=value, node_id=index)

    return source


def scripted_source(values: Sequence[Optional[ResultValue]]) -> ResultSource:
    """Deterministic source replaying ``values`` in order (tests)."""

    def source(index: int) -> JobOutcome:
        if index >= len(values):
            raise IndexError(
                f"strategy requested job {index} but the script has only "
                f"{len(values)} results"
            )
        return JobOutcome(value=values[index], node_id=index)

    return source


@dataclass
class MonteCarloEstimate:
    """Aggregate of many :func:`run_task` replications."""

    tasks: int
    correct: int
    total_jobs: int
    total_waves: int
    max_jobs: int

    @property
    def reliability(self) -> float:
        return self.correct / self.tasks

    @property
    def cost_factor(self) -> float:
        return self.total_jobs / self.tasks

    @property
    def mean_waves(self) -> float:
        return self.total_waves / self.tasks


def monte_carlo(
    strategy_factory: Callable[[], RedundancyStrategy],
    r: float,
    tasks: int,
    *,
    seed: int = 0,
) -> MonteCarloEstimate:
    """Estimate reliability and cost factor by direct replication.

    A fresh strategy instance is built per run (via ``strategy_factory``)
    so node-aware strategies cannot leak reputation state between
    independent estimates.
    """
    if tasks < 1:
        raise ValueError(f"need at least one task, got {tasks}")
    rng = random.Random(seed)
    strategy = strategy_factory()
    correct = 0
    total_jobs = 0
    total_waves = 0
    max_jobs = 0
    for task_id in range(tasks):
        verdict = run_task(
            strategy,
            bernoulli_source(rng, r),
            true_value=True,
            task_id=task_id,
        )
        correct += 1 if verdict.correct else 0
        total_jobs += verdict.jobs_used
        total_waves += verdict.waves
        max_jobs = max(max_jobs, verdict.jobs_used)
    return MonteCarloEstimate(
        tasks=tasks,
        correct=correct,
        total_jobs=total_jobs,
        total_waves=total_waves,
        max_jobs=max_jobs,
    )
