"""The paper's contribution: redundancy strategies and their analysis.

This package is substrate-independent.  Each redundancy technique is a
:class:`~repro.core.strategy.RedundancyStrategy`: a pure decision function
from a running vote :class:`~repro.core.types.VoteState` to a
:class:`~repro.core.types.Decision` (dispatch more jobs, or accept a
result).  The same strategy objects drive

* the closed-form analysis in :mod:`repro.core.analysis` (Equations (1)-(6)
  of the paper),
* the discrete-event DCA model in :mod:`repro.dca`, and
* the BOINC-like volunteer substrate in :mod:`repro.volunteer`.

The three techniques from the paper:

* :class:`~repro.core.traditional.TraditionalRedundancy` -- k-modular
  redundancy (Figure 2a),
* :class:`~repro.core.progressive.ProgressiveRedundancy` -- Figure 2b,
* :class:`~repro.core.iterative.IterativeRedundancy` -- the margin
  algorithm of Figure 4 (the paper's contribution).

Plus comparators discussed in Sections 5-6:

* :class:`~repro.core.iterative_complex.ComplexIterativeRedundancy` -- the
  naive, r-aware form of iterative redundancy (Theorem 1 proves it
  dispatches identically to the simple form),
* :class:`~repro.core.credibility.CredibilityStrategy` -- credibility-based
  fault tolerance (Sarmenta),
* :class:`~repro.core.adaptive.AdaptiveReplication` -- BOINC-style
  adaptive replication,
* :class:`~repro.core.noredundancy.NoRedundancy` -- the k = 1 baseline.
"""

from repro.core.types import (
    Decision,
    JobOutcome,
    ResultValue,
    TaskVerdict,
    VoteState,
)
from repro.core.voting import (
    consensus_reached,
    majority_value,
    plurality_value,
    tally_results,
)
from repro.core.confidence import (
    confidence,
    margin_confidence,
    required_agreement,
    required_margin,
)
from repro.core.strategy import RedundancyStrategy
from repro.core.noredundancy import NoRedundancy
from repro.core.traditional import TraditionalRedundancy
from repro.core.progressive import ProgressiveRedundancy
from repro.core.iterative import IterativeRedundancy
from repro.core.iterative_complex import ComplexIterativeRedundancy
from repro.core.credibility import CredibilityManager, CredibilityStrategy
from repro.core.adaptive import AdaptiveReplication
from repro.core.analytic import (
    AnalyticPrediction,
    analytic_prediction,
    supports_analytic,
)
from repro.core import analysis, estimation, sprt

__all__ = [
    "AdaptiveReplication",
    "AnalyticPrediction",
    "analytic_prediction",
    "supports_analytic",
    "ComplexIterativeRedundancy",
    "CredibilityManager",
    "CredibilityStrategy",
    "Decision",
    "IterativeRedundancy",
    "JobOutcome",
    "NoRedundancy",
    "ProgressiveRedundancy",
    "RedundancyStrategy",
    "ResultValue",
    "TaskVerdict",
    "TraditionalRedundancy",
    "VoteState",
    "analysis",
    "confidence",
    "estimation",
    "sprt",
    "consensus_reached",
    "majority_value",
    "margin_confidence",
    "plurality_value",
    "required_agreement",
    "required_margin",
    "tally_results",
]
