"""Iterative redundancy -- the paper's contribution (Figure 4).

The simple margin algorithm: keep dispatching jobs until one result value
leads the runner-up by ``d`` votes, then accept the leader.  Each wave
dispatches exactly ``d - (a - b)`` jobs -- the minimum that could close the
margin -- mirroring the pseudocode:

.. code-block:: none

    COMPUTE(Task task, int d)
        a <- 0; b <- 0
        while a - b < d:
            deploy d - (a - b) jobs on independent random nodes
            a <- a + number of a results;  b <- b + number of b results
            if a < b: swap a, b
        return result a

By Theorems 1 and 2, the confidence that the leader is correct depends
*only* on the margin ``a - b``, never on the absolute counts, so this
algorithm dispatches exactly the same jobs as the "complex" algorithm that
recomputes ``d(r, R, b)`` from the node reliability ``r`` at every step --
without needing to know ``r`` at all.

System reliability is ``r^d / (r^d + (1-r)^d)`` (Equation (6)); expected
cost is Equation (5), with closed form ``d (2R - 1) / (2r - 1)`` (see
:func:`repro.core.analysis.iterative_cost`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.confidence import required_margin
from repro.core.strategy import RedundancyStrategy
from repro.core.types import Decision, VoteState


class IterativeRedundancy(RedundancyStrategy):
    """The simple margin algorithm: accept once the leader is ``d`` ahead.

    Args:
        d: Required margin between the leading and runner-up vote counts.
            The user chooses ``d`` directly (specifying "how much
            improvement is needed"), or derives it from a reliability
            target via :meth:`for_target` when ``r`` happens to be known.

    Example:
        >>> strategy = IterativeRedundancy(4)
        >>> strategy.initial_jobs()
        4
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ValueError(f"margin d must be at least 1, got {d}")
        self.d = d
        self.name = f"iterative(d={d})"

    @classmethod
    def for_target(cls, r: float, target_reliability: float) -> "IterativeRedundancy":
        """Build the strategy achieving ``target_reliability`` when the
        average node reliability ``r`` *is* known.

        This mirrors the paper's example (r = 0.7, R = 0.97 gives d = 4,
        using the paper's rounding of q(0.7, 4, 0) = 0.967 to 0.97).  The
        algorithm itself never uses ``r``; it is consumed only here, once,
        to pick ``d``.
        """
        d = required_margin(r, target_reliability)
        return cls(max(1, d))

    def initial_jobs(self) -> int:
        # With no responses yet the margin is 0, so the first wave is d.
        return self.d

    def decide(self, vote: VoteState) -> Decision:
        margin = vote.margin
        if margin >= self.d and vote.leader is not None:
            return Decision.accept(vote.leader)
        if vote.leader is None:
            # Every job so far failed silently; start over with a full wave.
            return Decision.dispatch(self.d)
        return Decision.dispatch(self.d - margin)

    def max_total_jobs(self) -> Optional[int]:
        """Unbounded: any one task may need arbitrarily many waves."""
        return None

    def describe(self) -> str:
        return self.name
