"""Progressive redundancy (Figure 2b of the paper).

Derived from self-configuring optimistic programming (Bondavalli et al.),
re-targeted at DCAs.  The key observation: traditional redundancy keeps
dispatching jobs even after a consensus is already inevitable.  Progressive
redundancy dispatches only ``(k + 1) / 2`` jobs first -- the minimum that
could possibly produce a consensus -- and then, whenever consensus is still
open, dispatches exactly the number of additional jobs that would close it
in the best case.

For the binary Byzantine model the total number of jobs never exceeds
``k`` and at most ``(k - 1) / 2`` extra waves follow the first (Section
5.2).  Reliability is identical to traditional redundancy (Equation (4));
expected cost is Equation (3).
"""

from __future__ import annotations

from repro.core.strategy import RedundancyStrategy
from repro.core.traditional import validate_k
from repro.core.types import Decision, VoteState


class ProgressiveRedundancy(RedundancyStrategy):
    """k-vote progressive redundancy: dispatch lazily toward a consensus.

    Args:
        k: Odd vote size; a value wins once it holds ``(k + 1) / 2`` votes.

    Example:
        >>> strategy = ProgressiveRedundancy(19)
        >>> strategy.initial_jobs()   # the consensus size, not k
        10
    """

    def __init__(self, k: int) -> None:
        validate_k(k)
        self.k = k
        self.consensus = (k + 1) // 2
        self.name = f"progressive(k={k})"

    def initial_jobs(self) -> int:
        return self.consensus

    def decide(self, vote: VoteState) -> Decision:
        if vote.leader_count >= self.consensus:
            return Decision.accept(vote.leader)
        # Best case: every additional job agrees with the current leader,
        # so dispatch exactly the leader's deficit.  Before any response
        # (all first-wave jobs timed out) this re-dispatches a full wave.
        deficit = self.consensus - vote.leader_count
        return Decision.dispatch(deficit)

    def max_total_jobs(self) -> int:
        """In the binary model a decision needs at most ``k`` responses.

        Every response raises one value's count; the process stops when a
        count reaches ``(k + 1) / 2``, so at worst both values sit one vote
        short: ``2 * ((k + 1) / 2 - 1) + 1 = k`` responses.  (With silent
        failures replaced by re-issued jobs, *dispatches* can exceed this;
        the bound applies to counted responses.)
        """
        return self.k

    def max_waves(self) -> int:
        """Paper Section 5.2: at most ``(k - 1) / 2`` waves follow the
        first, so ``(k + 1) / 2`` waves total."""
        return (self.k + 1) // 2

    def describe(self) -> str:
        return self.name
