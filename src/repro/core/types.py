"""Shared value types for the redundancy library.

The paper's threat model (Section 2.2) reduces voting to two possible
result values -- the correct one and the single colluding wrong one -- but
Section 5.3 relaxes this to arbitrary result values with plurality voting.
:class:`VoteState` therefore tallies arbitrary hashable result values; the
binary worst case is simply the special case of two values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

#: A job's reported result.  Any hashable value; the binary Byzantine model
#: uses two distinct values (conventionally ``True`` for the correct answer
#: and ``False`` for the colluding wrong answer).
ResultValue = Hashable


@dataclass(frozen=True)
class JobOutcome:
    """What one job execution produced.

    Attributes:
        value: The reported result, or ``None`` if the node never reported
            (an unresponsive/timed-out node, treated as failed per §2.2).
        node_id: Identity of the node that ran the job (may be ``None`` in
            purely analytic settings).
        elapsed: Job latency in simulated time units, when known.
    """

    value: Optional[ResultValue]
    node_id: Optional[int] = None
    elapsed: Optional[float] = None

    @property
    def responded(self) -> bool:
        return self.value is not None


@dataclass
class VoteState:
    """The running vote for one task.

    Tracks how many jobs reported each result value plus how many timed out
    without reporting.  Strategies read this to decide whether to accept a
    result or dispatch more jobs.

    The paper's pseudocode (Figure 4) works with ``a`` (majority count) and
    ``b`` (minority count); :attr:`leader_count` and :attr:`runner_up_count`
    generalise those to any number of distinct values.
    """

    counts: Dict[ResultValue, int] = field(default_factory=dict)
    no_response: int = 0
    outstanding: int = 0
    #: Memoized :meth:`ranked` tuple; every decide call reads the leader,
    #: its count, and the runner-up count, which would otherwise re-sort
    #: the counts three times per vote on the hottest loop in the repo.
    _ranked_cache: Optional[Tuple[Tuple[ResultValue, int], ...]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def record(self, outcome: JobOutcome) -> None:
        """Fold one completed job into the vote."""
        if self.outstanding > 0:
            self.outstanding -= 1
        if outcome.value is None:
            self.no_response += 1
        else:
            counts = self.counts
            counts[outcome.value] = counts.get(outcome.value, 0) + 1
            self._ranked_cache = None

    def record_value(self, value: Optional[ResultValue]) -> None:
        """Shorthand for :meth:`record` with a bare value."""
        self.record(JobOutcome(value=value))

    def dispatched(self, n: int) -> None:
        """Note that ``n`` more jobs are now in flight."""
        if n < 0:
            raise ValueError("cannot dispatch a negative number of jobs")
        self.outstanding += n

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def responses(self) -> int:
        """Jobs that reported some value."""
        return sum(self.counts.values())

    @property
    def total_completed(self) -> int:
        """Jobs that finished, whether or not they reported a value."""
        return self.responses + self.no_response

    def ranked(self) -> Tuple[Tuple[ResultValue, int], ...]:
        """Result values sorted by descending count (ties by repr, for
        determinism).  Memoized until the next recorded vote."""
        ranked = self._ranked_cache
        if ranked is None:
            ranked = tuple(
                sorted(self.counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
            )
            self._ranked_cache = ranked
        return ranked

    @property
    def leader(self) -> Optional[ResultValue]:
        """The value with the most votes, or ``None`` before any response.

        On an exact tie the deterministic ordering of :meth:`ranked`
        applies; strategies never *accept* on a tie, so this only matters
        for bookkeeping.
        """
        ranked = self.ranked()
        return ranked[0][0] if ranked else None

    @property
    def leader_count(self) -> int:
        """Votes held by the leading value (the paper's ``a``)."""
        ranked = self.ranked()
        return ranked[0][1] if ranked else 0

    @property
    def runner_up_count(self) -> int:
        """Votes held by the second-place value (the paper's ``b``).

        In the binary model this is the full minority count; with more than
        two values, the margin over the *runner-up* is the conservative
        quantity (any other value is even further behind).
        """
        ranked = self.ranked()
        return ranked[1][1] if len(ranked) > 1 else 0

    @property
    def margin(self) -> int:
        """``leader_count - runner_up_count`` (the paper's ``a - b``)."""
        ranked = self.ranked()
        if not ranked:
            return 0
        if len(ranked) > 1:
            return ranked[0][1] - ranked[1][1]
        return ranked[0][1]

    def copy(self) -> "VoteState":
        return VoteState(
            counts=dict(self.counts),
            no_response=self.no_response,
            outstanding=self.outstanding,
        )

    @classmethod
    def from_counts(
        cls,
        counts: Mapping[ResultValue, int],
        *,
        no_response: int = 0,
        outstanding: int = 0,
    ) -> "VoteState":
        return cls(counts=dict(counts), no_response=no_response, outstanding=outstanding)

    @classmethod
    def binary(cls, agree: int, disagree: int) -> "VoteState":
        """A binary vote with ``agree`` votes for ``True`` and ``disagree``
        for ``False`` -- convenient in tests and analytic code."""
        counts: Dict[ResultValue, int] = {}
        if agree:
            counts[True] = agree
        if disagree:
            counts[False] = disagree
        return cls(counts=counts)


@dataclass(frozen=True)
class Decision:
    """A strategy's instruction to the task server.

    Exactly one of the two shapes:

    * ``Decision.dispatch(n)`` -- send ``n`` more jobs, then call the
      strategy again when they have completed;
    * ``Decision.accept(value)`` -- the vote is decided; ``value`` is the
      task's answer.
    """

    more_jobs: int = 0
    accepted: Optional[ResultValue] = None
    done: bool = False

    @classmethod
    def dispatch(cls, n: int) -> "Decision":
        if n <= 0:
            raise ValueError(f"must dispatch a positive number of jobs, got {n}")
        return cls(more_jobs=n)

    @classmethod
    def accept(cls, value: ResultValue) -> "Decision":
        return cls(accepted=value, done=True)

    def __post_init__(self) -> None:
        if self.done and self.more_jobs:
            raise ValueError("a decision cannot both accept and dispatch")


@dataclass(frozen=True)
class TaskVerdict:
    """The final record of one task's execution under a strategy.

    Attributes:
        value: The accepted result value.
        correct: Whether the accepted value equals the true answer (known
            only to the evaluation harness, never to the strategy).
        jobs_used: Total jobs dispatched for this task, including any that
            timed out and were replaced.
        waves: Number of dispatch rounds the strategy used.
        response_time: Simulated time from first dispatch to acceptance
            (``None`` in purely analytic settings).
    """

    value: ResultValue
    correct: Optional[bool]
    jobs_used: int
    waves: int
    response_time: Optional[float] = None
