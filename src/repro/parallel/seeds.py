"""Deterministic per-replicate seed derivation.

Every replicate of an experiment gets its own root seed, derived from the
experiment's base seed through :meth:`RngRegistry.spawn` with a
literal-prefixed replicate key (``replicate:<index>``).  The derivation is

* **deterministic** -- the same base seed always yields the same seed
  sequence, so serial and parallel runs (and reruns on other machines)
  see identical replicates;
* **decorrelated** -- spawn hashes the key with SHA-256, so neighbouring
  replicates do not share low-bit structure the way ``seed + i`` would;
* **order-free** -- seed ``i`` depends only on ``(base_seed, i)``, never
  on how many replicates ran before it or on which worker runs it.
"""

from __future__ import annotations

from typing import Tuple

from repro.sim.rng import RngRegistry

#: The spawn-key prefix; kept in one place so the stream set stays greppable.
REPLICATE_STREAM_PREFIX = "replicate:"

#: Spawn-key prefix for task-server shards (same derivation, disjoint
#: namespace: shard ``i`` of a run never collides with replicate ``i``).
SHARD_STREAM_PREFIX = "shard:"


def replicate_seeds(base_seed: int, count: int) -> Tuple[int, ...]:
    """Derive ``count`` decorrelated replicate seeds from ``base_seed``.

    Raises:
        ValueError: if ``count`` is not positive.
    """
    if count < 1:
        raise ValueError(f"need at least one replicate, got {count}")
    registry = RngRegistry(base_seed)
    return tuple(
        registry.spawn(f"replicate:{index}").seed for index in range(count)
    )


def shard_seeds(base_seed: int, count: int) -> Tuple[int, ...]:
    """Derive ``count`` decorrelated shard seeds from ``base_seed``.

    Same guarantees as :func:`replicate_seeds` (deterministic,
    decorrelated, order-free), under the ``shard:`` spawn namespace.

    Raises:
        ValueError: if ``count`` is not positive.
    """
    if count < 1:
        raise ValueError(f"need at least one shard, got {count}")
    registry = RngRegistry(base_seed)
    return tuple(registry.spawn(f"shard:{index}").seed for index in range(count))
