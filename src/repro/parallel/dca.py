"""DCA replicate worker: run one DES replicate, return an envelope.

This is the substrate glue between :func:`repro.parallel.engine.parallel_map`
and :func:`repro.dca.run_dca`.  The spec is a frozen, picklable value
object; the worker rebuilds the full :class:`~repro.dca.config.DcaConfig`
from it inside the (possibly remote) process, so no live simulation
state ever crosses a process boundary.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.core.distributions import ReliabilityDistribution
from repro.core.strategy import RedundancyStrategy
from repro.dca import DcaConfig, run_dca
from repro.parallel.engine import ReplicateError, parallel_map
from repro.parallel.envelope import ReplicateEnvelope, fingerprint_of
from repro.parallel.seeds import replicate_seeds


@dataclass(frozen=True)
class DcaReplicateSpec:
    """Everything one DCA replicate needs, in picklable form.

    The strategy is a *fresh instance* built by the caller's factory; it
    is pickled to the worker (parallel) or used directly (serial), so
    node-aware strategies start every replicate from a clean slate either
    way.  ``overrides`` carries extra :class:`DcaConfig` fields as a
    sorted tuple of pairs to keep the spec hashable.
    """

    seed: int
    strategy: RedundancyStrategy
    tasks: int
    nodes: int
    reliability: Union[float, ReliabilityDistribution]
    overrides: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class _RawReplicate:
    """What the worker ships back (position is attached by the parent)."""

    seed: int
    metrics: dict
    fingerprint: str
    duration: float
    worker_pid: int


def dca_replicate_specs(
    strategy_factory: Callable[[], RedundancyStrategy],
    *,
    tasks: int,
    nodes: int,
    reliability: Union[float, ReliabilityDistribution],
    replications: int,
    seed: int,
    **config_overrides: Any,
) -> List[DcaReplicateSpec]:
    """Build one spec per replicate with spawn-derived seeds."""
    seeds = replicate_seeds(seed, replications)
    overrides = tuple(sorted(config_overrides.items()))
    return [
        DcaReplicateSpec(
            seed=replicate_seed,
            strategy=strategy_factory(),
            tasks=tasks,
            nodes=nodes,
            reliability=reliability,
            overrides=overrides,
        )
        for replicate_seed in seeds
    ]


def run_dca_replicate(spec: DcaReplicateSpec) -> _RawReplicate:
    """Execute one replicate (the module-level, picklable worker)."""
    start = time.perf_counter()
    # Deep-copy so serial runs match parallel ones (where pickling makes
    # the copy) even if a caller shares one strategy across specs.
    report = run_dca(
        DcaConfig(
            strategy=copy.deepcopy(spec.strategy),
            tasks=spec.tasks,
            nodes=spec.nodes,
            reliability=spec.reliability,
            seed=spec.seed,
            **dict(spec.overrides),
        )
    )
    metrics = report.as_dict()
    return _RawReplicate(
        seed=spec.seed,
        metrics=metrics,
        fingerprint=fingerprint_of(metrics),
        duration=time.perf_counter() - start,
        worker_pid=os.getpid(),
    )


def run_dca_replicates(
    specs: Sequence[DcaReplicateSpec],
    *,
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[ReplicateEnvelope]:
    """Run DCA replicates (serial or fanned out) and envelope the results.

    Raises:
        ReplicateError: naming the failed replicate's position *and
            seed* when any replicate crashes.
    """
    specs = list(specs)
    try:
        raws = parallel_map(
            run_dca_replicate, specs, jobs=jobs, chunk_size=chunk_size
        )
    except ReplicateError as exc:
        if 0 <= exc.position < len(specs):
            failed = specs[exc.position]
            raise ReplicateError(
                f"replicate #{exc.position} (seed {failed.seed}, "
                f"strategy {failed.strategy.describe()}) failed: "
                f"{exc.error_type}: {exc}",
                position=exc.position,
                error_type=exc.error_type,
                traceback_text=exc.traceback_text,
            ) from exc
        raise
    return [
        ReplicateEnvelope(
            position=position,
            seed=raw.seed,
            metrics=raw.metrics,
            fingerprint=raw.fingerprint,
            duration=raw.duration,
            worker_pid=raw.worker_pid,
        )
        for position, raw in enumerate(raws)
    ]
