"""DCA replicate worker: run one DES replicate, return an envelope.

This is the substrate glue between :func:`repro.parallel.engine.parallel_map`
and :func:`repro.dca.run_dca`.  The spec is a frozen, picklable value
object; the worker rebuilds the full :class:`~repro.dca.config.DcaConfig`
from it inside the (possibly remote) process, so no live simulation
state ever crosses a process boundary.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.core.distributions import ReliabilityDistribution
from repro.core.strategy import RedundancyStrategy
from repro.dca import DcaConfig, run_dca
from repro.obs.context import current_sink
from repro.obs.recorder import TelemetryRecorder
from repro.parallel.engine import ReplicateError, parallel_map
from repro.parallel.envelope import ReplicateEnvelope, fingerprint_of
from repro.parallel.reducer import merge_telemetry
from repro.parallel.seeds import replicate_seeds

#: Per-worker record caps: telemetry payloads travel back through the
#: process pool, so buffers are bounded.  Drops are deterministic (a pure
#: function of the replicate's event stream), which preserves the
#: jobs=N == jobs=1 byte-identity of merged telemetry.
_WORKER_SPAN_CAP = 10_000
_WORKER_EVENT_CAP = 10_000


@dataclass(frozen=True)
class DcaReplicateSpec:
    """Everything one DCA replicate needs, in picklable form.

    The strategy is a *fresh instance* built by the caller's factory; it
    is pickled to the worker (parallel) or used directly (serial), so
    node-aware strategies start every replicate from a clean slate either
    way.  ``overrides`` carries extra :class:`DcaConfig` fields as a
    sorted tuple of pairs to keep the spec hashable.

    ``telemetry`` asks the worker to run under a buffering
    :class:`~repro.obs.TelemetryRecorder` and ship the capped payload
    back in the envelope.  It never perturbs the simulation: metrics and
    fingerprints are identical with it on or off.
    """

    seed: int
    strategy: RedundancyStrategy
    tasks: int
    nodes: int
    reliability: Union[float, ReliabilityDistribution]
    overrides: Tuple[Tuple[str, Any], ...] = ()
    telemetry: bool = False


@dataclass(frozen=True)
class _RawReplicate:
    """What the worker ships back (position is attached by the parent)."""

    seed: int
    metrics: dict
    fingerprint: str
    duration: float
    worker_pid: int
    telemetry: Optional[dict] = None


def dca_replicate_specs(
    strategy_factory: Callable[[], RedundancyStrategy],
    *,
    tasks: int,
    nodes: int,
    reliability: Union[float, ReliabilityDistribution],
    replications: int,
    seed: int,
    telemetry: bool = False,
    **config_overrides: Any,
) -> List[DcaReplicateSpec]:
    """Build one spec per replicate with spawn-derived seeds."""
    seeds = replicate_seeds(seed, replications)
    overrides = tuple(sorted(config_overrides.items()))
    return [
        DcaReplicateSpec(
            seed=replicate_seed,
            strategy=strategy_factory(),
            tasks=tasks,
            nodes=nodes,
            reliability=reliability,
            overrides=overrides,
            telemetry=telemetry,
        )
        for replicate_seed in seeds
    ]


def run_dca_replicate(spec: DcaReplicateSpec) -> _RawReplicate:
    """Execute one replicate (the module-level, picklable worker)."""
    start = time.perf_counter()
    recorder = None
    if spec.telemetry:
        recorder = TelemetryRecorder(
            max_spans=_WORKER_SPAN_CAP, max_events=_WORKER_EVENT_CAP
        )
    # Deep-copy so serial runs match parallel ones (where pickling makes
    # the copy) even if a caller shares one strategy across specs.
    report = run_dca(
        DcaConfig(
            strategy=copy.deepcopy(spec.strategy),
            tasks=spec.tasks,
            nodes=spec.nodes,
            reliability=spec.reliability,
            seed=spec.seed,
            **dict(spec.overrides),
        ),
        recorder=recorder,
    )
    metrics = report.as_dict()
    return _RawReplicate(
        seed=spec.seed,
        metrics=metrics,
        fingerprint=fingerprint_of(metrics),
        duration=time.perf_counter() - start,
        worker_pid=os.getpid(),
        telemetry=recorder.as_payload() if recorder is not None else None,
    )


def run_dca_replicates(
    specs: Sequence[DcaReplicateSpec],
    *,
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[ReplicateEnvelope]:
    """Run DCA replicates (serial or fanned out) and envelope the results.

    When a :class:`~repro.obs.TelemetrySink` is installed (see
    ``--telemetry`` on the experiment CLIs), specs are transparently
    upgraded to record telemetry and the position-merged payload is
    handed to the sink.  The upgrade happens parent-side only and never
    changes seeds, metrics, or fingerprints.

    Raises:
        ReplicateError: naming the failed replicate's position *and
            seed* when any replicate crashes.
    """
    specs = list(specs)
    sink = current_sink()
    if sink is not None and specs and not any(spec.telemetry for spec in specs):
        specs = [replace(spec, telemetry=True) for spec in specs]
    try:
        raws = parallel_map(
            run_dca_replicate, specs, jobs=jobs, chunk_size=chunk_size
        )
    except ReplicateError as exc:
        if 0 <= exc.position < len(specs):
            failed = specs[exc.position]
            raise ReplicateError(
                f"replicate #{exc.position} (seed {failed.seed}, "
                f"strategy {failed.strategy.describe()}) failed: "
                f"{exc.error_type}: {exc}",
                position=exc.position,
                error_type=exc.error_type,
                traceback_text=exc.traceback_text,
            ) from exc
        raise
    envelopes = [
        ReplicateEnvelope(
            position=position,
            seed=raw.seed,
            metrics=raw.metrics,
            fingerprint=raw.fingerprint,
            duration=raw.duration,
            worker_pid=raw.worker_pid,
            telemetry=raw.telemetry,
        )
        for position, raw in enumerate(raws)
    ]
    if sink is not None and envelopes:
        label = f"{specs[0].strategy.describe()} x{len(specs)}"
        sink.add_run(label, merge_telemetry(envelopes))
    return envelopes
