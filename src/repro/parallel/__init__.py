"""Deterministic parallel replication engine.

The experiment harnesses aggregate many *independent* simulation
replicates (Figures 3, 5a-c, 6 and the ablations).  Because every
replicate is a pure function of its spec -- strategy, scale, and a
deterministically derived seed -- replicates can fan out over a process
pool and still produce results byte-identical to a serial run:

* :mod:`repro.parallel.seeds` derives one decorrelated seed per
  replicate from the experiment's base seed via
  :meth:`~repro.sim.rng.RngRegistry.spawn`;
* :mod:`repro.parallel.engine` maps a picklable worker over the specs
  with chunked, straggler-aware scheduling (``--jobs 1`` is the exact
  legacy in-process serial path);
* :mod:`repro.parallel.reducer` folds the per-replicate envelopes back
  into means/standard errors in *spec order*, so aggregates never depend
  on completion order;
* :mod:`repro.parallel.dca` and :mod:`repro.parallel.volunteer` are the
  substrate-specific workers used by :mod:`repro.experiments`;
* :mod:`repro.parallel.shards` splits *one* large computation into
  task-server shards with a deterministic cross-shard merge (see
  ``docs/scaling.md``).

See ``docs/parallelism.md`` for the full design.
"""

from repro.parallel.dca import (
    DcaReplicateSpec,
    dca_replicate_specs,
    run_dca_replicate,
    run_dca_replicates,
)
from repro.parallel.engine import (
    ReplicateError,
    WorkerCrash,
    default_chunk_size,
    parallel_map,
    resolve_jobs,
)
from repro.parallel.envelope import ReplicateEnvelope, fingerprint_of
from repro.parallel.reducer import (
    MetricAggregate,
    aggregate_metrics,
    combined_fingerprint,
    mean,
    merge_telemetry,
    ordered,
    stderr,
)
from repro.parallel.seeds import replicate_seeds, shard_seeds
from repro.parallel.shards import (
    ShardSpec,
    merge_shard_columns,
    merge_shard_reports,
    release_shard_columns,
    run_dca_shard,
    run_dca_shards,
    shard_specs,
)
from repro.parallel.shm import (
    ColumnBlockHandle,
    read_columns,
    release_columns,
    shm_available,
    write_columns,
)
from repro.parallel.volunteer import (
    VolunteerProblemSpec,
    run_volunteer_problem,
    run_volunteer_problems,
)

__all__ = [
    "ColumnBlockHandle",
    "DcaReplicateSpec",
    "MetricAggregate",
    "ReplicateEnvelope",
    "ReplicateError",
    "ShardSpec",
    "VolunteerProblemSpec",
    "WorkerCrash",
    "aggregate_metrics",
    "combined_fingerprint",
    "dca_replicate_specs",
    "default_chunk_size",
    "fingerprint_of",
    "mean",
    "merge_shard_columns",
    "merge_shard_reports",
    "merge_telemetry",
    "ordered",
    "parallel_map",
    "read_columns",
    "release_columns",
    "release_shard_columns",
    "replicate_seeds",
    "resolve_jobs",
    "run_dca_shard",
    "run_dca_shards",
    "run_dca_replicate",
    "run_dca_replicates",
    "run_volunteer_problem",
    "run_volunteer_problems",
    "shard_seeds",
    "shard_specs",
    "shm_available",
    "stderr",
    "write_columns",
]
