"""Volunteer-deployment worker: one 3-SAT problem per replicate.

The Figure 5(b) study runs several independent problems per sweep point;
each problem is a pure function of (strategy, testbed, shape, seed) and
fans out exactly like a DCA replicate.  The worker deep-copies the
strategy before running so serial and parallel execution see identical
fresh state even when a caller shares one instance across specs.
"""

from __future__ import annotations

import copy
import math
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.strategy import RedundancyStrategy
from repro.parallel.engine import ReplicateError, parallel_map
from repro.parallel.envelope import ReplicateEnvelope, fingerprint_of
from repro.volunteer import PlanetLabTestbed, VolunteerConfig, run_volunteer


@dataclass(frozen=True)
class VolunteerProblemSpec:
    """One volunteer problem run, in picklable form."""

    seed: int
    strategy: RedundancyStrategy
    testbed: PlanetLabTestbed
    sat_vars: int
    tasks: int


@dataclass(frozen=True)
class _RawProblem:
    seed: int
    metrics: dict
    fingerprint: str
    duration: float
    worker_pid: int


def run_volunteer_problem(spec: VolunteerProblemSpec) -> _RawProblem:
    """Execute one volunteer problem (module-level, picklable worker)."""
    start = time.perf_counter()
    report = run_volunteer(
        VolunteerConfig(
            strategy=copy.deepcopy(spec.strategy),
            testbed=spec.testbed,
            sat_vars=spec.sat_vars,
            tasks=spec.tasks,
            seed=spec.seed,
        )
    )
    metrics = report.as_dict()
    metrics["derived_reliability"] = (
        report.derived_reliability
        if not math.isnan(report.derived_reliability)
        else None
    )
    metrics["problem_correct"] = report.problem_correct
    metrics["deadline_misses"] = report.deadline_misses
    return _RawProblem(
        seed=spec.seed,
        metrics=metrics,
        fingerprint=fingerprint_of(metrics),
        duration=time.perf_counter() - start,
        worker_pid=os.getpid(),
    )


def run_volunteer_problems(
    specs: Sequence[VolunteerProblemSpec],
    *,
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[ReplicateEnvelope]:
    """Run volunteer problems (serial or fanned out) into envelopes."""
    specs = list(specs)
    try:
        raws = parallel_map(
            run_volunteer_problem, specs, jobs=jobs, chunk_size=chunk_size
        )
    except ReplicateError as exc:
        if 0 <= exc.position < len(specs):
            failed = specs[exc.position]
            raise ReplicateError(
                f"volunteer problem #{exc.position} (seed {failed.seed}, "
                f"strategy {failed.strategy.describe()}) failed: "
                f"{exc.error_type}: {exc}",
                position=exc.position,
                error_type=exc.error_type,
                traceback_text=exc.traceback_text,
            ) from exc
        raise
    return [
        ReplicateEnvelope(
            position=position,
            seed=raw.seed,
            metrics=raw.metrics,
            fingerprint=raw.fingerprint,
            duration=raw.duration,
            worker_pid=raw.worker_pid,
        )
        for position, raw in enumerate(raws)
    ]
