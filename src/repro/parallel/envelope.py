"""Result envelopes: what a worker ships back from one replicate.

Workers never return full simulation reports -- a 100k-task run carries
100k per-task records and pickling them back through the pool would
swamp the parallel speedup.  Instead each replicate is reduced *inside
the worker* to a flat metrics mapping plus a fingerprint of that
mapping, so the parent can aggregate and cross-check serial-vs-parallel
equality from a few hundred bytes per replicate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


def fingerprint_of(metrics: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON rendering of ``metrics``.

    Canonical means sorted keys and ``repr``-shortest float rendering, so
    two runs fingerprint identically iff their metrics are byte-identical
    after JSON encoding.  Non-JSON values fall back to ``repr``.
    """
    canonical = json.dumps(metrics, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ReplicateEnvelope:
    """One replicate's outcome, as shipped back by a worker.

    Attributes:
        position: Index of the replicate in the submitted spec list (the
            reducer aggregates in this order, never completion order).
        seed: The replicate's derived root seed.
        metrics: Flat metric mapping (the substrate report's
            ``as_dict()``).
        fingerprint: :func:`fingerprint_of` the metrics.
        duration: Worker-side wall-clock seconds spent on the replicate.
        worker_pid: PID of the process that ran it (diagnostics only;
            excluded from fingerprints and aggregation).
        telemetry: Optional :meth:`~repro.obs.TelemetryRecorder.as_payload`
            mapping recorded inside the worker when the spec asked for
            telemetry.  Like ``worker_pid``, it is observability sidecar
            data: excluded from fingerprints and metric aggregation.
        columns: Optional :class:`~repro.parallel.shm.ColumnBlockHandle`
            referencing the replicate's bulk per-task columns in shared
            memory (the out-of-band transport; see
            :mod:`repro.parallel.shm`).  A reference, not data: excluded
            from fingerprints, and whoever consumes the envelope owns
            the segment's release.
    """

    position: int
    seed: int
    metrics: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""
    duration: float = 0.0
    worker_pid: int = 0
    telemetry: Optional[Dict[str, Any]] = None
    columns: Optional[Any] = None
