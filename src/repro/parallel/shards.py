"""Sharded DCA task server: one computation split across worker shards.

The DES and the columnar engine both run a whole computation in one
process.  To push toward million-node pools, this module splits *one*
computation -- its task list and its node pool -- into ``S`` shards and
runs each shard as an independent task server on a
:func:`~repro.parallel.engine.parallel_map` worker.

The split is exact, not an approximation, in the model's own terms:
tasks are independent (the paper's DCA definition) and assumption 1
assigns every job a uniformly random node, so partitioning the pool and
giving each shard its tasks' waves changes nothing about any task's vote
distribution.  Each shard draws from its own spawn-derived seed family
(``shard:<i>``, :func:`~repro.parallel.seeds.shard_seeds`), so shard
results depend only on ``(base seed, shard index)`` -- never on which
worker ran the shard or in what order shards finished.

The cross-shard merge reuses the envelope machinery: every shard ships a
:class:`~repro.parallel.envelope.ReplicateEnvelope`, the reduction walks
them in **position order** (:func:`merge_shard_reports`), and
:func:`~repro.parallel.reducer.combined_fingerprint` gives the whole
computation one checksum.  ``jobs=N`` is therefore byte-identical to
``jobs=1`` for the same shard count -- the property the ``scale`` bench
suite gates in CI.

Each shard runs the columnar engine by default (``engine="columnar"``)
and falls back to the object DES with ``engine="des"`` for
configurations the columnar regime rejects.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.distributions import ReliabilityDistribution
from repro.core.strategy import RedundancyStrategy
from repro.dca import DcaConfig, run_columnar_dca, run_dca
from repro.obs.context import current_sink
from repro.obs.recorder import TelemetryRecorder
from repro.parallel.engine import ReplicateError, parallel_map
from repro.parallel.envelope import ReplicateEnvelope, fingerprint_of
from repro.parallel.reducer import combined_fingerprint, merge_telemetry, ordered
from repro.parallel.seeds import shard_seeds

#: Shard engines: columnar for scale, the object DES for full generality.
SHARD_ENGINES = ("columnar", "des")

#: Per-worker telemetry caps, as in :mod:`repro.parallel.dca`.
_WORKER_SPAN_CAP = 10_000
_WORKER_EVENT_CAP = 10_000


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a larger computation, in picklable form.

    ``tasks`` and ``nodes`` are this *shard's* share of the computation,
    already split by :func:`shard_specs`; ``seed`` is the shard's
    spawn-derived root seed.  ``overrides`` carries extra
    :class:`~repro.dca.DcaConfig` fields as a sorted tuple of pairs.
    """

    seed: int
    strategy: RedundancyStrategy
    tasks: int
    nodes: int
    reliability: Union[float, ReliabilityDistribution]
    engine: str = "columnar"
    overrides: Tuple[Tuple[str, Any], ...] = ()
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.engine not in SHARD_ENGINES:
            raise ValueError(
                f"unknown shard engine {self.engine!r}; choose from {SHARD_ENGINES}"
            )


@dataclass(frozen=True)
class _RawShard:
    """What the worker ships back (position is attached by the parent)."""

    seed: int
    metrics: dict
    fingerprint: str
    duration: float
    worker_pid: int
    telemetry: Optional[dict] = None


def _split(total: int, shards: int) -> List[int]:
    """Split ``total`` into ``shards`` near-equal positive parts.

    Deterministic and position-stable: shard ``i`` always receives
    ``total // shards`` plus one extra when ``i < total % shards``.
    """
    base, extra = divmod(total, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def shard_specs(
    strategy_factory: Callable[[], RedundancyStrategy],
    *,
    tasks: int,
    nodes: int,
    reliability: Union[float, ReliabilityDistribution],
    shards: int,
    seed: int,
    engine: str = "columnar",
    telemetry: bool = False,
    **config_overrides: Any,
) -> List[ShardSpec]:
    """Split one computation into per-shard specs with spawn-derived seeds.

    Raises:
        ValueError: if ``shards`` exceeds ``tasks`` or ``nodes`` (every
            shard must hold at least one task and one node).
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if shards > tasks:
        raise ValueError(f"cannot split {tasks} tasks across {shards} shards")
    if shards > nodes:
        raise ValueError(f"cannot split {nodes} nodes across {shards} shards")
    seeds = shard_seeds(seed, shards)
    task_shares = _split(tasks, shards)
    node_shares = _split(nodes, shards)
    overrides = tuple(sorted(config_overrides.items()))
    return [
        ShardSpec(
            seed=shard_seed,
            strategy=strategy_factory(),
            tasks=task_share,
            nodes=node_share,
            reliability=reliability,
            engine=engine,
            overrides=overrides,
            telemetry=telemetry,
        )
        for shard_seed, task_share, node_share in zip(seeds, task_shares, node_shares)
    ]


def run_dca_shard(spec: ShardSpec) -> _RawShard:
    """Execute one shard (the module-level, picklable worker).

    The shard's metrics are its report's ``as_dict()`` plus the extensive
    counters (``tasks_correct``, ``total_jobs``, ``jobs_timed_out``) the
    cross-shard reduction needs to merge exactly rather than from
    rounded means.
    """
    start = time.perf_counter()
    recorder = None
    if spec.telemetry:
        recorder = TelemetryRecorder(
            max_spans=_WORKER_SPAN_CAP, max_events=_WORKER_EVENT_CAP
        )
    config = DcaConfig(
        strategy=copy.deepcopy(spec.strategy),
        tasks=spec.tasks,
        nodes=spec.nodes,
        reliability=spec.reliability,
        seed=spec.seed,
        **dict(spec.overrides),
    )
    if spec.engine == "columnar":
        report = run_columnar_dca(config, recorder=recorder)
    else:
        report = run_dca(config, recorder=recorder)
    metrics = report.as_dict()
    metrics["tasks_correct"] = report.tasks_correct
    metrics["total_jobs"] = report.total_jobs
    metrics["jobs_timed_out"] = report.jobs_timed_out
    return _RawShard(
        seed=spec.seed,
        metrics=metrics,
        fingerprint=fingerprint_of(metrics),
        duration=time.perf_counter() - start,
        worker_pid=os.getpid(),
        telemetry=recorder.as_payload() if recorder is not None else None,
    )


def run_dca_shards(
    specs: Sequence[ShardSpec],
    *,
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
) -> List[ReplicateEnvelope]:
    """Run the shards (serial or fanned out) and envelope the results.

    The envelope list is in shard-position order whatever the worker
    scheduling was; feed it to :func:`merge_shard_reports` for the
    merged computation-level report.  As in
    :func:`~repro.parallel.dca.run_dca_replicates`, an installed
    :class:`~repro.obs.TelemetrySink` transparently upgrades the specs
    to record telemetry, without perturbing metrics or fingerprints.

    Raises:
        ReplicateError: naming the failed shard's position and seed when
            any shard crashes.
    """
    specs = list(specs)
    sink = current_sink()
    if sink is not None and specs and not any(spec.telemetry for spec in specs):
        specs = [replace(spec, telemetry=True) for spec in specs]
    try:
        raws = parallel_map(run_dca_shard, specs, jobs=jobs, chunk_size=chunk_size)
    except ReplicateError as exc:
        if 0 <= exc.position < len(specs):
            failed = specs[exc.position]
            raise ReplicateError(
                f"shard #{exc.position} (seed {failed.seed}, "
                f"strategy {failed.strategy.describe()}) failed: "
                f"{exc.error_type}: {exc}",
                position=exc.position,
                error_type=exc.error_type,
                traceback_text=exc.traceback_text,
            ) from exc
        raise
    envelopes = [
        ReplicateEnvelope(
            position=position,
            seed=raw.seed,
            metrics=raw.metrics,
            fingerprint=raw.fingerprint,
            duration=raw.duration,
            worker_pid=raw.worker_pid,
            telemetry=raw.telemetry,
        )
        for position, raw in enumerate(raws)
    ]
    if sink is not None and envelopes:
        label = f"{specs[0].strategy.describe()} sharded x{len(specs)}"
        sink.add_run(label, merge_telemetry(envelopes))
    return envelopes


def merge_shard_reports(envelopes: Sequence[ReplicateEnvelope]) -> Dict[str, Any]:
    """Reduce shard envelopes into one computation-level report dict.

    Position-ordered and purely arithmetic, so the merged report is
    identical whatever order the shards completed in:

    * extensive counters (tasks, correct tasks, jobs, timeouts) sum;
    * per-task means re-weight by each shard's task count;
    * maxima (max jobs, max response time, makespan) take the max --
      shards run concurrently, so the computation finishes when the
      slowest shard does;
    * ``checksum`` is :func:`~repro.parallel.reducer.combined_fingerprint`
      over the shard fingerprints, the identity the bench suite gates.
    """
    if not envelopes:
        raise ValueError("cannot merge zero shard envelopes")
    by_position = ordered(envelopes)
    metrics = [envelope.metrics for envelope in by_position]
    tasks = sum(shard["tasks"] for shard in metrics)
    correct = sum(shard["tasks_correct"] for shard in metrics)
    total_jobs = sum(shard["total_jobs"] for shard in metrics)

    def weighted(key: str) -> float:
        return sum(shard[key] * shard["tasks"] for shard in metrics) / tasks

    return {
        "strategy": metrics[0]["strategy"],
        "shards": len(by_position),
        "tasks": tasks,
        "tasks_correct": correct,
        "reliability": correct / tasks,
        "total_jobs": total_jobs,
        "cost_factor": total_jobs / tasks,
        "max_jobs": max(shard["max_jobs"] for shard in metrics),
        "mean_response_time": weighted("mean_response_time"),
        "max_response_time": max(shard["max_response_time"] for shard in metrics),
        "mean_waves": weighted("mean_waves"),
        "makespan": max(shard["makespan"] for shard in metrics),
        "jobs_timed_out": sum(shard["jobs_timed_out"] for shard in metrics),
        "checksum": combined_fingerprint(by_position),
    }
