"""Sharded DCA task server: one computation split across worker shards.

The DES and the columnar engine both run a whole computation in one
process.  To push toward million-node pools, this module splits *one*
computation -- its task list and its node pool -- into ``S`` shards and
runs each shard as an independent task server on a
:func:`~repro.parallel.engine.parallel_map` worker.

The split is exact, not an approximation, in the model's own terms:
tasks are independent (the paper's DCA definition) and assumption 1
assigns every job a uniformly random node, so partitioning the pool and
giving each shard its tasks' waves changes nothing about any task's vote
distribution.  Churn rates split with the pool: a shard holding
``n_i / N`` of the nodes sees ``n_i / N`` of the arrival and departure
flux, so the computation-wide churn intensity is preserved.  Each shard
draws from its own spawn-derived seed family (``shard:<i>``,
:func:`~repro.parallel.seeds.shard_seeds`), so shard results depend only
on ``(base seed, shard index)`` -- never on which worker ran the shard
or in what order shards finished.

The cross-shard merge reuses the envelope machinery: every shard ships a
:class:`~repro.parallel.envelope.ReplicateEnvelope`, the reduction walks
them in **position order** (:func:`merge_shard_reports`), and
:func:`~repro.parallel.reducer.combined_fingerprint` gives the whole
computation one checksum.  ``jobs=N`` is therefore byte-identical to
``jobs=1`` for the same shard count -- the property the ``scale`` bench
suites gate in CI.

Two transports move shard results back to the parent:

* ``transport="pickle"`` (default): envelope metrics only, a few hundred
  bytes per shard -- metrics and fingerprints exactly as always.
* ``transport="shm"``: additionally ships each shard's per-task columns
  (response times, jobs, waves, correctness) out of band through
  :mod:`repro.parallel.shm`, leaving the pickle channel and the
  envelope fingerprints untouched.  :func:`merge_shard_reports` then
  reduces the columns incrementally -- one shard's block attached,
  folded into running accumulators, and unlinked before the next -- and
  cross-checks the column-derived counters against the metric-derived
  ones.

Each shard runs the columnar engine by default (``engine="columnar"``)
and falls back to the object DES with ``engine="des"`` for
configurations the columnar regime rejects.
"""

from __future__ import annotations

import copy
import math
import os
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.distributions import ReliabilityDistribution
from repro.core.strategy import RedundancyStrategy
from repro.dca import DcaConfig, run_columnar_dca, run_columnar_dca_columns, run_dca
from repro.obs.context import current_sink
from repro.obs.recorder import TelemetryRecorder
from repro.parallel.engine import ReplicateError, parallel_map
from repro.parallel.envelope import ReplicateEnvelope, fingerprint_of
from repro.parallel.reducer import combined_fingerprint, merge_telemetry, ordered
from repro.parallel.seeds import shard_seeds
from repro.parallel.shm import (
    ColumnBlockHandle,
    read_columns,
    release_columns,
    shm_available,
    write_columns,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

#: Shard engines: columnar for scale, the object DES for full generality.
SHARD_ENGINES = ("columnar", "des")

#: Result transports: metrics-only pickle, or out-of-band shared memory.
SHARD_TRANSPORTS = ("pickle", "shm")

#: Per-worker telemetry caps, as in :mod:`repro.parallel.dca`.
_WORKER_SPAN_CAP = 10_000
_WORKER_EVENT_CAP = 10_000


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a larger computation, in picklable form.

    ``tasks`` and ``nodes`` are this *shard's* share of the computation,
    already split by :func:`shard_specs`; ``seed`` is the shard's
    spawn-derived root seed.  ``overrides`` carries extra
    :class:`~repro.dca.DcaConfig` fields as a sorted tuple of pairs
    (churn rates already scaled to the shard's pool share).  With
    ``columns`` set the worker also exports its per-task result columns
    through shared memory.
    """

    seed: int
    strategy: RedundancyStrategy
    tasks: int
    nodes: int
    reliability: Union[float, ReliabilityDistribution]
    engine: str = "columnar"
    overrides: Tuple[Tuple[str, Any], ...] = ()
    telemetry: bool = False
    columns: bool = False

    def __post_init__(self) -> None:
        if self.engine not in SHARD_ENGINES:
            raise ValueError(
                f"unknown shard engine {self.engine!r}; choose from {SHARD_ENGINES}"
            )


@dataclass(frozen=True)
class _RawShard:
    """What the worker ships back (position is attached by the parent)."""

    seed: int
    metrics: dict
    fingerprint: str
    duration: float
    worker_pid: int
    telemetry: Optional[dict] = None
    columns: Optional[ColumnBlockHandle] = None


def _split(total: int, shards: int) -> List[int]:
    """Split ``total`` into ``shards`` near-equal positive parts.

    Deterministic and position-stable: shard ``i`` always receives
    ``total // shards`` plus one extra when ``i < total % shards``.
    """
    base, extra = divmod(total, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def shard_specs(
    strategy_factory: Callable[[], RedundancyStrategy],
    *,
    tasks: int,
    nodes: int,
    reliability: Union[float, ReliabilityDistribution],
    shards: int,
    seed: int,
    engine: str = "columnar",
    telemetry: bool = False,
    **config_overrides: Any,
) -> List[ShardSpec]:
    """Split one computation into per-shard specs with spawn-derived seeds.

    Churn rates (``arrival_rate`` / ``departure_rate`` overrides) are
    scaled by each shard's node share, so the whole computation sees the
    configured churn flux; every other override passes through
    untouched.

    Raises:
        ValueError: if ``shards`` exceeds ``tasks`` or ``nodes`` (every
            shard must hold at least one task and one node -- rejecting
            degenerate zero-task shards up front beats silently merging
            their nan-valued reports later).
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if shards > tasks:
        raise ValueError(f"cannot split {tasks} tasks across {shards} shards")
    if shards > nodes:
        raise ValueError(f"cannot split {nodes} nodes across {shards} shards")
    seeds = shard_seeds(seed, shards)
    task_shares = _split(tasks, shards)
    node_shares = _split(nodes, shards)

    def shard_overrides(node_share: int) -> Tuple[Tuple[str, Any], ...]:
        scaled = dict(config_overrides)
        for rate_key in ("arrival_rate", "departure_rate"):
            if scaled.get(rate_key):
                scaled[rate_key] = scaled[rate_key] * (node_share / nodes)
        return tuple(sorted(scaled.items()))

    return [
        ShardSpec(
            seed=shard_seed,
            strategy=strategy_factory(),
            tasks=task_share,
            nodes=node_share,
            reliability=reliability,
            engine=engine,
            overrides=shard_overrides(node_share),
            telemetry=telemetry,
        )
        for shard_seed, task_share, node_share in zip(seeds, task_shares, node_shares)
    ]


def _regime_metrics(report, config: DcaConfig) -> Dict[str, Any]:
    """Extra extensive counters for the regimes the config enables.

    Keys are added only when their regime is on, so runs outside the
    regime keep their historical metric mapping -- and therefore their
    committed fingerprints -- byte-identical.
    """
    extras: Dict[str, Any] = {}
    if config.arrival_rate or config.departure_rate:
        extras["nodes_joined"] = report.nodes_joined
        extras["nodes_departed"] = report.nodes_departed
    if config.spot_check_rate:
        extras["spot_checks"] = report.spot_checks
        extras["nodes_blacklisted"] = getattr(report, "nodes_blacklisted", 0)
    if config.max_time is not None:
        extras["tasks_submitted"] = report.tasks_submitted
    return extras


def _report_columns(report, spec_engine: str):
    """Per-task result columns in task-id order, engine-independent."""
    if spec_engine == "columnar":
        return None  # the columnar engine hands them over directly
    order = sorted(report.records, key=lambda record: record.task_id)
    return {
        "response_time": np.asarray(
            [record.response_time for record in order], dtype=np.float64
        ),
        "jobs_used": np.asarray([record.jobs_used for record in order], dtype=np.int64),
        "waves": np.asarray([record.waves for record in order], dtype=np.int64),
        "correct": np.asarray([record.correct for record in order], dtype=bool),
    }


def run_dca_shard(spec: ShardSpec) -> _RawShard:
    """Execute one shard (the module-level, picklable worker).

    The shard's metrics are its report's ``as_dict()`` plus the extensive
    counters (``tasks_correct``, ``total_jobs``, ``jobs_timed_out``, and
    per-regime extras) the cross-shard reduction needs to merge exactly
    rather than from rounded means.  With ``spec.columns`` the per-task
    columns additionally go out through shared memory.
    """
    start = time.perf_counter()
    recorder = None
    if spec.telemetry:
        recorder = TelemetryRecorder(
            max_spans=_WORKER_SPAN_CAP, max_events=_WORKER_EVENT_CAP
        )
    config = DcaConfig(
        strategy=copy.deepcopy(spec.strategy),
        tasks=spec.tasks,
        nodes=spec.nodes,
        reliability=spec.reliability,
        seed=spec.seed,
        **dict(spec.overrides),
    )
    columns = None
    if spec.engine == "columnar":
        if spec.columns:
            report, columns = run_columnar_dca_columns(config, recorder=recorder)
        else:
            report = run_columnar_dca(config, recorder=recorder)
    else:
        report = run_dca(config, recorder=recorder)
        if spec.columns:
            columns = _report_columns(report, spec.engine)
    metrics = report.as_dict()
    metrics["tasks_correct"] = report.tasks_correct
    metrics["total_jobs"] = report.total_jobs
    metrics["jobs_timed_out"] = report.jobs_timed_out
    metrics.update(_regime_metrics(report, config))
    return _RawShard(
        seed=spec.seed,
        metrics=metrics,
        fingerprint=fingerprint_of(metrics),
        duration=time.perf_counter() - start,
        worker_pid=os.getpid(),
        telemetry=recorder.as_payload() if recorder is not None else None,
        columns=write_columns(columns) if columns is not None else None,
    )


def run_dca_shards(
    specs: Sequence[ShardSpec],
    *,
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    transport: str = "pickle",
) -> List[ReplicateEnvelope]:
    """Run the shards (serial or fanned out) and envelope the results.

    The envelope list is in shard-position order whatever the worker
    scheduling was; feed it to :func:`merge_shard_reports` for the
    merged computation-level report.  As in
    :func:`~repro.parallel.dca.run_dca_replicates`, an installed
    :class:`~repro.obs.TelemetrySink` transparently upgrades the specs
    to record telemetry, without perturbing metrics or fingerprints.

    ``transport="shm"`` additionally ships per-task columns out of band
    (POSIX shared memory; see :mod:`repro.parallel.shm`); the envelopes
    then carry column handles whose segments the merge -- or
    :func:`release_shard_columns` -- must release.

    Raises:
        ReplicateError: naming the failed shard's position and seed when
            any shard crashes.
    """
    if transport not in SHARD_TRANSPORTS:
        raise ValueError(
            f"unknown shard transport {transport!r}; choose from {SHARD_TRANSPORTS}"
        )
    specs = list(specs)
    if transport == "shm":
        if not shm_available():
            raise RuntimeError(
                "transport='shm' needs numpy and multiprocessing.shared_memory "
                "(POSIX); use transport='pickle'"
            )
        specs = [replace(spec, columns=True) for spec in specs]
    sink = current_sink()
    if sink is not None and specs and not any(spec.telemetry for spec in specs):
        specs = [replace(spec, telemetry=True) for spec in specs]
    try:
        raws = parallel_map(run_dca_shard, specs, jobs=jobs, chunk_size=chunk_size)
    except ReplicateError as exc:
        if 0 <= exc.position < len(specs):
            failed = specs[exc.position]
            raise ReplicateError(
                f"shard #{exc.position} (seed {failed.seed}, "
                f"strategy {failed.strategy.describe()}) failed: "
                f"{exc.error_type}: {exc}",
                position=exc.position,
                error_type=exc.error_type,
                traceback_text=exc.traceback_text,
            ) from exc
        raise
    envelopes = [
        ReplicateEnvelope(
            position=position,
            seed=raw.seed,
            metrics=raw.metrics,
            fingerprint=raw.fingerprint,
            duration=raw.duration,
            worker_pid=raw.worker_pid,
            telemetry=raw.telemetry,
            columns=raw.columns,
        )
        for position, raw in enumerate(raws)
    ]
    if sink is not None and envelopes:
        label = f"{specs[0].strategy.describe()} sharded x{len(specs)}"
        sink.add_run(label, merge_telemetry(envelopes))
    return envelopes


#: Extensive per-regime counters that sum across shards when present.
_REGIME_SUM_KEYS = (
    "nodes_joined",
    "nodes_departed",
    "spot_checks",
    "nodes_blacklisted",
    "tasks_submitted",
)


def merge_shard_reports(envelopes: Sequence[ReplicateEnvelope]) -> Dict[str, Any]:
    """Reduce shard envelopes into one computation-level report dict.

    Position-ordered and purely arithmetic, so the merged report is
    identical whatever order the shards completed in:

    * extensive counters (tasks, correct tasks, jobs, timeouts, and any
      per-regime extras) sum;
    * per-task means re-weight by each shard's *completed* task count,
      skipping empty shards -- under a ``max_time`` horizon a shard can
      complete zero tasks, and its nan-valued means must not poison the
      weighted average (nor its zero count the divisor);
    * maxima (max jobs, max response time, makespan) take the max over
      non-empty shards -- shards run concurrently, so the computation
      finishes when the slowest shard does;
    * ``checksum`` is :func:`~repro.parallel.reducer.combined_fingerprint`
      over the shard fingerprints, the identity the bench suites gate.

    When the envelopes carry shared-memory column handles
    (``transport="shm"``), the columns are reduced incrementally --
    one shard's block attached, folded into running accumulators in
    place, and unlinked before the next -- and the column-derived
    counters are cross-checked against the metric-derived ones; the
    exact column aggregates land under ``"columns"``.
    """
    if not envelopes:
        raise ValueError("cannot merge zero shard envelopes")
    by_position = ordered(envelopes)
    metrics = [envelope.metrics for envelope in by_position]
    tasks = sum(shard["tasks"] for shard in metrics)
    correct = sum(shard["tasks_correct"] for shard in metrics)
    total_jobs = sum(shard["total_jobs"] for shard in metrics)
    # Shards that completed zero tasks report nan means and 0/nan
    # extremes; every per-task aggregate below walks the live ones only.
    live = [shard for shard in metrics if shard["tasks"]]

    def weighted(key: str) -> float:
        if not tasks:
            return math.nan
        return sum(shard[key] * shard["tasks"] for shard in live) / tasks

    merged = {
        "strategy": metrics[0]["strategy"],
        "shards": len(by_position),
        "tasks": tasks,
        "tasks_correct": correct,
        "reliability": correct / tasks if tasks else math.nan,
        "total_jobs": total_jobs,
        "cost_factor": total_jobs / tasks if tasks else math.nan,
        "max_jobs": max((shard["max_jobs"] for shard in live), default=0),
        "mean_response_time": weighted("mean_response_time"),
        "max_response_time": max(
            (shard["max_response_time"] for shard in live), default=math.nan
        ),
        "mean_waves": weighted("mean_waves"),
        "makespan": max(shard["makespan"] for shard in metrics),
        "jobs_timed_out": sum(shard["jobs_timed_out"] for shard in metrics),
        "checksum": combined_fingerprint(by_position),
    }
    for key in _REGIME_SUM_KEYS:
        if all(key in shard for shard in metrics):
            merged[key] = sum(shard[key] for shard in metrics)
    if any(envelope.columns is not None for envelope in by_position):
        merged["columns"] = merge_shard_columns(by_position, expected=merged)
    return merged


def merge_shard_columns(
    envelopes: Sequence[ReplicateEnvelope],
    *,
    expected: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Reduce shared-memory shard columns into exact aggregates.

    Walks the envelopes in position order, attaching one shard's block
    at a time, folding it into running accumulators, and unlinking the
    segment before touching the next -- peak memory is a single shard's
    columns, whatever the shard count.  With ``expected`` (a merged
    metrics dict) the integer counters are cross-checked against the
    metric-derived values, so a transport bug cannot silently skew the
    numbers.

    Raises:
        ValueError: if an envelope carries no column handle, or the
            cross-check against ``expected`` fails.
    """
    by_position = ordered(envelopes)
    tasks = 0
    tasks_correct = 0
    total_jobs = 0
    max_jobs = 0
    waves_total = 0
    response_sum = 0.0
    max_response = math.nan
    for envelope in by_position:
        if envelope.columns is None:
            raise ValueError(
                f"shard #{envelope.position} carries no column handle; "
                "was it run with transport='shm'?"
            )
        block = read_columns(envelope.columns)  # copies out, then unlinks
        count = int(block["response_time"].shape[0])
        tasks += count
        if not count:
            continue
        tasks_correct += int(block["correct"].sum())
        total_jobs += int(block["jobs_used"].sum())
        max_jobs = max(max_jobs, int(block["jobs_used"].max()))
        waves_total += int(block["waves"].sum())
        response_sum += float(block["response_time"].sum())
        shard_max = float(block["response_time"].max())
        max_response = shard_max if math.isnan(max_response) else max(max_response, shard_max)
    aggregates = {
        "tasks": tasks,
        "tasks_correct": tasks_correct,
        "total_jobs": total_jobs,
        "max_jobs": max_jobs,
        "mean_response_time": response_sum / tasks if tasks else math.nan,
        "max_response_time": max_response,
        "mean_waves": waves_total / tasks if tasks else math.nan,
    }
    if expected is not None:
        for key in ("tasks", "tasks_correct", "total_jobs", "max_jobs"):
            if aggregates[key] != expected[key]:
                raise ValueError(
                    f"shared-memory column reduction disagrees with shard "
                    f"metrics on {key}: {aggregates[key]} != {expected[key]}"
                )
    return aggregates


def release_shard_columns(envelopes: Sequence[ReplicateEnvelope]) -> None:
    """Unlink every envelope's column segment without reading (cleanup)."""
    for envelope in envelopes:
        release_columns(envelope.columns)
