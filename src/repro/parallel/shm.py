"""Shared-memory column transport for sharded runs.

Shard workers historically shipped only envelope metrics (a few hundred
bytes).  Shipping raw per-task *columns* -- response times, jobs used,
waves, correctness -- through the pickle channel would swamp the fan-out
win at million-task scale, so this module moves the bulk bytes out of
band: the worker copies its columns into a POSIX shared-memory segment
and ships a tiny picklable :class:`ColumnBlockHandle`; the parent
attaches, reduces, and unlinks each segment in turn.

Lifetime protocol (the subtle part):

* The **creating worker** exits before the parent ever attaches --
  :func:`~repro.parallel.engine.parallel_map` tears the pool down before
  returning results -- so the worker must *unregister* its segment from
  its own ``resource_tracker`` (which would otherwise unlink the
  segment at worker exit) and close its mapping without unlinking.
* The **parent** attaches by name (re-registering with its own tracker),
  reads or reduces, then ``close()`` + ``unlink()`` exactly once.  On
  every supported CPython the attach/unlink pair keeps the parent's
  tracker balanced, so no "leaked shared_memory" warnings fire.

The payload layout is deliberately dumb: one segment per shard, columns
concatenated back to back, and the dtype/shape/offset table carried in
the handle itself (plain strings and ints, so the handle pickles small
and fingerprints never see it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

try:  # gated like numpy itself: POSIX shared memory may be unavailable
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]


def shm_available() -> bool:
    """Whether the shared-memory transport can run on this platform."""
    return shared_memory is not None and np is not None


def _require_shm() -> None:
    if not shm_available():
        raise RuntimeError(
            "the shared-memory shard transport needs numpy and "
            "multiprocessing.shared_memory; use transport='pickle'"
        )


@dataclass(frozen=True)
class ColumnBlockHandle:
    """Picklable reference to one shard's columns in shared memory.

    Attributes:
        name: The shared-memory segment name to attach to.
        layout: ``column -> (dtype string, length, byte offset)``.
        nbytes: Total payload size (diagnostics; the segment may be
            slightly larger because segments cannot be zero-sized).
    """

    name: str
    layout: Tuple[Tuple[str, Tuple[str, int, int]], ...]
    nbytes: int

    def columns(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.layout)


def _untrack(name: str) -> None:
    """Drop ``name`` from this process's resource tracker (best effort).

    The creating worker dies before the parent attaches; without this,
    the worker's tracker unlinks the segment at interpreter exit and the
    parent finds nothing.  The parent's own attach re-registers the
    segment, and its ``unlink()`` balances that registration.
    """
    try:
        resource_tracker.unregister(name, "shared_memory")
    except Exception:  # pragma: no cover - tracker quirks are platform-bound
        pass


def write_columns(columns: Dict[str, "np.ndarray"]) -> ColumnBlockHandle:
    """Copy ``columns`` into a fresh shared-memory segment (worker side).

    Returns the handle to ship back through the pickle channel.  The
    segment is left for the parent to unlink; the worker's own tracker
    registration is removed so worker exit cannot reap it first.
    """
    _require_shm()
    layout = []
    offset = 0
    for name, column in columns.items():
        column = np.ascontiguousarray(column)
        layout.append((name, (column.dtype.str, int(column.shape[0]), offset)))
        offset += int(column.nbytes)
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        for name, (dtype, length, start) in layout:
            view = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=segment.buf, offset=start
            )
            view[:] = columns[name]
            del view  # drop the buffer view before close()
    finally:
        handle = ColumnBlockHandle(
            name=segment.name, layout=tuple(layout), nbytes=offset
        )
        segment.close()
        _untrack(segment._name)
    return handle


def read_columns(
    handle: ColumnBlockHandle, *, unlink: bool = True
) -> Dict[str, "np.ndarray"]:
    """Attach, copy out the columns, and (by default) unlink (parent side).

    The returned arrays are private copies, safe to keep after the
    segment is gone.  Pass ``unlink=False`` to leave the segment alive
    (the caller then owns the eventual :func:`release_columns`).
    """
    _require_shm()
    segment = shared_memory.SharedMemory(name=handle.name)
    try:
        out = {}
        for name, (dtype, length, start) in handle.layout:
            view = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=segment.buf, offset=start
            )
            out[name] = view.copy()
            del view
    finally:
        segment.close()
        if unlink:
            segment.unlink()
    return out


def release_columns(handle: Optional[ColumnBlockHandle]) -> None:
    """Unlink a handle's segment without reading it (cleanup path)."""
    if handle is None or not shm_available():
        return
    try:
        segment = shared_memory.SharedMemory(name=handle.name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()
