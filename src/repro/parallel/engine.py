"""The process-pool replication engine.

Fans a picklable worker out over independent items and returns the
results **in submission order**, so callers see exactly what a serial
loop would have produced.  Scheduling is chunked and straggler-aware:

* items are grouped into small chunks (``items / (jobs * 4)`` by
  default) and every chunk is submitted to the shared pool queue up
  front.  Idle workers pull the next chunk the moment they finish, so a
  straggling replicate delays only its own small chunk instead of a
  statically partitioned quarter of the run -- oversubscription *is* the
  work-stealing policy;
* ``jobs=1`` bypasses the pool entirely and runs the exact legacy
  serial path in-process (no executor, no pickling);
* a worker crash is captured in the child and re-raised in the parent
  as :class:`ReplicateError` naming the first crashed item by position,
  deterministically (the lowest position wins, regardless of which
  chunk happened to finish first).

Workers must be module-level functions and items picklable; both are
shipped through the pool's pipe even under the fork start method.
"""

from __future__ import annotations

import math
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Chunks per worker; >1 oversubscribes so stragglers rebalance.
OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class WorkerCrash:
    """Picklable record of an exception raised inside a worker."""

    position: int
    error_type: str
    message: str
    traceback_text: str


class ReplicateError(RuntimeError):
    """A replicate failed (in a worker process or the serial path).

    Attributes:
        position: Index of the failed item in the submitted sequence.
        error_type: Exception class name raised by the worker.
        traceback_text: Formatted worker-side traceback.
    """

    def __init__(
        self,
        message: str,
        *,
        position: int = -1,
        error_type: str = "",
        traceback_text: str = "",
    ) -> None:
        super().__init__(message)
        self.position = position
        self.error_type = error_type
        self.traceback_text = traceback_text

    @classmethod
    def from_crash(cls, crash: WorkerCrash) -> "ReplicateError":
        return cls(
            f"replicate #{crash.position} crashed in worker: "
            f"{crash.error_type}: {crash.message}",
            position=crash.position,
            error_type=crash.error_type,
            traceback_text=crash.traceback_text,
        )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None`` means all cores."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def default_chunk_size(items: int, jobs: int) -> int:
    """Chunk size that oversubscribes each worker ``OVERSUBSCRIPTION``-fold."""
    if items < 1:
        return 1
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return max(1, math.ceil(items / (jobs * OVERSUBSCRIPTION)))


def _run_chunk(
    worker: Callable[[Any], Any],
    positioned: Sequence[Tuple[int, Any]],
) -> List[Tuple[int, bool, Any]]:
    """Run one chunk in a worker process, capturing crashes per item."""
    out: List[Tuple[int, bool, Any]] = []
    for position, item in positioned:
        try:
            out.append((position, True, worker(item)))
        except Exception as exc:
            out.append(
                (
                    position,
                    False,
                    WorkerCrash(
                        position=position,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        traceback_text=traceback.format_exc(),
                    ),
                )
            )
    return out


def parallel_map(
    worker: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Map ``worker`` over ``items``, returning results in item order.

    Args:
        worker: Module-level callable run once per item (in a pool
            worker when ``jobs > 1``).
        items: The work items; materialised once, order defines result
            order.
        jobs: Worker processes.  ``None`` uses all cores; ``1`` runs the
            exact serial in-process path.
        chunk_size: Items per pool task; defaults to
            :func:`default_chunk_size`.

    Raises:
        ReplicateError: if any item's worker raised; the error names the
            lowest failed position regardless of completion order.
    """
    work = list(items)
    if not work:
        return []
    effective_jobs = min(resolve_jobs(jobs), len(work))
    if effective_jobs <= 1:
        return _serial_map(worker, work)
    if chunk_size is None:
        chunk_size = default_chunk_size(len(work), effective_jobs)
    elif chunk_size < 1:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    positioned = list(enumerate(work))
    chunks = [
        positioned[start : start + chunk_size]
        for start in range(0, len(positioned), chunk_size)
    ]
    results: Dict[int, Any] = {}
    crashes: List[WorkerCrash] = []
    try:
        with ProcessPoolExecutor(max_workers=effective_jobs) as pool:
            futures = [pool.submit(_run_chunk, worker, chunk) for chunk in chunks]
            for future in as_completed(futures):
                for position, ok, payload in future.result():
                    if ok:
                        results[position] = payload
                    else:
                        crashes.append(payload)
    except BrokenProcessPool as exc:
        raise ReplicateError(
            "worker pool died before returning results (a worker was "
            "killed or could not start); rerun with jobs=1 to debug "
            f"in-process: {exc}"
        ) from exc
    if crashes:
        first = min(crashes, key=lambda crash: crash.position)
        raise ReplicateError.from_crash(first)
    return [results[position] for position in range(len(work))]


def _serial_map(worker: Callable[[Any], Any], work: Sequence[Any]) -> List[Any]:
    """The legacy in-process path, with the same crash surface."""
    out: List[Any] = []
    for position, item in enumerate(work):
        try:
            out.append(worker(item))
        except ReplicateError:
            raise
        except Exception as exc:
            raise ReplicateError(
                f"replicate #{position} crashed: {type(exc).__name__}: {exc}",
                position=position,
                error_type=type(exc).__name__,
                traceback_text=traceback.format_exc(),
            ) from exc
    return out
