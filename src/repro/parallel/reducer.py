"""Ordered reduction of replicate envelopes.

Aggregation happens in **position order** (the order the specs were
submitted), never completion order, so means, standard errors, and
fingerprints are identical for serial runs, parallel runs, and parallel
runs whose workers finished in any permutation.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import merge_snapshots
from repro.parallel.envelope import ReplicateEnvelope


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (ordinary left-to-right summation, order-fixed)."""
    if not values:
        raise ValueError("cannot average zero values")
    return sum(values) / len(values)


def stderr(values: Sequence[float]) -> float:
    """Standard error of the mean; 0.0 for fewer than two values.

    A single replicate carries no spread information, so its error bar
    is zero -- not NaN and not a ZeroDivisionError.
    """
    n = len(values)
    if n < 2:
        return 0.0
    centre = mean(values)
    variance = sum((value - centre) ** 2 for value in values) / (n - 1)
    return math.sqrt(variance / n)


def ordered(envelopes: Sequence[ReplicateEnvelope]) -> List[ReplicateEnvelope]:
    """Envelopes sorted by position (stable across completion orders)."""
    return sorted(envelopes, key=lambda envelope: envelope.position)


@dataclass(frozen=True)
class MetricAggregate:
    """Mean and standard error of one metric over the replicates."""

    mean: float
    stderr: float
    count: int
    values: Tuple[float, ...]


def aggregate_metrics(
    envelopes: Sequence[ReplicateEnvelope],
    keys: Optional[Sequence[str]] = None,
) -> Dict[str, MetricAggregate]:
    """Aggregate numeric metrics across envelopes, in position order.

    Args:
        envelopes: Replicate envelopes (any order; re-sorted here).
        keys: Metric names to aggregate; defaults to every key of the
            first envelope whose value is an int or float.
    """
    if not envelopes:
        raise ValueError("cannot aggregate zero envelopes")
    by_position = ordered(envelopes)
    if keys is None:
        keys = [
            key
            for key, value in by_position[0].metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
    out: Dict[str, MetricAggregate] = {}
    for key in keys:
        values = tuple(float(envelope.metrics[key]) for envelope in by_position)
        out[key] = MetricAggregate(
            mean=mean(values),
            stderr=stderr(values),
            count=len(values),
            values=values,
        )
    return out


def merge_telemetry(
    envelopes: Sequence[ReplicateEnvelope],
) -> Optional[Dict[str, Any]]:
    """Merge per-replicate telemetry payloads, in position order.

    Metric snapshots merge via :func:`repro.obs.merge_snapshots`
    (counters and histogram bins sum, gauges take the high-water mark);
    spans and events are concatenated position-by-position, each tagged
    with its ``replicate`` index.  Because everything is keyed on
    *position* -- never completion order or worker identity -- the merged
    payload is byte-identical for ``jobs=1`` and ``jobs=N`` runs of the
    same specs.

    Returns ``None`` when no envelope carries telemetry.
    """
    payloads = [
        (envelope.position, envelope.telemetry)
        for envelope in ordered(envelopes)
        if envelope.telemetry is not None
    ]
    if not payloads:
        return None
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    dropped_spans = 0
    dropped_events = 0
    for position, payload in payloads:
        for span in payload.get("spans", ()):
            spans.append({**span, "replicate": position})
        for event in payload.get("events", ()):
            events.append({**event, "replicate": position})
        dropped_spans += payload.get("dropped_spans", 0)
        dropped_events += payload.get("dropped_events", 0)
    return {
        "metrics": merge_snapshots([payload["metrics"] for _, payload in payloads]),
        "spans": spans,
        "events": events,
        "dropped_spans": dropped_spans,
        "dropped_events": dropped_events,
    }


def combined_fingerprint(envelopes: Sequence[ReplicateEnvelope]) -> str:
    """One SHA-256 over all per-replicate fingerprints, in position order.

    This is the checksum the benchmark harness compares between serial
    and parallel runs: it is equal iff every replicate's metrics are.
    """
    digest = hashlib.sha256()
    for envelope in ordered(envelopes):
        digest.update(f"{envelope.position}:{envelope.fingerprint}\n".encode("ascii"))
    return digest.hexdigest()
