"""Executing MapReduce jobs on the redundant DCA substrate.

The map phase is exactly a DCA computation: one task per chunk, each
task's jobs performed by unreliable nodes under the configured
redundancy strategy.  A failed job reports the chunk's *colluding
corrupted output* (the Byzantine worst case); the vote must beat the
corruption for the reduce to see the true map output.  The reduce phase
runs on the (trusted) client, per the paper's assumption 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.strategy import RedundancyStrategy
from repro.dca.config import DcaConfig
from repro.dca.report import DcaReport
from repro.dca.simulation import DcaSimulation
from repro.dca.workload import Task
from repro.mapreduce.job import MapOutput, MapReduceJob

#: Produces the colluding wrong output failures agree on for a chunk.
Corruptor = Callable[[int, MapOutput], MapOutput]


def default_corruptor(chunk_index: int, true_output: MapOutput) -> MapOutput:
    """A plausible-but-wrong map output all failures agree on.

    The corruption must remain *reduce-compatible* (the reduce function
    will be applied to it if the vote is lost), so it is type-aware:
    numbers are nudged, (key, count) tuples get one count inflated, and
    anything else is replaced by a chunk-tagged tuple -- in which case
    the reducer must tolerate foreign values, or a custom corruptor
    should be supplied.
    """
    if isinstance(true_output, bool):
        return not true_output
    if isinstance(true_output, int):
        return true_output + 1 + chunk_index % 3
    if isinstance(true_output, float):
        return true_output * 1.5 + 1.0
    if (
        isinstance(true_output, tuple)
        and true_output
        and all(isinstance(item, tuple) and len(item) == 2 for item in true_output)
    ):
        key, count = true_output[0]
        inflated = ((key, count + 1 + chunk_index % 5),) + true_output[1:]
        return inflated
    return ("corrupted", chunk_index, hash(true_output) & 0xFFFF)


@dataclass
class MapReduceReport:
    """Result of one redundant MapReduce execution."""

    output: MapOutput
    expected: MapOutput
    map_report: DcaReport
    corrupted_chunks: int

    @property
    def correct(self) -> bool:
        return self.output == self.expected

    @property
    def map_reliability(self) -> float:
        return self.map_report.system_reliability

    @property
    def cost_factor(self) -> float:
        return self.map_report.cost_factor


class MapReduceEngine:
    """Runs MapReduce jobs over an unreliable node pool.

    Args:
        strategy: Redundancy strategy for the map tasks.
        nodes: Node-pool size.
        reliability: Node reliability (or distribution), as in
            :class:`~repro.dca.config.DcaConfig`.
        corruptor: How colluding failures corrupt each chunk's output.
        seed: Root seed.
        config_overrides: Extra :class:`DcaConfig` fields (churn, failure
            model, durations, ...).
    """

    def __init__(
        self,
        strategy: RedundancyStrategy,
        *,
        nodes: int = 200,
        reliability=0.7,
        corruptor: Corruptor = default_corruptor,
        seed: int = 0,
        **config_overrides,
    ) -> None:
        self.strategy = strategy
        self.nodes = nodes
        self.reliability = reliability
        self.corruptor = corruptor
        self.seed = seed
        self.config_overrides = config_overrides

    def run(self, job: MapReduceJob) -> MapReduceReport:
        """Execute the map phase redundantly, then reduce the verdicts."""
        true_outputs: Dict[int, MapOutput] = {}
        simulation = DcaSimulation(
            DcaConfig(
                strategy=self.strategy,
                tasks=job.num_tasks,  # placeholder; tasks submitted below
                nodes=self.nodes,
                reliability=self.reliability,
                seed=self.seed,
                **self.config_overrides,
            )
        )
        # Submit the real map tasks instead of the workload's synthetic
        # binary ones: each task's true value is the honest map output and
        # its wrong value the colluding corruption.
        for index, chunk in enumerate(job.chunks):
            true_output = job.map_function(chunk)
            true_outputs[index] = true_output
            wrong_output = self.corruptor(index, true_output)
            if wrong_output == true_output:
                raise ValueError(
                    f"corruptor returned the true output for chunk {index}; "
                    "corruption must differ"
                )
            simulation.server.submit(
                Task(task_id=index, true_value=true_output, wrong_value=wrong_output)
            )
        simulation.churn.start()
        simulation.sim.run()
        map_report = DcaReport(
            strategy=self.strategy.describe(),
            tasks_submitted=job.num_tasks,
            records=simulation.server.records,
            makespan=simulation.sim.now,
            total_jobs_dispatched=simulation.server.total_jobs_dispatched,
            jobs_timed_out=simulation.server.jobs_timed_out,
            seed=self.seed,
        )
        # Reduce accepted map outputs in chunk order.
        verdicts = {record.task_id: record.value for record in map_report.records}
        output = job.identity
        corrupted = 0
        for index in range(job.num_tasks):
            value = verdicts[index]
            if value != true_outputs[index]:
                corrupted += 1
            output = job.reduce_function(output, value)
        return MapReduceReport(
            output=output,
            expected=job.expected_output(),
            map_report=map_report,
            corrupted_chunks=corrupted,
        )


def run_mapreduce(
    job: MapReduceJob,
    strategy: RedundancyStrategy,
    *,
    nodes: int = 200,
    reliability=0.7,
    seed: int = 0,
    **config_overrides,
) -> MapReduceReport:
    """One-call MapReduce execution under redundancy."""
    engine = MapReduceEngine(
        strategy,
        nodes=nodes,
        reliability=reliability,
        seed=seed,
        **config_overrides,
    )
    return engine.run(job)
