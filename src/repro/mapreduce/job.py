"""MapReduce job descriptions.

A job is a list of input chunks, a pure map function, and a reduce
function that must be commutative and associative (the engine folds
accepted map outputs in chunk order, but redundancy means outputs arrive
from a vote, not a deterministic worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

#: A map output must be hashable so votes can tally it.
MapOutput = Hashable


@dataclass(frozen=True)
class MapReduceJob:
    """One MapReduce computation.

    Attributes:
        chunks: The input splits; each becomes one DCA task.
        map_function: Pure function chunk -> hashable map output.
        reduce_function: Fold of two map outputs into one.
        identity: The reduce fold's initial value.
    """

    chunks: Tuple
    map_function: Callable
    reduce_function: Callable
    identity: MapOutput

    def __post_init__(self) -> None:
        if not self.chunks:
            raise ValueError("a MapReduce job needs at least one input chunk")

    @property
    def num_tasks(self) -> int:
        return len(self.chunks)

    def expected_output(self) -> MapOutput:
        """Ground truth: map every chunk honestly and reduce."""
        result = self.identity
        for chunk in self.chunks:
            result = self.reduce_function(result, self.map_function(chunk))
        return result


def _merge_counts(left: Tuple, right: Tuple) -> Tuple:
    """Merge two sorted (word, count) tuples."""
    counts: Dict[str, int] = {}
    for word, count in left:
        counts[word] = counts.get(word, 0) + count
    for word, count in right:
        counts[word] = counts.get(word, 0) + count
    return tuple(sorted(counts.items()))


def _count_words(chunk: str) -> Tuple:
    counts: Dict[str, int] = {}
    for word in chunk.split():
        word = word.lower().strip(".,;:!?\"'()")
        if word:
            counts[word] = counts.get(word, 0) + 1
    return tuple(sorted(counts.items()))


def wordcount_job(text: str, *, chunk_size: int = 200) -> MapReduceJob:
    """The canonical example: word counting over a text.

    The text splits into word-aligned chunks of roughly ``chunk_size``
    characters; map outputs are sorted (word, count) tuples (hashable, so
    votable); reduce merges them.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    words = text.split()
    if not words:
        raise ValueError("cannot count words of an empty text")
    chunks: List[str] = []
    current: List[str] = []
    length = 0
    for word in words:
        current.append(word)
        length += len(word) + 1
        if length >= chunk_size:
            chunks.append(" ".join(current))
            current = []
            length = 0
    if current:
        chunks.append(" ".join(current))
    return MapReduceJob(
        chunks=tuple(chunks),
        map_function=_count_words,
        reduce_function=_merge_counts,
        identity=(),
    )
