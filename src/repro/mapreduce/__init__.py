"""A MapReduce-style computation layer on the redundant DCA substrate.

The paper's opening examples of DCAs are grid systems, volunteer
computing, *and MapReduce systems (e.g., Hadoop)*, and its Section 3.1
notes that Hadoop relies on traditional redundancy.  This package shows
what "smart redundancy" looks like for that third class: a miniature
MapReduce whose map tasks run as redundant jobs under any
:class:`~repro.core.strategy.RedundancyStrategy`, so a wrong map output
must out-vote the redundancy before it can poison the reduce.

Pieces:

* :class:`~repro.mapreduce.job.MapReduceJob` -- job description: input
  chunks, a map function, a (commutative, associative) reduce function;
* :class:`~repro.mapreduce.engine.MapReduceEngine` -- executes the map
  phase on the DCA discrete-event model (each chunk is one task; each
  redundant job applies the map function or, when Byzantine, a corrupted
  variant) and folds the accepted map outputs through the reducer;
* :func:`~repro.mapreduce.engine.run_mapreduce` -- one-call entry point.

The map outputs are arbitrary hashable values, exercising the paper's
Section 5.3 non-binary regime end to end: colluding corruption (all
failures agree on one wrong output per chunk) remains the worst case.
"""

from repro.mapreduce.job import MapReduceJob, wordcount_job
from repro.mapreduce.engine import MapReduceEngine, MapReduceReport, run_mapreduce

__all__ = [
    "MapReduceEngine",
    "MapReduceJob",
    "MapReduceReport",
    "run_mapreduce",
    "wordcount_job",
]
