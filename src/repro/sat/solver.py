"""Assignment checking: the actual computation a volunteer job performs.

The paper's BOINC tasks "test whether particular Boolean assignments
satisfy a Boolean formula": each task owns a slice of the assignment space
and answers whether it contains a satisfying assignment.  Two range
checkers are provided -- a pure-Python reference and a vectorised numpy
fast path (bit-parallel across assignments) -- plus a DPLL solver used as
an independent oracle in tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.sat.formula import CnfFormula


def evaluate_assignment(formula: CnfFormula, assignment: int) -> bool:
    """True if integer-encoded ``assignment`` satisfies the formula."""
    if not 0 <= assignment < formula.assignment_space:
        raise ValueError(
            f"assignment {assignment} outside [0, 2**{formula.num_vars})"
        )
    for clause in formula.clauses:
        for literal in clause:
            value = (assignment >> (abs(literal) - 1)) & 1
            if (literal > 0) == bool(value):
                break
        else:
            return False
    return True


def check_range(formula: CnfFormula, start: int, stop: int) -> bool:
    """Reference implementation: any satisfying assignment in [start, stop)?

    Pure Python; use :func:`check_range_numpy` for real workloads.
    """
    _validate_range(formula, start, stop)
    return any(evaluate_assignment(formula, a) for a in range(start, stop))


def check_range_numpy(
    formula: CnfFormula, start: int, stop: int, *, chunk: int = 1 << 16
) -> bool:
    """Vectorised range check: evaluates all clauses over blocks of
    assignments at once.

    For each block, a clause is *violated* by exactly the assignments where
    all three literals are false; a formula is satisfied where no clause is
    violated.  Memory is bounded by ``chunk`` assignments per block.
    """
    _validate_range(formula, start, stop)
    if chunk < 1:
        raise ValueError(f"chunk must be positive, got {chunk}")
    for block_start in range(start, stop, chunk):
        block_stop = min(block_start + chunk, stop)
        assignments = np.arange(block_start, block_stop, dtype=np.int64)
        satisfied = np.ones(assignments.shape, dtype=bool)
        for clause in formula.clauses:
            clause_true = np.zeros(assignments.shape, dtype=bool)
            for literal in clause:
                bits = (assignments >> (abs(literal) - 1)) & 1
                if literal > 0:
                    clause_true |= bits.astype(bool)
                else:
                    clause_true |= ~bits.astype(bool)
            satisfied &= clause_true
            if not satisfied.any():
                break
        if satisfied.any():
            return True
    return False


def _validate_range(formula: CnfFormula, start: int, stop: int) -> None:
    if not 0 <= start <= stop <= formula.assignment_space:
        raise ValueError(
            f"range [{start}, {stop}) outside assignment space "
            f"[0, {formula.assignment_space})"
        )


def dpll_satisfiable(formula: CnfFormula) -> bool:
    """DPLL with unit propagation and pure-literal elimination.

    Independent of the enumeration checkers; used as the oracle when
    testing decomposition and the volunteer substrate end to end.
    """
    clauses = [frozenset(clause) for clause in formula.clauses]
    return _dpll(clauses, {})


def _dpll(clauses, assignment: Dict[int, bool]) -> bool:
    clauses = _simplify(clauses, assignment)
    if clauses is None:
        return False
    if not clauses:
        return True
    # Unit propagation.
    for clause in clauses:
        if len(clause) == 1:
            literal = next(iter(clause))
            new_assignment = dict(assignment)
            new_assignment[abs(literal)] = literal > 0
            return _dpll(clauses, new_assignment)
    # Pure-literal elimination.
    literals = {l for clause in clauses for l in clause}
    for literal in literals:
        if -literal not in literals:
            new_assignment = dict(assignment)
            new_assignment[abs(literal)] = literal > 0
            return _dpll(clauses, new_assignment)
    # Branch on the first unassigned variable of the shortest clause.
    shortest = min(clauses, key=len)
    variable = abs(next(iter(shortest)))
    for value in (True, False):
        new_assignment = dict(assignment)
        new_assignment[variable] = value
        if _dpll(clauses, new_assignment):
            return True
    return False


def _simplify(clauses, assignment: Dict[int, bool]):
    """Apply an assignment: drop satisfied clauses, shrink others.
    Returns ``None`` on an empty (falsified) clause."""
    result = []
    for clause in clauses:
        satisfied = False
        remaining = []
        for literal in clause:
            variable = abs(literal)
            if variable in assignment:
                if (literal > 0) == assignment[variable]:
                    satisfied = True
                    break
            else:
                remaining.append(literal)
        if satisfied:
            continue
        if not remaining:
            return None
        result.append(frozenset(remaining))
    return result
