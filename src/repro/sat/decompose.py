"""Slicing a 3-SAT problem into the paper's range-tasks.

"Each problem was decomposed into 140 tasks" (Section 4.1): the assignment
space ``[0, 2**n)`` splits into 140 near-equal contiguous slices; the task
for a slice reports whether it contains a satisfying assignment (binary,
per assumption 4); the problem's answer is the OR of all task verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.sat.formula import CnfFormula
from repro.sat.solver import check_range_numpy


@dataclass(frozen=True)
class SatTaskSpec:
    """One slice of the assignment space.

    Attributes:
        task_id: Position within the decomposition.
        start / stop: Assignment range ``[start, stop)`` this task checks.
    """

    task_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def compute(self, formula: CnfFormula) -> bool:
        """Actually perform the job's work: exhaustively check the slice."""
        return check_range_numpy(formula, self.start, self.stop)


def decompose(formula: CnfFormula, num_tasks: int = 140) -> List[SatTaskSpec]:
    """Split the assignment space into ``num_tasks`` contiguous slices.

    Slice sizes differ by at most one; the default 140 matches the paper.
    If the space has fewer assignments than ``num_tasks``, one task per
    assignment is produced.
    """
    if num_tasks < 1:
        raise ValueError(f"need at least one task, got {num_tasks}")
    space = formula.assignment_space
    num_tasks = min(num_tasks, space)
    base, extra = divmod(space, num_tasks)
    specs: List[SatTaskSpec] = []
    start = 0
    for task_id in range(num_tasks):
        size = base + (1 if task_id < extra else 0)
        specs.append(SatTaskSpec(task_id=task_id, start=start, stop=start + size))
        start += size
    assert start == space
    return specs


def recombine(verdicts: Mapping[int, bool]) -> bool:
    """The problem's answer: satisfiable iff any slice found a witness."""
    if not verdicts:
        raise ValueError("no task verdicts to recombine")
    return any(verdicts.values())
