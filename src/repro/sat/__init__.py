"""The 3-SAT workload used by the paper's BOINC deployment.

The evaluation decomposed 22-variable 3-SAT problems into 140 tasks, each
testing whether any Boolean assignment in its slice satisfies the formula
(Section 4.1).  A task's result is binary ("a satisfying assignment exists
in my range": yes/no), matching assumption 4, and the problem's answer is
the OR of the task results.

* :mod:`~repro.sat.formula` -- CNF representation and random 3-SAT
  generation,
* :mod:`~repro.sat.solver` -- assignment-range checkers (pure-Python
  reference and a vectorised numpy fast path) plus a DPLL reference
  solver,
* :mod:`~repro.sat.decompose` -- slicing a problem into the paper's
  140 range-tasks and recombining task verdicts.
"""

from repro.sat.formula import Clause, CnfFormula, random_3sat
from repro.sat.solver import (
    check_range,
    check_range_numpy,
    dpll_satisfiable,
    evaluate_assignment,
)
from repro.sat.decompose import SatTaskSpec, decompose, recombine

__all__ = [
    "Clause",
    "CnfFormula",
    "SatTaskSpec",
    "check_range",
    "check_range_numpy",
    "decompose",
    "dpll_satisfiable",
    "evaluate_assignment",
    "random_3sat",
    "recombine",
]
