"""CNF formulas and random 3-SAT generation.

Variables are numbered 1..n; a literal is a non-zero integer whose sign is
its polarity (DIMACS convention).  An *assignment* is an integer in
``[0, 2**n)`` whose bit ``v - 1`` gives variable ``v``'s value -- integers
make range decomposition (the paper's task slicing) trivial.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: A clause is a tuple of literals (its disjunction).
Clause = Tuple[int, ...]


@dataclass(frozen=True)
class CnfFormula:
    """A propositional formula in conjunctive normal form.

    Attributes:
        num_vars: Number of variables (numbered 1..num_vars).
        clauses: The conjunction of disjunctive clauses.
    """

    num_vars: int
    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        if self.num_vars < 1:
            raise ValueError(f"need at least one variable, got {self.num_vars}")
        for clause in self.clauses:
            if not clause:
                raise ValueError("empty clause (formula trivially unsatisfiable)")
            for literal in clause:
                if literal == 0 or abs(literal) > self.num_vars:
                    raise ValueError(f"literal {literal} out of range for {self.num_vars} vars")

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def assignment_space(self) -> int:
        """Total number of assignments, 2**num_vars."""
        return 1 << self.num_vars

    def literals(self) -> Iterable[int]:
        for clause in self.clauses:
            yield from clause

    def to_dimacs(self) -> str:
        """Serialise in DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {self.num_clauses}"]
        lines.extend(" ".join(str(l) for l in clause) + " 0" for clause in self.clauses)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CnfFormula":
        """Parse DIMACS CNF (comments and the problem line honoured)."""
        num_vars = 0
        clauses: List[Clause] = []
        current: List[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) < 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {line!r}")
                num_vars = int(parts[2])
                continue
            for token in line.split():
                literal = int(token)
                if literal == 0:
                    if current:
                        clauses.append(tuple(current))
                        current = []
                else:
                    current.append(literal)
        if current:
            clauses.append(tuple(current))
        if num_vars == 0:
            num_vars = max((abs(l) for c in clauses for l in c), default=1)
        return cls(num_vars=num_vars, clauses=tuple(clauses))


def random_3sat(
    num_vars: int,
    num_clauses: int,
    rng: random.Random,
) -> CnfFormula:
    """A uniformly random 3-SAT instance.

    Each clause picks three *distinct* variables and random polarities.
    At the classic ratio ``num_clauses / num_vars ~ 4.27`` instances sit
    near the satisfiability phase transition; the paper's 22-variable
    problems are small enough to solve exhaustively either way.
    """
    if num_vars < 3:
        raise ValueError(f"3-SAT needs at least 3 variables, got {num_vars}")
    if num_clauses < 1:
        raise ValueError(f"need at least one clause, got {num_clauses}")
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
        clauses.append(clause)
    return CnfFormula(num_vars=num_vars, clauses=tuple(clauses))
