"""Event records and the stable event queue underlying the simulator.

Events are ordered by simulated time, then by priority, then by insertion
sequence number.  The sequence number makes ordering *stable*: two events
scheduled for the same instant fire in the order they were scheduled, which
keeps simulations deterministic for a fixed seed regardless of heap
internals.

Performance notes (the queue is the single hottest structure in every
DES run):

* :class:`Event` uses ``__slots__`` instead of a dataclass ``__dict__``;
  heap entries are ``(time, priority, seq, event)`` tuples so ``heapq``
  compares plain tuples in C instead of calling ``Event.__lt__`` in
  Python (``seq`` is unique, so comparisons never reach the event).
* Cancellation stays lazy (O(1)), but the queue now *compacts* the heap
  whenever cancelled entries outnumber live ones past a threshold, so
  heavy cancel/reschedule churn (every completed job cancels its
  deadline event) can no longer grow the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Default priority for scheduled events.  Lower values fire first among
#: events scheduled for the same simulated time.
DEFAULT_PRIORITY = 0

#: Compact only when at least this many cancelled entries are pending;
#: below it the rebuild costs more than the lazy pops it saves.
COMPACT_MIN_CANCELLED = 64


class Event:
    """A single scheduled occurrence in the simulation.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-break among events at the same time (lower first).
        seq: Insertion sequence number; makes ordering total and stable.
        callback: Callable invoked when the event fires.  It receives the
            event itself, so payloads can be carried via :attr:`payload`.
        payload: Arbitrary user data attached to the event.
        cancelled: True once :meth:`cancel` has been called; cancelled
            events are skipped (and discarded) by the queue.
    """

    __slots__ = ("time", "priority", "seq", "callback", "payload", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[["Event"], None],
        payload: Any = None,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark this event so the queue will skip it.

        Cancellation is O(1); the event stays in the heap until popped or
        compacted away.  Cancelling an already-cancelled event is a no-op.
        """
        self.cancelled = True

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} prio={self.priority} seq={self.seq}{state}>"


#: One heap entry: the tuple prefix is the exact historical sort key, so
#: replacing ``Event.__lt__`` comparisons with tuple comparisons cannot
#: change pop order for any input (``seq`` is unique per queue).
_HeapEntry = Tuple[float, int, int, Event]


class EventQueue:
    """A stable priority queue of :class:`Event` objects.

    Wraps :mod:`heapq` with lazy deletion for cancelled events, periodic
    compaction, and a monotone sequence counter for stable ordering.
    """

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._next_seq = 0
        self._live = 0
        #: Cancelled entries still physically present in the heap.
        self._cancelled_pending = 0
        #: Cumulative :meth:`compact` sweeps (telemetry; survives clear()).
        self.compactions = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical heap entries, live *and* lazily-deleted (for tests and
        memory diagnostics; ``heap_size - len(queue)`` is the garbage)."""
        return len(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, payload)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it is still pending."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self._cancelled_pending += 1
            if (
                self._cancelled_pending >= COMPACT_MIN_CANCELLED
                and self._cancelled_pending * 2 >= len(self._heap)
            ):
                self.compact()

    def compact(self) -> None:
        """Physically drop every cancelled entry and re-heapify.

        Pop order is unaffected: entries keep their ``(time, priority,
        seq)`` keys, and heapify preserves the induced total order.
        """
        if self._cancelled_pending == 0:
            return
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self.compactions += 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        if heap:
            return heap[0][0]
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        return self.pop_due(None)

    def pop_due(self, limit: Optional[float]) -> Optional[Event]:
        """Pop the next live event, unless it fires strictly after ``limit``.

        Returns ``None`` when the queue is empty *or* the next live event
        lies beyond ``limit`` (distinguish via ``bool(queue)``).  This is
        the run loop's single-call fast path: one cancelled-entry sweep
        serves both the peek and the pop.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heappop(heap)
                self._cancelled_pending -= 1
                continue
            if limit is not None and entry[0] > limit:
                return None
            heappop(heap)
            self._live -= 1
            return entry[3]
        return None

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
        self._live = 0
        self._cancelled_pending = 0
