"""Event records and the stable event queue underlying the simulator.

Events are ordered by simulated time, then by priority, then by insertion
sequence number.  The sequence number makes ordering *stable*: two events
scheduled for the same instant fire in the order they were scheduled, which
keeps simulations deterministic for a fixed seed regardless of heap
internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

#: Default priority for scheduled events.  Lower values fire first among
#: events scheduled for the same simulated time.
DEFAULT_PRIORITY = 0


@dataclass(order=False)
class Event:
    """A single scheduled occurrence in the simulation.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-break among events at the same time (lower first).
        seq: Insertion sequence number; makes ordering total and stable.
        callback: Callable invoked when the event fires.  It receives the
            event itself, so payloads can be carried via :attr:`payload`.
        payload: Arbitrary user data attached to the event.
        cancelled: True once :meth:`cancel` has been called; cancelled
            events are skipped (and discarded) by the queue.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[["Event"], None]
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the queue will skip it.

        Cancellation is O(1); the event stays in the heap until popped and
        is then dropped.  Cancelling an already-cancelled event is a no-op.
        """
        self.cancelled = True

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} prio={self.priority} seq={self.seq}{state}>"


class EventQueue:
    """A stable priority queue of :class:`Event` objects.

    Wraps :mod:`heapq` with lazy deletion for cancelled events and a
    monotone sequence counter for stable ordering.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter: Iterator[int] = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it is still pending."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if self._heap:
            return self._heap[0].time
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
        self._live = 0

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
