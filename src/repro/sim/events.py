"""Event records and the stable event queue underlying the simulator.

Events are ordered by simulated time, then by priority, then by insertion
sequence number.  The sequence number makes ordering *stable*: two events
scheduled for the same instant fire in the order they were scheduled, which
keeps simulations deterministic for a fixed seed regardless of heap
internals.

Performance notes (the queue is the single hottest structure in every
DES run):

* :class:`Event` uses ``__slots__`` instead of a dataclass ``__dict__``;
  heap entries are ``(time, priority, seq, event)`` tuples so ``heapq``
  compares plain tuples in C instead of calling ``Event.__lt__`` in
  Python (``seq`` is unique, so comparisons never reach the event).
* Cancellation stays lazy (O(1)), but the queue now *compacts* the heap
  whenever cancelled entries outnumber live ones past a threshold, so
  heavy cancel/reschedule churn (every completed job cancels its
  deadline event) can no longer grow the heap without bound.
* At very high event density the ``log n`` of the binary heap itself
  becomes the bottleneck, so :class:`CalendarQueue` offers a calendar
  queue (Brown 1988) with amortised O(1) push/pop.  Both structures
  implement the same interface and produce the **exact same pop order**
  for any input (the total order is ``(time, priority, seq)`` either
  way); :func:`make_queue` selects one by name.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

#: Default priority for scheduled events.  Lower values fire first among
#: events scheduled for the same simulated time.
DEFAULT_PRIORITY = 0

#: Compact only when at least this many cancelled entries are pending;
#: below it the rebuild costs more than the lazy pops it saves.
COMPACT_MIN_CANCELLED = 64


class Event:
    """A single scheduled occurrence in the simulation.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-break among events at the same time (lower first).
        seq: Insertion sequence number; makes ordering total and stable.
        callback: Callable invoked when the event fires.  It receives the
            event itself, so payloads can be carried via :attr:`payload`.
        payload: Arbitrary user data attached to the event.
        cancelled: True once :meth:`cancel` has been called; cancelled
            events are skipped (and discarded) by the queue.
    """

    __slots__ = ("time", "priority", "seq", "callback", "payload", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[["Event"], None],
        payload: Any = None,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark this event so the queue will skip it.

        Cancellation is O(1); the event stays in the heap until popped or
        compacted away.  Cancelling an already-cancelled event is a no-op.
        """
        self.cancelled = True

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} prio={self.priority} seq={self.seq}{state}>"


#: One heap entry: the tuple prefix is the exact historical sort key, so
#: replacing ``Event.__lt__`` comparisons with tuple comparisons cannot
#: change pop order for any input (``seq`` is unique per queue).
_HeapEntry = Tuple[float, int, int, Event]


class EventQueue:
    """A stable priority queue of :class:`Event` objects.

    Wraps :mod:`heapq` with lazy deletion for cancelled events, periodic
    compaction, and a monotone sequence counter for stable ordering.
    """

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._next_seq = 0
        self._live = 0
        #: Cancelled entries still physically present in the heap.
        self._cancelled_pending = 0
        #: Cumulative :meth:`compact` sweeps (telemetry; survives clear()).
        self.compactions = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical heap entries, live *and* lazily-deleted (for tests and
        memory diagnostics; ``heap_size - len(queue)`` is the garbage)."""
        return len(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, payload)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it is still pending."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self._cancelled_pending += 1
            if (
                self._cancelled_pending >= COMPACT_MIN_CANCELLED
                and self._cancelled_pending * 2 >= len(self._heap)
            ):
                self.compact()

    def compact(self) -> None:
        """Physically drop every cancelled entry and re-heapify.

        Pop order is unaffected: entries keep their ``(time, priority,
        seq)`` keys, and heapify preserves the induced total order.
        """
        if self._cancelled_pending == 0:
            return
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self.compactions += 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        if heap:
            return heap[0][0]
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        return self.pop_due(None)

    def pop_due(self, limit: Optional[float]) -> Optional[Event]:
        """Pop the next live event, unless it fires strictly after ``limit``.

        Returns ``None`` when the queue is empty *or* the next live event
        lies beyond ``limit`` (distinguish via ``bool(queue)``).  This is
        the run loop's single-call fast path: one cancelled-entry sweep
        serves both the peek and the pop.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heappop(heap)
                self._cancelled_pending -= 1
                continue
            if limit is not None and entry[0] > limit:
                return None
            heappop(heap)
            self._live -= 1
            return entry[3]
        return None

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
        self._live = 0
        self._cancelled_pending = 0


#: Smallest calendar size; below this the ring buys nothing over a heap.
_CALENDAR_MIN_BUCKETS = 8
#: How many of the soonest events the width estimator samples (Brown
#: samples a bounded head so resize stays O(n) with a small constant).
_CALENDAR_WIDTH_SAMPLE = 25


class CalendarQueue:
    """A calendar queue (Brown 1988) with the heap's exact pop order.

    Events are hashed into a ring of time buckets of uniform ``width``;
    a pop scans from the current bucket forward, considering only
    entries that fall inside the bucket's current *year* (one full ring
    revolution).  With the ring sized to the live event count, pushes
    and pops touch O(1) entries on average, versus the heap's O(log n)
    -- the win shows up at the event densities of million-node runs.

    Determinism: buckets partition the time axis into disjoint
    intervals, so any in-year entry of the current bucket precedes every
    in-year entry of later buckets; within a bucket the minimum is taken
    by the full ``(time, priority, seq)`` key.  The induced pop order is
    therefore *identical* to :class:`EventQueue`'s for any schedule --
    property-tested in ``tests/sim/test_calendar_queue.py``.

    Cancellation is lazy with the same compaction policy as the heap;
    the ring doubles when live entries outgrow it and halves (down to a
    floor) when they shrink, re-estimating the bucket width from the
    sorted gaps of the soonest pending events each time.

    The in-year scan assumes the DES contract that pushes never predate
    the last popped time (``Simulator.schedule`` guards this).  Earlier
    pushes still pop -- the global-min fallback catches anything the
    year scan misses -- but steady-state O(1) behaviour needs the
    contract to hold.
    """

    def __init__(self) -> None:
        self._next_seq = 0
        self._live = 0
        self._cancelled_pending = 0
        #: Cumulative :meth:`compact` sweeps (telemetry; survives clear()).
        self.compactions = 0
        self._size = 0
        self._last_time = 0.0
        self._init_ring(_CALENDAR_MIN_BUCKETS, 1.0)

    # ------------------------------------------------------------------
    # Ring plumbing
    # ------------------------------------------------------------------

    def _init_ring(self, nbuckets: int, width: float) -> None:
        self._buckets: List[List[_HeapEntry]] = [[] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._width = width
        day = self._day_of(self._last_time)
        self._current = day % nbuckets
        #: Upper time bound of the current bucket's ongoing year visit.
        self._bucket_top = (day + 1) * width

    def _day_of(self, time: float) -> int:
        """Which bucket-width interval ``time`` falls in.

        Events at non-finite times are legal -- an infinite inter-event
        delay is the model's "never" (e.g. a vanishing churn rate) --
        but cannot be hashed to a day.  Day 0 is as correct as any
        other: bucket placement never affects pop order (an inf entry
        fails every in-year test and is reached only by the global-min
        fallback); it only affects the O(1) steady-state, which an
        at-infinity event does not have anyway.
        """
        quotient = time / self._width
        return int(quotient) if math.isfinite(quotient) else 0

    def _insert(self, entry: _HeapEntry) -> None:
        self._buckets[self._day_of(entry[0]) % self._nbuckets].append(entry)
        self._size += 1

    def _resize(self, nbuckets: int) -> None:
        entries = [
            entry
            for bucket in self._buckets
            for entry in bucket
            if not entry[3].cancelled
        ]
        self._cancelled_pending = 0
        self._size = 0
        self._init_ring(max(_CALENDAR_MIN_BUCKETS, nbuckets), self._estimate_width(entries))
        for entry in entries:
            self._insert(entry)

    def _estimate_width(self, entries: List[_HeapEntry]) -> float:
        """Bucket width from the mean gap of the soonest pending events.

        Deterministic (pure function of the pending schedule): sort the
        entry times, take the head sample, and spread each event over
        three mean gaps (Brown's rule of thumb keeps buckets at a few
        entries each without stranding years of empty buckets).
        """
        if len(entries) < 2:
            return max(self._width, 1e-9)
        # At-infinity events carry no spacing information and would blow
        # the width out to inf/nan; estimate from the finite schedule.
        times = sorted(entry[0] for entry in entries if math.isfinite(entry[0]))
        if len(times) < 2:
            return max(self._width, 1e-9)
        sample = times[: max(2, min(len(times), _CALENDAR_WIDTH_SAMPLE))]
        span = sample[-1] - sample[0]
        if span <= 0.0:
            # Co-scheduled burst: keep the current width; ties all land in
            # one bucket and the in-bucket key ordering handles them.
            return max(self._width, 1e-9)
        return 3.0 * span / (len(sample) - 1)

    # ------------------------------------------------------------------
    # Queue interface (mirrors EventQueue exactly)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical entries, live *and* lazily-deleted (diagnostics)."""
        return self._size

    def push(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, payload)
        self._insert((time, priority, seq, event))
        self._live += 1
        if self._live > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it is still pending."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self._cancelled_pending += 1
            if (
                self._cancelled_pending >= COMPACT_MIN_CANCELLED
                and self._cancelled_pending * 2 >= self._size
            ):
                self.compact()

    def compact(self) -> None:
        """Physically drop every cancelled entry (and right-size the ring)."""
        if self._cancelled_pending == 0:
            return
        self._resize(self._ring_target())
        self.compactions += 1

    def _ring_target(self) -> int:
        target = _CALENDAR_MIN_BUCKETS
        while target < self._live:
            target *= 2
        return target

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        entry = self._find_next(None, pop=False)
        return entry[0] if entry is not None else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        return self.pop_due(None)

    def pop_due(self, limit: Optional[float]) -> Optional[Event]:
        """Pop the next live event, unless it fires strictly after ``limit``.

        Same contract as :meth:`EventQueue.pop_due`: ``None`` when empty
        *or* when the next live event lies beyond ``limit``.
        """
        entry = self._find_next(limit, pop=True)
        return entry[3] if entry is not None else None

    def _find_next(
        self, limit: Optional[float], *, pop: bool
    ) -> Optional[_HeapEntry]:
        if self._size == 0:
            return None
        index = self._current
        top = self._bucket_top
        width = self._width
        for _ in range(self._nbuckets):
            bucket = self._buckets[index]
            best = -1
            best_key: Optional[Tuple[float, int, int]] = None
            position = 0
            while position < len(bucket):
                entry = bucket[position]
                if entry[3].cancelled:
                    # Swap-remove; order within a bucket is irrelevant.
                    bucket[position] = bucket[-1]
                    bucket.pop()
                    self._cancelled_pending -= 1
                    self._size -= 1
                    continue
                if entry[0] < top:
                    key = entry[:3]
                    if best_key is None or key < best_key:
                        best_key = key
                        best = position
                position += 1
            if best >= 0:
                entry = bucket[best]
                if limit is not None and entry[0] > limit:
                    return None
                if pop:
                    self._remove(bucket, best, entry, index, top)
                return entry
            index = (index + 1) % self._nbuckets
            top += width
        # A full revolution found nothing in-year: the next live event
        # lies one or more years out (or everything left was cancelled
        # and has just been purged).  Fall back to a direct global-min
        # search -- by the full key, so the total order is preserved even
        # at float bucket-boundary edge cases -- and jump the calendar to
        # the event's day so steady-state pops stay O(1).
        best_bucket = best = -1
        best_key = None
        for number, bucket in enumerate(self._buckets):
            for position, entry in enumerate(bucket):
                key = entry[:3]
                if best_key is None or key < best_key:
                    best_key = key
                    best_bucket, best = number, position
        if best_key is None:
            return None
        bucket = self._buckets[best_bucket]
        entry = bucket[best]
        if limit is not None and entry[0] > limit:
            return None
        if pop:
            # Jump the calendar to the popped event's day -- only on a
            # real pop: repositioning on a peek (or a beyond-limit probe)
            # would let later, earlier-timed pushes land behind the scan
            # position and be missed by the in-year pass.
            day = self._day_of(entry[0])
            self._remove(
                bucket, best, entry, day % self._nbuckets, (day + 1) * self._width
            )
        return entry

    def _remove(
        self,
        bucket: List[_HeapEntry],
        position: int,
        entry: _HeapEntry,
        index: int,
        top: float,
    ) -> None:
        bucket[position] = bucket[-1]
        bucket.pop()
        self._live -= 1
        self._size -= 1
        self._last_time = entry[0]
        self._current = index
        self._bucket_top = top
        if (
            self._nbuckets > _CALENDAR_MIN_BUCKETS
            and self._live * 2 < self._nbuckets
        ):
            self._resize(self._nbuckets // 2)

    def clear(self) -> None:
        """Drop every queued event."""
        self._live = 0
        self._cancelled_pending = 0
        self._size = 0
        self._last_time = 0.0
        self._init_ring(_CALENDAR_MIN_BUCKETS, 1.0)


#: Selectable event-queue structures: the tuple heap is the default; the
#: calendar queue wins at sustained high event density (see
#: ``docs/scaling.md`` for when to pick which).
QUEUE_KINDS = ("heap", "calendar")


def make_queue(kind: str = "heap"):
    """Build an event queue by name (``"heap"`` or ``"calendar"``)."""
    if kind == "heap":
        return EventQueue()
    if kind == "calendar":
        return CalendarQueue()
    raise ValueError(f"unknown event queue kind {kind!r}; choose from {QUEUE_KINDS}")
