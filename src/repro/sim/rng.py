"""Named, independently seeded random-number streams.

Simulations that share a single RNG between subsystems are fragile: adding
one extra draw in the churn model shifts every subsequent node-selection
draw and the whole run changes.  The registry hands each named subsystem its
own :class:`random.Random`, derived deterministically from the root seed and
the stream name, so streams are decoupled and runs are reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional


class RngRegistry:
    """A factory of deterministic, per-name random streams.

    Example:
        >>> reg = RngRegistry(7)
        >>> reg.stream("durations") is reg.stream("durations")
        True
        >>> a = RngRegistry(7).stream("x").random()
        >>> b = RngRegistry(7).stream("x").random()
        >>> a == b
        True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            # Unseeded registries are *meant* to differ run to run; OS
            # entropy only ever picks the root seed, every draw after it
            # is reproducible from ``self.seed``.
            seed = random.SystemRandom().getrandbits(64)  # reprolint: disable=RL001
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive(name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry whose root seed derives from ``name``.

        Useful for giving each replication of an experiment its own,
        decorrelated family of streams.
        """
        return RngRegistry(self._derive(f"spawn:{name}"))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
