"""Statistics collectors for simulation runs.

Section 4.1 of the paper lists the measures each run records: simulated
time to complete the computation, total jobs generated, average and maximum
jobs per task, tasks with a correct result, and average and maximum response
time per task.  These collectors provide the arithmetic for those measures
without importing numpy (the simulator stays dependency-light; analysis code
may convert to arrays afterwards).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically adjustable integer counter."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Tally:
    """Streaming mean/variance/min/max over observed samples (Welford)."""

    def __init__(self, name: str = "tally") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN until two samples exist)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 2:
            return math.nan
        return self.stdev / math.sqrt(self.count)

    @property
    def minimum(self) -> float:
        return self._min if self.count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self.count else math.nan

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        if self.count < 2:
            return (math.nan, math.nan)
        half = z * self.stderr
        return (self._mean - half, self._mean + half)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tally({self.name}: n={self.count}, mean={self.mean:.6g})"


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Used for, e.g., average node-pool utilisation: call :meth:`update`
    whenever the level changes, then read :meth:`average` at the end.
    """

    def __init__(self, name: str = "level", *, time: float = 0.0, level: float = 0.0) -> None:
        self.name = name
        self._last_time = time
        self._level = level
        self._area = 0.0
        self._start = time

    @property
    def level(self) -> float:
        return self._level

    def update(self, time: float, level: float) -> None:
        if time < self._last_time:
            raise ValueError(
                f"time went backwards in {self.name}: {time} < {self._last_time}"
            )
        self._area += self._level * (time - self._last_time)
        self._last_time = time
        self._level = level

    def average(self, until: Optional[float] = None) -> float:
        end = self._last_time if until is None else until
        if end < self._last_time:
            raise ValueError("cannot average before the last update")
        area = self._area + self._level * (end - self._last_time)
        span = end - self._start
        return area / span if span > 0 else math.nan


class Histogram:
    """Fixed-bin histogram over a closed interval, with overflow bins."""

    def __init__(
        self,
        name: str,
        low: float,
        high: float,
        bins: int,
    ) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        if bins < 1:
            raise ValueError("need at least one bin")
        self.name = name
        self.low = low
        self.high = high
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._width = (high - low) / bins

    def observe(self, value: float) -> None:
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            index = int((value - self.low) / self._width)
            # Floating point can push a boundary value to `bins`.
            self.counts[min(index, self.bins - 1)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def bin_edges(self) -> List[float]:
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}: n={self.total})"


@dataclass
class MetricSet:
    """A named bag of collectors, created lazily on first use."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    tallies: Dict[str, Tally] = field(default_factory=dict)
    levels: Dict[str, TimeWeightedStat] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def tally(self, name: str) -> Tally:
        if name not in self.tallies:
            self.tallies[name] = Tally(name)
        return self.tallies[name]

    def level(self, name: str, *, time: float = 0.0) -> TimeWeightedStat:
        if name not in self.levels:
            self.levels[name] = TimeWeightedStat(name, time=time)
        return self.levels[name]

    def snapshot(self) -> Dict[str, float]:
        """Flatten to a name->value dict for reports and tests."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[f"count.{name}"] = counter.value
        for name, tally in self.tallies.items():
            out[f"mean.{name}"] = tally.mean
            out[f"max.{name}"] = tally.maximum
        return out
