"""Generator-based cooperative processes on top of the simulator.

A process is a Python generator that yields *commands*; the scheduler runs
the generator until it yields, performs the command, and resumes the
generator when the command completes.  Two commands are supported:

* :class:`Timeout` -- sleep for a simulated duration,
* :class:`Waiting` -- park until another process calls
  :meth:`Waiting.trigger`, optionally carrying a value.

This is a deliberately small process layer (the DCA and volunteer models
mostly use plain event callbacks), but processes make long-lived behaviours
such as node churn and client work loops read top-to-bottom::

    def client_loop(sim, node):
        while node.alive:
            yield Timeout(node.poll_interval)
            job = server.request_work(node)
            if job is not None:
                yield Timeout(job.duration)
                server.report(node, job)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class Timeout:
    """Yield from a process to sleep for ``delay`` simulated time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Waiting:
    """Yield from a process to park until :meth:`trigger` is called.

    The value passed to :meth:`trigger` becomes the result of the ``yield``
    expression in the waiting process.
    """

    def __init__(self) -> None:
        self._process: Optional["Process"] = None
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    def trigger(self, value: Any = None) -> None:
        """Wake the waiting process (idempotent after the first call)."""
        if self._triggered:
            return
        self._triggered = True
        self._value = value
        if self._process is not None:
            process = self._process
            self._process = None
            process._resume_soon(value)

    def _attach(self, process: "Process") -> None:
        if self._triggered:
            process._resume_soon(self._value)
        else:
            self._process = process


ProcessBody = Generator[Any, Any, Any]


class Process:
    """Drives a generator as a cooperative simulated process.

    Attributes:
        alive: True until the generator returns, raises, or is interrupted.
        result: The generator's return value once finished.
    """

    def __init__(self, sim: Simulator, body: ProcessBody, *, name: str = "process") -> None:
        self.sim = sim
        self.name = name
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._body = body
        self._pending_event: Optional[Event] = None
        self._done_callbacks: list[Callable[["Process"], None]] = []
        # Start on the next event-loop turn at the current time so the
        # constructor returns before the body runs.
        self._resume_soon(None)

    def on_done(self, callback: Callable[["Process"], None]) -> None:
        """Register ``callback`` to run when the process finishes."""
        if not self.alive:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    def interrupt(self) -> None:
        """Stop the process; its pending sleep or wait is cancelled."""
        if not self.alive:
            return
        if self._pending_event is not None:
            self.sim.cancel(self._pending_event)
            self._pending_event = None
        self._finish(close=True)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _resume_soon(self, value: Any) -> None:
        self._pending_event = self.sim.schedule_after(
            0.0, lambda ev: self._resume(value)
        )

    def _resume(self, value: Any) -> None:
        self._pending_event = None
        if not self.alive:
            return
        try:
            command = self._body.send(value)
        except StopIteration as stop:
            self.result = stop.value
            self._finish()
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc
            self._finish()
            raise
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._pending_event = self.sim.schedule_after(
                command.delay, lambda ev: self._resume(None)
            )
        elif isinstance(command, Waiting):
            command._attach(self)
        else:
            self.interrupt()
            raise TypeError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )

    def _finish(self, *, close: bool = False) -> None:
        self.alive = False
        if close:
            self._body.close()
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"
