"""Typed RNG stream labels: the canonical names of the registry streams.

The determinism discipline says every subsystem draws from its own named
:class:`~repro.sim.rng.RngRegistry` stream.  The *names* of those
streams are part of the reproducibility contract -- a collision silently
couples two subsystems' draw sequences -- so the canonical ones live
here as module-level constants instead of being scattered as string
literals.

:class:`StreamLabel` is a ``str`` subclass, so a constant drops into
``registry.stream(...)`` unchanged at runtime; its value is what static
analysis sees.  Both the per-file literal rule (RL005) and the flow
analysis (``--flows``) resolve a module-level ``StreamLabel("...")``
binding to its literal value, so ``rng.stream(NODE_SELECTION)`` is as
auditable as ``rng.stream("node-selection")`` -- and the constant also
gives the label one greppable definition site and a type annotation for
stream-taking APIs.

Per-index families (``f"replicate:{i}"``) stay f-strings with a literal
prefix; only the fixed singleton streams get constants.
"""

from __future__ import annotations

__all__ = [
    "StreamLabel",
    "NODE_SELECTION",
    "DURATIONS",
    "FAILURES",
    "SPOT_CHECKS",
    "CHURN",
]


class StreamLabel(str):
    """A canonical RNG stream name (a plain ``str`` at runtime)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StreamLabel({str.__repr__(self)})"


#: Which node executes each dispatched job (DCA task server).
NODE_SELECTION = StreamLabel("node-selection")
#: Job execution durations (DCA task server).
DURATIONS = StreamLabel("durations")
#: Per-job failure draws (DCA task server).
FAILURES = StreamLabel("failures")
#: Spot-check scheduling draws (DCA task server).
SPOT_CHECKS = StreamLabel("spot-checks")
#: Node arrival/departure churn process.
CHURN = StreamLabel("churn")
