"""The simulator core: a clock, an event queue, and run-loop controls.

Example:
    >>> sim = Simulator(seed=42)
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda ev: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.names import SIM_COMPACTIONS, SIM_EVENTS, SIM_HEAP_SIZE
from repro.obs.recorder import Recorder, active
from repro.sim.events import DEFAULT_PRIORITY, Event, make_queue
from repro.sim.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class StopSimulation(Exception):
    """Raise inside an event callback to halt the run loop immediately."""


class Simulator:
    """A discrete-event simulator with deterministic, seeded randomness.

    The simulator advances a floating-point clock from event to event.
    Components schedule callbacks with :meth:`schedule` (absolute time) or
    :meth:`schedule_after` (relative delay) and may cancel pending events.

    Randomness is provided through :attr:`rng`, a registry of named,
    independently seeded streams, so that (for example) the node-selection
    stream and the job-duration stream of a DCA simulation never perturb
    each other when one subsystem draws more numbers.

    Attributes:
        now: Current simulated time.  Starts at 0.0.
        rng: The :class:`~repro.sim.rng.RngRegistry` for this run.
        recorder: The telemetry recorder, or ``None``.  Disabled
            recorders (e.g. :class:`~repro.obs.recorder.NullRecorder`)
            are normalized to ``None`` at construction, so the run loop
            itself stays untouched when telemetry is off; the engine
            records run-level aggregates (events processed, heap size,
            compactions) after each :meth:`run`.
        queue_kind: Which event structure backs the queue -- ``"heap"``
            (default) or ``"calendar"``; see
            :func:`repro.sim.events.make_queue`.  Both produce the exact
            same pop order, so results never depend on the choice.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        *,
        queue: str = "heap",
    ) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.queue_kind = queue
        self._queue = make_queue(queue)
        self._running = False
        self._events_processed = 0
        self.recorder = active(recorder)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` precedes the current clock.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        return self._queue.push(time, callback, priority=priority, payload=payload)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` after a non-negative relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, priority=priority, payload=payload)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already fired or cancelled)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Number of event callbacks executed so far."""
        return self._events_processed

    def peek(self) -> Optional[float]:
        """Time of the next event, or ``None`` if the queue is empty."""
        return self._queue.peek_time()

    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remained."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("event queue produced an event in the past")
        self.now = event.time
        self._events_processed += 1
        event.callback(event)
        return True

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or a limit hits.

        Args:
            until: If given, stop once the next event would fire strictly
                after ``until`` and set the clock to ``until``.
            max_events: If given, stop after that many additional events.
                Useful as a runaway guard in tests.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        # Hot loop: one queue call per event (pop_due folds the peek and
        # the pop into a single cancelled-entry sweep) and local bindings
        # for everything touched per iteration.
        queue = self._queue
        pop_due = queue.pop_due
        recorder = self.recorder
        if recorder is not None:
            events_before = self._events_processed
            compactions_before = queue.compactions
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    # The horizon check historically preceded the budget
                    # check: an out-of-horizon next event still advances
                    # the clock to ``until`` before stopping.
                    next_time = queue.peek_time()
                    if until is not None and next_time is not None and next_time > until:
                        self.now = until
                    break
                event = pop_due(until)
                if event is None:
                    if until is not None and queue:
                        # Next live event lies beyond the horizon.
                        self.now = until
                    break
                self.now = event.time
                self._events_processed += 1
                try:
                    event.callback(event)
                except StopSimulation:
                    break
                processed += 1
            if until is not None and self.now < until and queue.peek_time() is None:
                # Queue drained before the horizon: advance to the horizon so
                # time-weighted metrics integrate over the full window.
                self.now = until
        finally:
            self._running = False
        if recorder is not None:
            # Run-level aggregates only: the hot loop above is untouched,
            # so telemetry-off runs execute exactly the historical path.
            recorder.count(SIM_EVENTS, self._events_processed - events_before)
            recorder.count(SIM_COMPACTIONS, queue.compactions - compactions_before)
            recorder.gauge(SIM_HEAP_SIZE, queue.heap_size)

    def reset(self, seed: Optional[int] = None) -> None:
        """Clear the queue and clock for reuse, reseeding the RNG registry.

        The queue kind chosen at construction is preserved.
        """
        self._queue.clear()
        self.now = 0.0
        self._events_processed = 0
        self.rng = RngRegistry(seed)
