"""Discrete-event simulation engine (the XDEVS substitute).

The paper evaluates the redundancy techniques on XDEVS, a discrete-event
simulation framework specialized for software systems.  XDEVS itself is not
publicly available, so this package provides a from-scratch discrete-event
engine with the facilities the evaluation needs:

* :class:`~repro.sim.engine.Simulator` -- an event-driven clock with
  schedule/cancel primitives and deterministic tie-breaking,
* :class:`~repro.sim.processes.Process` -- generator-based cooperative
  processes layered on the event queue,
* :class:`~repro.sim.rng.RngRegistry` -- named, independently seeded random
  streams so that simulated subsystems (node selection, job durations,
  failures, churn) draw from decoupled sequences and experiments are
  reproducible,
* :mod:`~repro.sim.metrics` -- counters, tallies, and time-weighted
  statistics used to record the measures listed in Section 4.1 of the paper.

The engine is intentionally generic: :mod:`repro.dca` builds the paper's
system model (Figure 1) on top of it and :mod:`repro.volunteer` builds the
BOINC-like pull-model substrate on top of it.
"""

from repro.sim.engine import Simulator, SimulationError, StopSimulation
from repro.sim.events import Event, EventQueue
from repro.sim.processes import Process, Timeout, Waiting
from repro.sim.rng import RngRegistry
from repro.sim.streams import (
    CHURN,
    DURATIONS,
    FAILURES,
    NODE_SELECTION,
    SPOT_CHECKS,
    StreamLabel,
)
from repro.sim.metrics import (
    Counter,
    Histogram,
    MetricSet,
    Tally,
    TimeWeightedStat,
)

__all__ = [
    "CHURN",
    "Counter",
    "DURATIONS",
    "Event",
    "EventQueue",
    "FAILURES",
    "Histogram",
    "MetricSet",
    "NODE_SELECTION",
    "Process",
    "RngRegistry",
    "SPOT_CHECKS",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "StreamLabel",
    "Tally",
    "Timeout",
    "TimeWeightedStat",
    "Waiting",
]
