"""Exporters: JSONL, Chrome trace-event JSON, Prometheus text exposition.

All three render a :class:`~repro.obs.capture.Capture` deterministically
(stable ordering, canonical JSON), so exports of byte-identical captures
are byte-identical too.

* **JSONL** -- one self-describing JSON object per line (``meta``,
  ``metric``, ``span``, ``event``) for log shippers and ad-hoc ``jq``.
* **Chrome trace events** -- the ``{"traceEvents": [...]}`` JSON object
  format; load it in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Spans become complete (``"ph": "X"``) events,
  instants become ``"ph": "i"``; one simulated time unit is rendered as
  one second (timestamps are microseconds), runs map to ``pid`` and
  replicates to ``tid``.
* **Prometheus text exposition** -- counters/gauges/histograms with
  ``# HELP``/``# TYPE`` headers, cumulative ``_bucket{le=...}`` series,
  and metric names sanitized to the Prometheus grammar.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.capture import Capture

#: Microseconds per simulated time unit in Chrome traces (1 unit = 1s).
_CHROME_US_PER_UNIT = 1_000_000.0

_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def to_jsonl(capture: Capture) -> str:
    """Render the capture as one JSON object per line."""
    lines: List[str] = []

    def emit(record: Dict[str, Any]) -> None:
        lines.append(json.dumps(record, sort_keys=True, default=repr))

    emit({"type": "meta", **capture.meta})
    for name in sorted(capture.metrics):
        family = capture.metrics[name]
        for entry in family.get("series", []):
            record = {"type": "metric", "name": name, "kind": family["kind"], **entry}
            if family["kind"] == "histogram":
                record["boundaries"] = family["boundaries"]
            emit(record)
    for span in capture.spans:
        emit({"type": "span", **span})
    for event in capture.events:
        emit({"type": "event", **event})
    return "\n".join(lines) + "\n"


def _chrome_args(attrs: Mapping[str, Any]) -> Dict[str, Any]:
    return {str(key): value for key, value in attrs.items()}


def to_chrome_trace(capture: Capture) -> dict:
    """The capture as a Chrome trace-event JSON *object* (not yet a string).

    Shape contract (pinned by tests): the result has a ``traceEvents``
    list whose entries all carry ``name``/``ph``/``ts``/``pid``/``tid``,
    with ``dur`` on every complete (``"X"``) event.
    """
    trace_events: List[dict] = []
    run_labels = {
        index: entry.get("label", f"run {index}")
        for index, entry in enumerate(capture.runs)
    }
    named: set = set()
    for span in capture.spans:
        pid = int(span.get("run", 0))
        tid = int(span.get("replicate", 0))
        if pid not in named:
            named.add(pid)
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": run_labels.get(pid, f"run {pid}")},
                }
            )
        start = float(span["start"])
        end = float(span["end"]) if span.get("end") is not None else start
        trace_events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": start * _CHROME_US_PER_UNIT,
                "dur": (end - start) * _CHROME_US_PER_UNIT,
                "pid": pid,
                "tid": tid,
                "args": _chrome_args(span.get("attrs", {})),
            }
        )
    for event in capture.events:
        trace_events.append(
            {
                "name": event["name"],
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": float(event["time"]) * _CHROME_US_PER_UNIT,
                "pid": int(event.get("run", 0)),
                "tid": int(event.get("replicate", 0)),
                "args": _chrome_args(event.get("attrs", {})),
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"label": capture.meta.get("label", "")},
    }


def to_chrome_trace_json(capture: Capture) -> str:
    """:func:`to_chrome_trace`, serialized."""
    return json.dumps(to_chrome_trace(capture), sort_keys=True, default=repr) + "\n"


def _prom_name(name: str) -> str:
    sanitized = _PROM_NAME_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_labels(labels: Mapping[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    pairs = [
        (_PROM_LABEL_BAD.sub("_", key), value) for key, value in sorted(labels.items())
    ]
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(key, str(value).replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in pairs
    )
    return "{" + rendered + "}"


def _prom_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(capture: Capture) -> str:
    """The capture's merged metrics in Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(capture.metrics):
        family = capture.metrics[name]
        kind = family["kind"]
        prom = _prom_name(name)
        if family.get("help"):
            lines.append(f"# HELP {prom} {family['help']}")
        lines.append(f"# TYPE {prom} {kind}")
        for entry in family.get("series", []):
            labels = entry["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{prom}{_prom_labels(labels)} {_prom_value(entry['value'])}")
                continue
            cumulative = 0
            for boundary, count in zip(family["boundaries"], entry["counts"]):
                cumulative += count
                lines.append(
                    f"{prom}_bucket{_prom_labels(labels, {'le': _prom_value(boundary)})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{prom}_bucket{_prom_labels(labels, {'le': '+Inf'})} {entry['count']}"
            )
            lines.append(f"{prom}_sum{_prom_labels(labels)} {_prom_value(entry['sum'])}")
            lines.append(f"{prom}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"


#: Exporter registry for the CLI: format name -> renderer.
EXPORTERS = {
    "jsonl": to_jsonl,
    "chrome": to_chrome_trace_json,
    "prometheus": to_prometheus,
}


__all__ = [
    "EXPORTERS",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "to_jsonl",
    "to_prometheus",
]
