"""Unified telemetry: deterministic metrics, spans, and trace exporters.

``repro.obs`` is the observability substrate the rest of the repository
records into:

* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-boundary
  histograms with labeled series and a mergeable canonical snapshot;
* :mod:`repro.obs.recorder` -- the :class:`Recorder` interface clocked
  on *simulated* time, with the zero-cost :class:`NullRecorder` default
  and the buffering :class:`TelemetryRecorder`;
* :mod:`repro.obs.export` -- JSONL, Chrome trace-event JSON (Perfetto),
  and Prometheus text exposition;
* :mod:`repro.obs.capture` / :mod:`repro.obs.context` -- saved run
  captures, diffing, and the parent-side ``--telemetry`` sink;
* :mod:`repro.obs.host` -- the only module allowed to read the wall
  clock (capture metadata), enforced by reprolint RL008;
* :mod:`repro.obs.cli` -- the ``repro-obs`` summary/export/diff command.

Design contract: telemetry **observes, never perturbs** -- same-seed
runs are byte-identical with recording on or off, and parallel-merged
telemetry is byte-identical to serial (``docs/observability.md``).
"""

from repro.obs.capture import Capture, diff_captures, format_diff
from repro.obs.context import TelemetrySink, clear_sink, current_sink, install_sink
from repro.obs.export import (
    to_chrome_trace,
    to_chrome_trace_json,
    to_jsonl,
    to_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BOUNDARIES,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.recorder import (
    EventRecord,
    NullRecorder,
    Recorder,
    SpanRecord,
    TeeRecorder,
    TelemetryRecorder,
    active,
)

__all__ = [
    "Capture",
    "CounterFamily",
    "DEFAULT_BOUNDARIES",
    "EventRecord",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "SpanRecord",
    "TeeRecorder",
    "TelemetryRecorder",
    "TelemetrySink",
    "active",
    "clear_sink",
    "current_sink",
    "diff_captures",
    "format_diff",
    "install_sink",
    "merge_snapshots",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "to_jsonl",
    "to_prometheus",
]
