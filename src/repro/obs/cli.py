"""The ``repro-obs`` command: inspect, export, and diff telemetry captures.

Usage::

    repro-obs summary capture.json
    repro-obs export capture.json --format chrome --output trace.json
    repro-obs export capture.json --format prometheus
    repro-obs diff before.json after.json [--only-changed]

Captures come from ``repro-experiments --telemetry <path>`` and
``repro-bench --telemetry <path>`` (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.capture import Capture, diff_captures, format_diff
from repro.obs.export import EXPORTERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect, export, and diff repro telemetry captures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary", help="print a capture's metric/span overview")
    summary.add_argument("capture", help="capture file (from --telemetry)")

    export = sub.add_parser("export", help="render a capture in an exchange format")
    export.add_argument("capture", help="capture file (from --telemetry)")
    export.add_argument(
        "--format",
        choices=sorted(EXPORTERS),
        default="jsonl",
        help="output format (default: jsonl); 'chrome' loads in Perfetto",
    )
    export.add_argument(
        "--output",
        default=None,
        help="write here instead of stdout",
    )

    diff = sub.add_parser("diff", help="metric deltas between two captures")
    diff.add_argument("capture_a", help="baseline capture")
    diff.add_argument("capture_b", help="comparison capture")
    diff.add_argument(
        "--only-changed",
        action="store_true",
        help="hide series whose delta is zero",
    )
    return parser


def _family_total(family: dict) -> str:
    """One summary cell per family: total/last/mean over its series."""
    series = family.get("series", [])
    if not series:
        return "-"
    if family["kind"] == "counter":
        return str(sum(entry["value"] for entry in series))
    if family["kind"] == "gauge":
        return ", ".join(f"{entry['value']:.6g}" for entry in series[:3])
    count = sum(entry["count"] for entry in series)
    total = sum(entry["sum"] for entry in series)
    mean = total / count if count else 0.0
    return f"n={count} mean={mean:.4g}"


def _summary(capture: Capture) -> str:
    meta = capture.meta
    lines = [f"capture: {meta.get('label', '(unlabeled)')}"]
    for key in sorted(meta):
        if key != "label":
            lines.append(f"  {key}: {meta[key]}")
    lines.append(
        f"runs: {len(capture.runs)}  spans: {len(capture.spans)}  "
        f"events: {len(capture.events)}"
    )
    if capture.runs:
        for index, run in enumerate(capture.runs[:10]):
            lines.append(f"  run[{index}]: {run.get('label', '?')}")
        if len(capture.runs) > 10:
            lines.append(f"  ... and {len(capture.runs) - 10} more runs")
    if capture.metrics:
        width = max(len(name) for name in capture.metrics)
        lines.append("metrics:")
        for name in sorted(capture.metrics):
            family = capture.metrics[name]
            lines.append(
                f"  {name.ljust(width)}  {family['kind']:9s}  {_family_total(family)}"
            )
    else:
        lines.append("metrics: (none)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary":
            print(_summary(Capture.load(args.capture)))
            return 0
        if args.command == "export":
            rendered = EXPORTERS[args.format](Capture.load(args.capture))
            if args.output:
                with open(args.output, "w") as handle:
                    handle.write(rendered)
                print(f"{args.format} export -> {args.output}", file=sys.stderr)
            else:
                sys.stdout.write(rendered)
            return 0
        # diff
        rows = diff_captures(Capture.load(args.capture_a), Capture.load(args.capture_b))
        print(format_diff(rows, only_changed=args.only_changed))
        return 0
    except (OSError, ValueError) as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
