"""Host-side wall-clock helpers -- the only obs module allowed to read it.

Everything else in ``repro.obs`` is clocked on *simulated* time so that
telemetry can never perturb or depend on the host.  Capture files do
want to know when and where they were taken, though, so that metadata
is stamped here and nowhere else.  reprolint rule RL008 enforces the
split: wall-clock reads in ``repro/obs/`` outside ``host*.py`` modules
are findings.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict


def host_timestamp() -> float:
    """Seconds since the epoch (wall clock), for capture metadata only."""
    return time.time()


def capture_meta(label: str, **extra: Any) -> Dict[str, Any]:
    """Standard capture metadata: label, wall-clock stamp, pid, extras."""
    meta: Dict[str, Any] = {
        "label": label,
        "captured_at_unix": host_timestamp(),
        "host_pid": os.getpid(),
    }
    for key in sorted(extra):
        meta[key] = extra[key]
    return meta


__all__ = ["capture_meta", "host_timestamp"]
