"""The parent-side telemetry sink: collect merged run payloads.

``--telemetry <path>`` on the experiment/bench CLIs installs a
:class:`TelemetrySink` here; :func:`repro.parallel.dca.run_dca_replicates`
consults :func:`current_sink` and, when one is installed, enables
per-replicate telemetry on its specs and hands the position-ordered
merged payload back via :meth:`TelemetrySink.add_run`.

The sink lives in the *parent* process only -- pool workers never see
it (specs carry a plain ``telemetry`` flag instead), so installing a
sink cannot introduce cross-process shared state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.capture import Capture
from repro.obs.metrics import merge_snapshots

#: How much of each run's span/event stream a sink retains.
KEEP_CHOICES = ("first", "all", "none")

#: Default per-run cap on retained spans/events.  A smoke-scale figure
#: sweep already merges hundreds of thousands of spans; captures are for
#: inspection, not archival, so the sink keeps a deterministic prefix
#: and counts the rest as truncated.
DEFAULT_MAX_RECORDS = 20_000


class TelemetrySink:
    """Accumulates merged telemetry payloads, one per fan-out run.

    Args:
        keep_records: Which runs' span/event streams to retain --
            ``"first"`` (default: metrics from every run, the trace of
            the first, keeping captures small), ``"all"``, or ``"none"``.
        max_records: Per-run cap on retained spans and (separately)
            events; the kept prefix is position-ordered and therefore
            deterministic.  ``None`` disables the cap.  Metric snapshots
            are never truncated.
    """

    def __init__(
        self,
        *,
        keep_records: str = "first",
        max_records: Optional[int] = DEFAULT_MAX_RECORDS,
    ) -> None:
        if keep_records not in KEEP_CHOICES:
            raise ValueError(
                f"keep_records must be one of {KEEP_CHOICES}, got {keep_records!r}"
            )
        if max_records is not None and max_records < 0:
            raise ValueError(f"max_records must be non-negative, got {max_records}")
        self.keep_records = keep_records
        self.max_records = max_records
        self._runs: List[Dict[str, Any]] = []
        self._kept_any = False

    @property
    def runs(self) -> List[Dict[str, Any]]:
        """Run entries added so far (label, metrics, optional records)."""
        return list(self._runs)

    def add_run(self, label: str, payload: Optional[Dict[str, Any]]) -> None:
        """Record one fan-out's merged telemetry (``None`` is ignored)."""
        if payload is None:
            return
        entry: Dict[str, Any] = {"label": label, "metrics": payload["metrics"]}
        keep = self.keep_records == "all" or (
            self.keep_records == "first" and not self._kept_any
        )
        if keep:
            spans = list(payload.get("spans", []))
            events = list(payload.get("events", []))
            cap = self.max_records
            if cap is not None:
                entry["truncated_spans"] = max(0, len(spans) - cap)
                entry["truncated_events"] = max(0, len(events) - cap)
                spans = spans[:cap]
                events = events[:cap]
            entry["spans"] = spans
            entry["events"] = events
            self._kept_any = True
        self._runs.append(entry)

    def capture(self, meta: Optional[Dict[str, Any]] = None) -> Capture:
        """Fold every run into one :class:`~repro.obs.capture.Capture`."""
        metrics = (
            merge_snapshots([entry["metrics"] for entry in self._runs])
            if self._runs
            else {}
        )
        spans = [
            dict(span, run=index)
            for index, entry in enumerate(self._runs)
            for span in entry.get("spans", ())
        ]
        events = [
            dict(event, run=index)
            for index, entry in enumerate(self._runs)
            for event in entry.get("events", ())
        ]
        return Capture(
            meta=dict(meta) if meta else {},
            metrics=metrics,
            spans=spans,
            events=events,
            runs=[
                {"label": entry["label"], "metrics": entry["metrics"]}
                for entry in self._runs
            ],
        )


_SINK: Optional[TelemetrySink] = None


def install_sink(sink: TelemetrySink) -> TelemetrySink:
    """Make ``sink`` the process-wide sink; returns it for chaining."""
    global _SINK
    _SINK = sink
    return sink


def current_sink() -> Optional[TelemetrySink]:
    """The installed sink, or ``None`` when telemetry capture is off."""
    return _SINK


def clear_sink() -> None:
    """Uninstall the current sink (the ``finally`` half of install)."""
    global _SINK
    _SINK = None


__all__ = [
    "TelemetrySink",
    "clear_sink",
    "current_sink",
    "install_sink",
]
