"""Canonical telemetry names: one vocabulary for spans, events, metrics.

Every instrumented layer refers to these constants instead of inline
strings, so the complete telemetry schema is auditable in one place and
the legacy :mod:`repro.dca.tracing` event kinds map onto it 1:1
(``dca.task`` begin/end = submit/accept, ``dca.job`` begin/end =
dispatch/complete-or-timeout, ``dca.decide`` = decide).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Span names (simulated-time intervals).
# ---------------------------------------------------------------------------

#: One task's life from submission to accepted verdict (key: task id).
DCA_TASK_SPAN = "dca.task"
#: One job's life from dispatch to completion/timeout (key: node id --
#: unique among open spans because a node runs at most one job at a time).
DCA_JOB_SPAN = "dca.job"

# ---------------------------------------------------------------------------
# Instant event names.
# ---------------------------------------------------------------------------

#: The strategy chose to extend a task with another wave.
DCA_DECIDE_EVENT = "dca.decide"

# ---------------------------------------------------------------------------
# Metric names.  Counters unless noted.
# ---------------------------------------------------------------------------

#: Tasks submitted to the task server.
DCA_SUBMITS = "dca.submit"
#: Jobs handed to a node (spot-checks included).
DCA_DISPATCHES = "dca.dispatch"
#: Counted job completions (abandoned jobs and dead nodes excluded).
DCA_COMPLETES = "dca.complete"
#: Jobs that hit their deadline.
DCA_TIMEOUTS = "dca.timeout"
#: Tasks accepted with a verdict.
DCA_ACCEPTS = "dca.accept"
#: Spot-check jobs issued.
DCA_SPOT_CHECKS = "dca.spot_check"
#: Strategy decisions, labeled by strategy and outcome (accept/extend).
DCA_DECISIONS = "dca.decisions"
#: Histogram: jobs per dispatched wave (labeled first wave vs follow-up).
DCA_WAVE_SIZE = "dca.wave_size"
#: Histogram: accepted-task response times (first dispatch to verdict).
DCA_RESPONSE_TIME = "dca.response_time"
#: Histogram: counted jobs consumed per accepted task.
DCA_JOBS_PER_TASK = "dca.jobs_per_task"
#: Gauge: simulated makespan of a finished run.
DCA_MAKESPAN = "dca.makespan"

#: Events popped by the simulator run loop.
SIM_EVENTS = "sim.events_processed"
#: Gauge: physical heap entries left when the run loop returned.
SIM_HEAP_SIZE = "sim.heap_size"
#: Event-queue compactions (cancelled-entry sweeps) during the run.
SIM_COMPACTIONS = "sim.compactions"

__all__ = [
    "DCA_ACCEPTS",
    "DCA_COMPLETES",
    "DCA_DECIDE_EVENT",
    "DCA_DECISIONS",
    "DCA_DISPATCHES",
    "DCA_JOBS_PER_TASK",
    "DCA_JOB_SPAN",
    "DCA_MAKESPAN",
    "DCA_RESPONSE_TIME",
    "DCA_SPOT_CHECKS",
    "DCA_SUBMITS",
    "DCA_TASK_SPAN",
    "DCA_TIMEOUTS",
    "DCA_WAVE_SIZE",
    "SIM_COMPACTIONS",
    "SIM_EVENTS",
    "SIM_HEAP_SIZE",
]
