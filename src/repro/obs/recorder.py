"""Recorders: where instrumented code sends spans, events, and metrics.

The contract with the hot paths (see ``docs/observability.md``):

* Instrumented components normalize at construction time -- they keep
  ``None`` instead of a disabled recorder and guard every site with
  ``if recorder is not None``, so telemetry-off runs pay a single
  predictable branch per site.  :class:`NullRecorder` therefore costs
  nothing beyond that branch; the ``obs_overhead`` bench suite gates it
  at <=2% against the uninstrumented path.
* All timestamps passed in are **simulated** time.  Recorders never read
  the wall clock (reprolint RL008 enforces this for the whole package;
  only ``repro/obs/host*.py`` may, for capture metadata).
* Spans are keyed ``(name, key)``; begin/end pairs match on that key, so
  overlapping spans of the same name are fine as long as keys are unique
  among *open* spans (e.g. a node id: a node runs one job at a time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry

Number = Union[int, float]


class Recorder:
    """The recorder interface; base methods are explicit no-ops.

    Attributes:
        enabled: False for no-op recorders.  Instrumented components
            check it once at attach time and drop disabled recorders, so
            per-event calls never happen when telemetry is off.
    """

    enabled = False

    def event(self, name: str, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        """Record an instant event at simulated ``time``."""

    def span_begin(self, name: str, key: Any, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        """Open the span ``(name, key)`` at simulated ``time``."""

    def span_end(self, name: str, key: Any, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        """Close the span ``(name, key)``; ``attrs`` merge over begin's."""

    def count(self, name: str, value: Number = 1, labels: Optional[Mapping[str, Any]] = None) -> None:
        """Increment the counter ``name``."""

    def gauge(self, name: str, value: Number, labels: Optional[Mapping[str, Any]] = None) -> None:
        """Set the gauge ``name``."""

    def observe(self, name: str, value: Number, labels: Optional[Mapping[str, Any]] = None) -> None:
        """Record ``value`` into the histogram ``name``."""


class NullRecorder(Recorder):
    """The zero-cost default: disabled, every method inherited as a no-op."""


@dataclass
class SpanRecord:
    """One closed span: a named simulated-time interval with attributes."""

    name: str
    key: Any
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: True when the end arrived without a matching begin (zero-length).
    unmatched: bool = False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "key": self.key,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "unmatched": self.unmatched,
        }


@dataclass
class EventRecord:
    """One instant event."""

    name: str
    time: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "time": self.time, "attrs": dict(self.attrs)}


class TelemetryRecorder(Recorder):
    """The buffering recorder: spans and events in memory, metrics in a
    :class:`~repro.obs.metrics.MetricsRegistry`.

    Args:
        max_spans / max_events: Optional record caps.  Past a cap, new
            records are *dropped and counted* (``dropped_spans`` /
            ``dropped_events``) rather than evicting old ones, so the
            retained prefix is deterministic; metric counts stay complete
            regardless.
    """

    enabled = True

    def __init__(
        self,
        *,
        max_spans: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_spans is not None and max_spans < 0:
            raise ValueError(f"max_spans must be non-negative, got {max_spans}")
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be non-negative, got {max_events}")
        self._registry = MetricsRegistry()
        self._spans: List[SpanRecord] = []
        self._events: List[EventRecord] = []
        self._open: Dict[Tuple[str, Any], Tuple[float, Dict[str, Any]]] = {}
        self._max_spans = max_spans
        self._max_events = max_events
        self.dropped_spans = 0
        self.dropped_events = 0

    # -- recording ------------------------------------------------------

    def event(self, name: str, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        if self._max_events is not None and len(self._events) >= self._max_events:
            self.dropped_events += 1
            return
        self._events.append(EventRecord(name, time, dict(attrs) if attrs else {}))

    def span_begin(self, name: str, key: Any, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        self._open[(name, key)] = (time, dict(attrs) if attrs else {})

    def span_end(self, name: str, key: Any, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        opened = self._open.pop((name, key), None)
        if self._max_spans is not None and len(self._spans) >= self._max_spans:
            self.dropped_spans += 1
            return
        if opened is None:
            start, merged = time, {}
        else:
            start, merged = opened
        if attrs:
            merged.update(attrs)
        self._spans.append(
            SpanRecord(name, key, start, time, merged, unmatched=opened is None)
        )

    def count(self, name: str, value: Number = 1, labels: Optional[Mapping[str, Any]] = None) -> None:
        self._registry.counter(name).inc(value, labels)

    def gauge(self, name: str, value: Number, labels: Optional[Mapping[str, Any]] = None) -> None:
        self._registry.gauge(name).set(value, labels)

    def observe(self, name: str, value: Number, labels: Optional[Mapping[str, Any]] = None) -> None:
        self._registry.histogram(name).observe(value, labels)

    # -- reading back ---------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The backing metrics registry (for tests and direct queries)."""
        return self._registry

    @property
    def spans(self) -> List[SpanRecord]:
        """Closed spans, in close order."""
        return list(self._spans)

    @property
    def events(self) -> List[EventRecord]:
        """Instant events, in record order."""
        return list(self._events)

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended."""
        return len(self._open)

    def as_payload(self) -> dict:
        """The picklable/JSON-ready form shipped in replicate envelopes."""
        return {
            "metrics": self._registry.snapshot(),
            "spans": [span.as_dict() for span in self._spans],
            "events": [event.as_dict() for event in self._events],
            "open_spans": self.open_spans,
            "dropped_spans": self.dropped_spans,
            "dropped_events": self.dropped_events,
        }


class TeeRecorder(Recorder):
    """Forward every call to several recorders (disabled ones dropped)."""

    def __init__(self, *recorders: Optional[Recorder]) -> None:
        self.recorders: Tuple[Recorder, ...] = tuple(
            recorder
            for recorder in recorders
            if recorder is not None and recorder.enabled
        )
        self.enabled = bool(self.recorders)

    def event(self, name: str, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        for recorder in self.recorders:
            recorder.event(name, time, attrs)

    def span_begin(self, name: str, key: Any, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        for recorder in self.recorders:
            recorder.span_begin(name, key, time, attrs)

    def span_end(self, name: str, key: Any, time: float, attrs: Optional[Mapping[str, Any]] = None) -> None:
        for recorder in self.recorders:
            recorder.span_end(name, key, time, attrs)

    def count(self, name: str, value: Number = 1, labels: Optional[Mapping[str, Any]] = None) -> None:
        for recorder in self.recorders:
            recorder.count(name, value, labels)

    def gauge(self, name: str, value: Number, labels: Optional[Mapping[str, Any]] = None) -> None:
        for recorder in self.recorders:
            recorder.gauge(name, value, labels)

    def observe(self, name: str, value: Number, labels: Optional[Mapping[str, Any]] = None) -> None:
        for recorder in self.recorders:
            recorder.observe(name, value, labels)


def active(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """Normalize: a disabled (or missing) recorder becomes ``None``.

    Instrumented constructors call this once, so their hot-path guards
    are a plain ``is not None`` check.
    """
    if recorder is None or not recorder.enabled:
        return None
    return recorder


__all__ = [
    "EventRecord",
    "NullRecorder",
    "Recorder",
    "SpanRecord",
    "TeeRecorder",
    "TelemetryRecorder",
    "active",
]
