"""Run captures: a saved telemetry bundle, plus metric diffing.

A :class:`Capture` is what ``--telemetry <path>`` writes and what the
``repro-obs`` CLI reads back: merged metrics, the retained span/event
stream, per-run metric sections, and host-side metadata.  The telemetry
*content* is deterministic; only ``meta`` (stamped by
:mod:`repro.obs.host`) may carry wall-clock context.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Format marker written into every capture file.
CAPTURE_KIND = "repro-obs-capture"
#: Bumped on incompatible layout changes.
CAPTURE_SCHEMA_VERSION = 1


@dataclass
class Capture:
    """One saved telemetry bundle.

    Attributes:
        meta: Host-side metadata (label, timestamp, pid, extras).
        metrics: Merged registry snapshot over every run
            (:func:`repro.obs.metrics.merge_snapshots` form).
        spans: Retained span dicts; tagged with ``run`` (capture section)
            and ``replicate`` (position in the fan-out) where known.
        events: Retained instant-event dicts, tagged like spans.
        runs: Per-run sections ``{"label", "metrics"}`` for drill-down.
    """

    meta: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    runs: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_recorder(cls, recorder, meta: Optional[Dict[str, Any]] = None, label: str = "run") -> "Capture":
        """Wrap one :class:`~repro.obs.recorder.TelemetryRecorder`'s data."""
        payload = recorder.as_payload()
        return cls(
            meta=dict(meta) if meta else {},
            metrics=payload["metrics"],
            spans=payload["spans"],
            events=payload["events"],
            runs=[{"label": label, "metrics": payload["metrics"]}],
        )

    def to_dict(self) -> dict:
        """JSON-ready document (carries kind and schema version)."""
        return {
            "kind": CAPTURE_KIND,
            "schema_version": CAPTURE_SCHEMA_VERSION,
            "meta": self.meta,
            "metrics": self.metrics,
            "spans": self.spans,
            "events": self.events,
            "runs": self.runs,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "Capture":
        """Parse a capture document; refuses foreign or future formats."""
        if document.get("kind") != CAPTURE_KIND:
            raise ValueError(
                f"not a telemetry capture (kind={document.get('kind')!r})"
            )
        version = document.get("schema_version")
        if version != CAPTURE_SCHEMA_VERSION:
            raise ValueError(
                f"capture schema v{version} not supported "
                f"(this build reads v{CAPTURE_SCHEMA_VERSION})"
            )
        return cls(
            meta=document.get("meta", {}),
            metrics=document.get("metrics", {}),
            spans=document.get("spans", []),
            events=document.get("events", []),
            runs=document.get("runs", []),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the capture as pretty, key-sorted JSON; returns the path."""
        target = Path(path)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True, default=repr) + "\n"
        )
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Capture":
        """Read a capture previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _series_scalars(family: dict) -> Dict[str, Union[int, float]]:
    """Flatten one family's series to ``label-string -> scalar`` rows.

    Counters/gauges use their value; histograms use their observation
    count (the diffable scalar; sums are still in the capture).
    """
    rows: Dict[str, Union[int, float]] = {}
    for entry in family.get("series", []):
        label = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
        rows[label] = entry["count"] if family["kind"] == "histogram" else entry["value"]
    return rows


def diff_captures(a: Capture, b: Capture) -> List[dict]:
    """Metric deltas between two captures, sorted by metric then labels.

    Each row: ``{"metric", "kind", "labels", "a", "b", "delta"}`` where
    a missing series counts as 0 (kind mismatches raise).
    """
    rows: List[dict] = []
    names = sorted(set(a.metrics) | set(b.metrics))
    for name in names:
        family_a = a.metrics.get(name)
        family_b = b.metrics.get(name)
        kind_a = family_a["kind"] if family_a else None
        kind_b = family_b["kind"] if family_b else None
        if kind_a and kind_b and kind_a != kind_b:
            raise ValueError(f"metric {name!r} is a {kind_a} in A but a {kind_b} in B")
        kind = kind_a or kind_b
        rows_a = _series_scalars(family_a) if family_a else {}
        rows_b = _series_scalars(family_b) if family_b else {}
        for label in sorted(set(rows_a) | set(rows_b)):
            value_a = rows_a.get(label, 0)
            value_b = rows_b.get(label, 0)
            rows.append(
                {
                    "metric": name,
                    "kind": kind,
                    "labels": label,
                    "a": value_a,
                    "b": value_b,
                    "delta": value_b - value_a,
                }
            )
    return rows


def format_diff(rows: List[dict], only_changed: bool = False) -> str:
    """Fixed-width text rendering of :func:`diff_captures` rows."""
    if only_changed:
        rows = [row for row in rows if row["delta"] != 0]
    if not rows:
        return "no metric deltas"
    header = ("metric", "labels", "a", "b", "delta")
    cells = [
        (
            row["metric"],
            row["labels"] or "-",
            _fmt(row["a"]),
            _fmt(row["b"]),
            _fmt(row["delta"], signed=True),
        )
        for row in rows
    ]
    widths = [
        max(len(header[i]), max(len(row[i]) for row in cells)) for i in range(len(header))
    ]
    lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def _fmt(value: Union[int, float], signed: bool = False) -> str:
    sign = "+" if signed else ""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:{sign}.4g}"
    return f"{int(value):{sign}d}"


__all__ = [
    "CAPTURE_KIND",
    "CAPTURE_SCHEMA_VERSION",
    "Capture",
    "diff_captures",
    "format_diff",
]
