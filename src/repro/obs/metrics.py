"""The metrics registry: counters, gauges, fixed-boundary histograms.

Deterministic by construction, so telemetry can ride inside replicate
envelopes without breaking the parallel engine's byte-identity contract:

* families and labeled series iterate in insertion order;
* :meth:`MetricsRegistry.snapshot` renders a canonical JSON-ready dict
  (families and series sorted), so equal registries snapshot to equal
  bytes;
* :func:`merge_snapshots` is a pure position-ordered fold -- counters and
  histogram bins sum, gauges keep their maximum (high-water-mark
  semantics, which is also order-independent) -- so merging ``jobs=4``
  worker snapshots equals merging the same snapshots serially.

Distinct from :mod:`repro.sim.metrics` (per-simulation statistical
collectors): this registry is the cross-run, exportable telemetry store
behind :class:`repro.obs.recorder.TelemetryRecorder`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: Canonical labeled-series key: sorted ``(key, value)`` string pairs.
LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (simulated time units / sizes).
DEFAULT_BOUNDARIES: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0,
)


def _label_key(labels: Optional[Mapping[str, Any]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class CounterFamily:
    """A monotonically increasing counter with labeled series."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelPairs, Union[int, float]] = {}

    def inc(self, value: Union[int, float] = 1, labels: Optional[Mapping[str, Any]] = None) -> None:
        """Add ``value`` (must be non-negative) to one labeled series."""
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {value})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + value

    def value(self, labels: Optional[Mapping[str, Any]] = None) -> Union[int, float]:
        """Current value of one labeled series (0 if never incremented)."""
        return self._series.get(_label_key(labels), 0)

    def _snapshot_series(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": self._series[key]}
            for key in sorted(self._series)
        ]


class GaugeFamily:
    """A point-in-time value; merged snapshots keep the maximum."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelPairs, Union[int, float]] = {}

    def set(self, value: Union[int, float], labels: Optional[Mapping[str, Any]] = None) -> None:
        """Set one labeled series to ``value``."""
        self._series[_label_key(labels)] = value

    def value(self, labels: Optional[Mapping[str, Any]] = None) -> Union[int, float]:
        """Current value of one labeled series (0 if never set)."""
        return self._series.get(_label_key(labels), 0)

    def _snapshot_series(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": self._series[key]}
            for key in sorted(self._series)
        ]


class HistogramFamily:
    """A fixed-boundary histogram (cumulative export, mergeable bins).

    ``boundaries`` are bucket *upper bounds*; an extra overflow bucket
    catches everything above the last bound, so ``counts`` always has
    ``len(boundaries) + 1`` entries.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in (boundaries or DEFAULT_BOUNDARIES))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} boundaries must be strictly increasing")
        self.name = name
        self.help = help
        self.boundaries = bounds
        self._series: Dict[LabelPairs, dict] = {}

    def observe(self, value: Union[int, float], labels: Optional[Mapping[str, Any]] = None) -> None:
        """Record one observation into the matching bucket."""
        key = _label_key(labels)
        state = self._series.get(key)
        if state is None:
            state = {"counts": [0] * (len(self.boundaries) + 1), "sum": 0.0, "count": 0}
            self._series[key] = state
        state["counts"][bisect_right(self.boundaries, value)] += 1
        state["sum"] += value
        state["count"] += 1

    def count(self, labels: Optional[Mapping[str, Any]] = None) -> int:
        """Observations recorded in one labeled series."""
        state = self._series.get(_label_key(labels))
        return 0 if state is None else state["count"]

    def _snapshot_series(self) -> List[dict]:
        return [
            {
                "labels": dict(key),
                "counts": list(self._series[key]["counts"]),
                "sum": self._series[key]["sum"],
                "count": self._series[key]["count"],
            }
            for key in sorted(self._series)
        ]


#: Any of the three family types.
MetricFamily = Union[CounterFamily, GaugeFamily, HistogramFamily]


class MetricsRegistry:
    """Insertion-ordered store of metric families, one per name.

    ``counter``/``gauge``/``histogram`` get-or-create a family;
    re-registering a name under a different kind is an error (one name,
    one schema -- merges depend on it).
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _get(self, name: str, kind: str) -> Optional[MetricFamily]:
        family = self._families.get(name)
        if family is not None and family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> CounterFamily:
        """Get or create the counter family called ``name``."""
        family = self._get(name, "counter")
        if family is None:
            family = CounterFamily(name, help)
            self._families[name] = family
        return family  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> GaugeFamily:
        """Get or create the gauge family called ``name``."""
        family = self._get(name, "gauge")
        if family is None:
            family = GaugeFamily(name, help)
            self._families[name] = family
        return family  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> HistogramFamily:
        """Get or create the histogram family called ``name``.

        ``boundaries`` only applies on creation; a later mismatch with
        the existing family's boundaries is an error.
        """
        family = self._get(name, "histogram")
        if family is None:
            family = HistogramFamily(name, boundaries, help)
            self._families[name] = family
        elif boundaries is not None and tuple(float(b) for b in boundaries) != family.boundaries:  # type: ignore[union-attr]
            raise ValueError(f"metric {name!r} re-registered with different boundaries")
        return family  # type: ignore[return-value]

    def families(self) -> List[MetricFamily]:
        """All families, in registration order."""
        return list(self._families.values())

    def snapshot(self) -> Dict[str, dict]:
        """Canonical JSON-ready form: families and series sorted.

        The mergeable interchange format -- see :func:`merge_snapshots`.
        """
        out: Dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            entry: Dict[str, Any] = {"kind": family.kind, "help": family.help}
            if family.kind == "histogram":
                entry["boundaries"] = list(family.boundaries)  # type: ignore[union-attr]
            entry["series"] = family._snapshot_series()
            out[name] = entry
        return out


def _merge_series(kind: str, into: List[dict], extra: Sequence[dict], name: str) -> List[dict]:
    """Fold ``extra`` series into ``into`` (both label-sorted); re-sorts."""
    by_labels: Dict[LabelPairs, dict] = {
        tuple(sorted(entry["labels"].items())): entry for entry in into
    }
    for entry in extra:
        key = tuple(sorted(entry["labels"].items()))
        current = by_labels.get(key)
        if current is None:
            by_labels[key] = {
                k: (list(v) if isinstance(v, list) else dict(v) if isinstance(v, dict) else v)
                for k, v in entry.items()
            }
            continue
        if kind == "counter":
            current["value"] = current["value"] + entry["value"]
        elif kind == "gauge":
            current["value"] = max(current["value"], entry["value"])
        else:  # histogram
            if len(current["counts"]) != len(entry["counts"]):
                raise ValueError(f"histogram {name!r} bucket shapes differ across snapshots")
            current["counts"] = [a + b for a, b in zip(current["counts"], entry["counts"])]
            current["sum"] = current["sum"] + entry["sum"]
            current["count"] = current["count"] + entry["count"]
    return [by_labels[key] for key in sorted(by_labels)]


def merge_snapshots(snapshots: Sequence[Dict[str, dict]]) -> Dict[str, dict]:
    """Merge registry snapshots into one, in the order given.

    Counters and histogram bins sum; gauges keep their maximum;
    histogram boundaries must agree.  The result is canonical (sorted),
    so merging the same snapshots always yields byte-identical JSON --
    the property the ``jobs=N == jobs=1`` telemetry tests pin down.
    """
    merged: Dict[str, dict] = {}
    for snapshot in snapshots:
        for name in sorted(snapshot):
            entry = snapshot[name]
            current = merged.get(name)
            if current is None:
                merged[name] = {
                    "kind": entry["kind"],
                    "help": entry["help"],
                    **(
                        {"boundaries": list(entry["boundaries"])}
                        if entry["kind"] == "histogram"
                        else {}
                    ),
                    "series": _merge_series(entry["kind"], [], entry["series"], name),
                }
                continue
            if current["kind"] != entry["kind"]:
                raise ValueError(
                    f"metric {name!r} has kind {entry['kind']} in one snapshot "
                    f"and {current['kind']} in another"
                )
            if entry["kind"] == "histogram" and list(entry["boundaries"]) != current["boundaries"]:
                raise ValueError(f"histogram {name!r} boundaries differ across snapshots")
            current["series"] = _merge_series(
                entry["kind"], current["series"], entry["series"], name
            )
    return {name: merged[name] for name in sorted(merged)}


__all__ = [
    "DEFAULT_BOUNDARIES",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "merge_snapshots",
]
