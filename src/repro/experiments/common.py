"""Shared plumbing for the experiment harnesses: series containers,
replication with confidence intervals, and fixed-width table rendering."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.strategy import RedundancyStrategy
from repro.dca import DcaConfig, DcaReport, run_dca


@dataclass(frozen=True)
class SeriesPoint:
    """One point of a reliability-vs-cost (or similar) series."""

    label: str
    cost: float
    reliability: float
    cost_err: float = 0.0
    reliability_err: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class Series:
    """A named sequence of points (one technique's curve)."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, point: SeriesPoint) -> None:
        self.points.append(point)


@dataclass
class ExperimentResult:
    """What an experiment's ``compute`` returns: titled series plus notes."""

    title: str
    series: List[Series]
    notes: List[str] = field(default_factory=list)

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(name)

    def as_dict(self) -> dict:
        """JSON-ready structure (for ``--json`` and downstream tooling)."""
        return {
            "title": self.title,
            "notes": list(self.notes),
            "series": [
                {
                    "name": series.name,
                    "points": [
                        {
                            "label": point.label,
                            "cost": point.cost,
                            "reliability": point.reliability,
                            "cost_err": point.cost_err,
                            "reliability_err": point.reliability_err,
                            "extra": dict(point.extra),
                        }
                        for point in series.points
                    ],
                }
                for series in self.series
            ],
        }


def render_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """Fixed-width text table, the form every experiment prints."""
    columns = [str(h) for h in header]
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "-"
        return f"{cell:.4g}"
    return str(cell)


@dataclass(frozen=True)
class ReplicatedMeasurement:
    """Mean and standard error over independent replications."""

    mean_reliability: float
    mean_cost: float
    reliability_err: float
    cost_err: float
    mean_response_time: float
    max_jobs: int
    replications: int


def replicate_dca(
    strategy_factory: Callable[[], RedundancyStrategy],
    *,
    tasks: int,
    nodes: int,
    reliability: float,
    replications: int = 3,
    seed: int = 0,
    **config_overrides,
) -> ReplicatedMeasurement:
    """Run several independent DES replications and aggregate with errors.

    A fresh strategy instance per replication keeps node-aware strategies
    honest; seeds derive from the base seed.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    reliabilities: List[float] = []
    costs: List[float] = []
    responses: List[float] = []
    max_jobs = 0
    for repetition in range(replications):
        report = run_dca(
            DcaConfig(
                strategy=strategy_factory(),
                tasks=tasks,
                nodes=nodes,
                reliability=reliability,
                seed=seed * 10_007 + repetition,
                **config_overrides,
            )
        )
        reliabilities.append(report.system_reliability)
        costs.append(report.cost_factor)
        responses.append(report.mean_response_time)
        max_jobs = max(max_jobs, report.max_jobs_per_task)
    return ReplicatedMeasurement(
        mean_reliability=_mean(reliabilities),
        mean_cost=_mean(costs),
        reliability_err=_stderr(reliabilities),
        cost_err=_stderr(costs),
        mean_response_time=_mean(responses),
        max_jobs=max_jobs,
        replications=replications,
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _stderr(values: Sequence[float]) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    mean = _mean(values)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return math.sqrt(variance / n)


#: Scales for the CLI: (tasks, nodes, replications) for DES experiments.
SCALES = {
    "smoke": dict(tasks=1_000, nodes=200, replications=2),
    "default": dict(tasks=10_000, nodes=1_000, replications=3),
    "full": dict(tasks=100_000, nodes=10_000, replications=3),
}
