"""Shared plumbing for the experiment harnesses: series containers,
replication with confidence intervals, and fixed-width table rendering."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.strategy import RedundancyStrategy
from repro.parallel import (
    ReplicateEnvelope,
    aggregate_metrics,
    dca_replicate_specs,
    run_dca_replicates,
)


@dataclass(frozen=True)
class SeriesPoint:
    """One point of a reliability-vs-cost (or similar) series."""

    label: str
    cost: float
    reliability: float
    cost_err: float = 0.0
    reliability_err: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class Series:
    """A named sequence of points (one technique's curve)."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, point: SeriesPoint) -> None:
        self.points.append(point)


@dataclass
class ExperimentResult:
    """What an experiment's ``compute`` returns: titled series plus notes."""

    title: str
    series: List[Series]
    notes: List[str] = field(default_factory=list)

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(name)

    def as_dict(self) -> dict:
        """JSON-ready structure (for ``--json`` and downstream tooling)."""
        return {
            "title": self.title,
            "notes": list(self.notes),
            "series": [
                {
                    "name": series.name,
                    "points": [
                        {
                            "label": point.label,
                            "cost": point.cost,
                            "reliability": point.reliability,
                            "cost_err": point.cost_err,
                            "reliability_err": point.reliability_err,
                            "extra": dict(point.extra),
                        }
                        for point in series.points
                    ],
                }
                for series in self.series
            ],
        }


def render_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """Fixed-width text table, the form every experiment prints."""
    columns = [str(h) for h in header]
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "-"
        return f"{cell:.4g}"
    return str(cell)


@dataclass(frozen=True)
class ReplicatedMeasurement:
    """Mean and standard error over independent replications."""

    mean_reliability: float
    mean_cost: float
    reliability_err: float
    cost_err: float
    mean_response_time: float
    max_jobs: int
    replications: int


def measurement_from_envelopes(
    envelopes: Sequence[ReplicateEnvelope],
) -> ReplicatedMeasurement:
    """Fold one sweep point's replicate envelopes into a measurement.

    Aggregation happens in replicate (position) order via the parallel
    reducer, so the result is identical however the replicates were
    scheduled.  One replicate yields zero error bars, not NaN.
    """
    aggregates = aggregate_metrics(
        envelopes, keys=("reliability", "cost_factor", "mean_response_time")
    )
    return ReplicatedMeasurement(
        mean_reliability=aggregates["reliability"].mean,
        mean_cost=aggregates["cost_factor"].mean,
        reliability_err=aggregates["reliability"].stderr,
        cost_err=aggregates["cost_factor"].stderr,
        mean_response_time=aggregates["mean_response_time"].mean,
        max_jobs=max(int(envelope.metrics["max_jobs"]) for envelope in envelopes),
        replications=len(envelopes),
    )


def replicate_dca(
    strategy_factory: Callable[[], RedundancyStrategy],
    *,
    tasks: int,
    nodes: int,
    reliability: float,
    replications: int = 3,
    seed: int = 0,
    jobs: Optional[int] = 1,
    mode: str = "sim",
    **config_overrides,
) -> ReplicatedMeasurement:
    """Run several independent DES replications and aggregate with errors.

    A fresh strategy instance per replication keeps node-aware strategies
    honest; per-replicate seeds spawn deterministically from the base
    seed (:func:`repro.parallel.replicate_seeds`), so the same base seed
    always reproduces the same replicates.

    Args:
        jobs: Worker processes for the replication engine.  ``1``
            (default) runs the exact in-process serial path; ``None``
            uses every core.  All values produce identical results.
        mode: ``"sim"`` (default) runs the DES.  ``"analytic"`` evaluates
            the paper's closed forms instead (Equations (1)-(6) via
            :mod:`repro.core.analytic`) -- orders of magnitude faster, zero
            error bars, but only valid for the idealised regime those
            equations model; unsupported strategies or config overrides
            raise :class:`ValueError` rather than guessing.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    if mode == "analytic":
        return _analytic_measurement(
            strategy_factory, reliability, replications, config_overrides
        )
    if mode != "sim":
        raise ValueError(f"mode must be 'sim' or 'analytic', got {mode!r}")
    specs = dca_replicate_specs(
        strategy_factory,
        tasks=tasks,
        nodes=nodes,
        reliability=reliability,
        replications=replications,
        seed=seed,
        **config_overrides,
    )
    return measurement_from_envelopes(run_dca_replicates(specs, jobs=jobs))


def _analytic_measurement(
    strategy_factory: Callable[[], RedundancyStrategy],
    reliability: float,
    replications: int,
    config_overrides: Dict[str, object],
) -> ReplicatedMeasurement:
    """The ``mode="analytic"`` fast path: closed forms, zero error bars."""
    from repro.core.analytic import analytic_prediction, check_analytic_overrides

    check_analytic_overrides(config_overrides)
    duration_low = float(config_overrides.get("duration_low", 0.5))
    duration_high = float(config_overrides.get("duration_high", 1.5))
    prediction = analytic_prediction(
        strategy_factory(),
        reliability,
        duration_low=duration_low,
        duration_high=duration_high,
    )
    return ReplicatedMeasurement(
        mean_reliability=prediction.reliability,
        mean_cost=prediction.cost_factor,
        reliability_err=0.0,
        cost_err=0.0,
        mean_response_time=prediction.mean_response_time,
        max_jobs=prediction.max_jobs,
        replications=replications,
    )


#: Scales for the CLI: (tasks, nodes, replications) for DES experiments.
SCALES = {
    "smoke": dict(tasks=1_000, nodes=200, replications=2),
    "default": dict(tasks=10_000, nodes=1_000, replications=3),
    "full": dict(tasks=100_000, nodes=10_000, replications=3),
}
