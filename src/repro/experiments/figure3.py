"""Figure 3: analytic system reliability vs cost factor (r = 0.7).

The paper plots, for node reliability 0.7, the reliability each technique
achieves as a function of its cost factor: traditional redundancy at
k = 3, 5, ..., progressive redundancy at the same k (but lower cost), and
iterative redundancy at d = 1, 2, ... .  At any cost, IR > PR > TR.

This module evaluates Equations (1)-(6) directly; Figure 5(a) re-derives
the same curves from the discrete-event simulation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core import analysis
from repro.experiments.common import ExperimentResult, Series, SeriesPoint, render_table

DEFAULT_R = 0.7
DEFAULT_KS = tuple(range(3, 21, 2))
DEFAULT_DS = tuple(range(1, 9))


def compute(
    r: float = DEFAULT_R,
    ks: Sequence[int] = DEFAULT_KS,
    ds: Sequence[int] = DEFAULT_DS,
    *,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Evaluate the three closed-form curves.

    ``jobs`` is accepted for CLI uniformity; closed forms have nothing
    to parallelise, so results are trivially identical for any value.
    """
    del jobs
    traditional = Series("TR")
    for k in ks:
        traditional.add(
            SeriesPoint(
                label=f"k={k}",
                cost=analysis.traditional_cost(k),
                reliability=analysis.traditional_reliability(r, k),
            )
        )
    progressive = Series("PR")
    for k in ks:
        progressive.add(
            SeriesPoint(
                label=f"k={k}",
                cost=analysis.progressive_cost(r, k),
                reliability=analysis.progressive_reliability(r, k),
            )
        )
    iterative = Series("IR")
    for d in ds:
        iterative.add(
            SeriesPoint(
                label=f"d={d}",
                cost=analysis.iterative_cost(r, d),
                reliability=analysis.iterative_reliability(r, d),
            )
        )
    return ExperimentResult(
        title=f"Figure 3: analytic reliability vs cost factor (r = {r})",
        series=[traditional, progressive, iterative],
        notes=[
            "reliability approaches 1 exponentially as cost grows linearly",
            "at equal cost: IR > PR > TR (the paper's headline ordering)",
        ],
    )


def render(result: ExperimentResult) -> str:
    rows: List[List[object]] = []
    for series in result.series:
        for point in series.points:
            rows.append([series.name, point.label, point.cost, point.reliability])
    return render_table(
        result.title,
        ["technique", "param", "cost factor", "system reliability"],
        rows,
        result.notes,
    )


def main(
    scale: str = "default",
    r: float = DEFAULT_R,
    jobs: Optional[int] = None,
) -> str:
    """Scale and jobs are irrelevant for closed forms; accepted for CLI
    uniformity."""
    return render(compute(r=r))


if __name__ == "__main__":  # pragma: no cover
    print(main())
