"""Beyond-the-paper ablation studies for the design choices DESIGN.md
calls out.

* ``theorem1``  -- the complex (r-aware) and simple (margin) iterative
  algorithms produce identical cost and reliability end to end in the DES
  (Theorem 1's operational consequence);
* ``whitewash`` -- credibility-based fault tolerance vs iterative
  redundancy when malicious nodes shed bad reputations by changing
  identity (Section 5.1's argument for IR's statelessness);
* ``defection`` -- BOINC-style adaptive replication vs iterative
  redundancy against nodes that earn trust honestly and then defect;
* ``priority``  -- follow-up-wave dispatch priority on/off (the
  response-time regime of Figure 6);
* ``worstcase`` -- colluding (binary) vs non-colluding failures: the
  Byzantine binary model is the worst case (Section 5.3).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import (
    AdaptiveReplication,
    ComplexIterativeRedundancy,
    CredibilityManager,
    CredibilityStrategy,
    IterativeRedundancy,
    TraditionalRedundancy,
    analysis,
)
from repro.core.distributions import TwoClassReliability
from repro.dca import (
    ByzantineCollusion,
    DcaConfig,
    DcaSimulation,
    NonColludingFailures,
    SpotCheckEvading,
    run_dca,
)
from repro.experiments.common import render_table


def theorem1_ablation(tasks: int = 4_000, seed: int = 13) -> str:
    """Complex vs simple iterative redundancy: identical behaviour."""
    r, target = 0.7, 0.967
    complex_strategy = ComplexIterativeRedundancy(r, target)
    simple = run_dca(
        DcaConfig(
            strategy=IterativeRedundancy(complex_strategy.equivalent_margin),
            tasks=tasks,
            nodes=400,
            reliability=r,
            seed=seed,
        )
    )
    complex_report = run_dca(
        DcaConfig(
            strategy=complex_strategy, tasks=tasks, nodes=400, reliability=r, seed=seed
        )
    )
    rows = [
        ["simple (margin only)", simple.cost_factor, simple.system_reliability],
        ["complex (needs r)", complex_report.cost_factor, complex_report.system_reliability],
    ]
    return render_table(
        "Ablation: Theorem 1 -- simple vs complex iterative redundancy",
        ["algorithm", "cost factor", "reliability"],
        rows,
        notes=[
            "identical seeds => identical dispatch decisions => identical rows",
            f"(r = {r}, target R = {target}, equivalent d = "
            f"{complex_strategy.equivalent_margin})",
        ],
    )


def whitewash_ablation(tasks: int = 3_000, seed: int = 17) -> str:
    """Credibility-based FT against Byzantine attackers vs IR.

    The pool is 30% malicious (always wrong on real work).  Three regimes:

    * *naive* attackers fail spot-checks, get blacklisted, and
      credibility-based FT shines -- the scheme's best case;
    * *spot-check-evading* attackers answer check jobs correctly
      (Section 5.1: Byzantine faults cannot be reliably spot-checked);
      they earn credibility and their colluding wrong votes are then
      over-weighted, while the spot-check budget is wasted;
    * evading attackers who additionally *whitewash* any identity that
      does get caught.

    Iterative redundancy keeps no reputation state, so every regime looks
    identical to it.
    """
    population = TwoClassReliability(good_r=0.95, faulty_r=0.0, faulty_fraction=0.3)

    def credibility_run(evading: bool, whitewash: bool):
        manager = CredibilityManager(assumed_fault_fraction=0.3, spot_check_rate=0.15)
        strategy = CredibilityStrategy(manager, target=0.97)
        failure_model = SpotCheckEvading(ByzantineCollusion()) if evading else None
        simulation = DcaSimulation(
            DcaConfig(
                strategy=strategy,
                tasks=tasks,
                nodes=300,
                reliability=population,
                seed=seed,
                spot_check_rate=manager.spot_check_rate,
                failure_model=failure_model,
            )
        )
        if whitewash:
            _install_whitewasher(simulation, manager)
        report = simulation.run()
        overhead = report.spot_checks / max(1, report.tasks_completed)
        return report, overhead

    rows = []
    for label, evading, whitewash in (
        ("credibility vs naive attackers", False, False),
        ("credibility vs check-evading attackers", True, False),
        ("credibility vs evading + whitewashing", True, True),
    ):
        report, overhead = credibility_run(evading, whitewash)
        rows.append([label, report.cost_factor + overhead, report.system_reliability])
    ir_report = run_dca(
        DcaConfig(
            strategy=IterativeRedundancy(5),
            tasks=tasks,
            nodes=300,
            reliability=population,
            seed=seed,
        )
    )
    rows.append(
        ["iterative d=5 (stateless)", ir_report.cost_factor, ir_report.system_reliability]
    )
    return render_table(
        "Ablation: reputation attacks vs credibility-based fault tolerance",
        ["scheme", "cost (incl. spot-check overhead)", "reliability"],
        rows,
        notes=[
            "population: 30% malicious (always wrong on real work), honest r=0.95",
            "evading attackers pass spot-checks, earning unearned credibility",
            "IR keeps no reputation state, so the attacks cannot touch it",
        ],
    )


def _install_whitewasher(simulation: DcaSimulation, manager: CredibilityManager) -> None:
    """Periodically let blacklisted nodes re-enter with fresh identities."""
    pool = simulation.pool
    sim = simulation.sim

    def sweep(event) -> None:
        blacklisted = [
            node.node_id
            for node in pool
            if manager.is_blacklisted(node.node_id) and node.available
        ]
        for node_id in blacklisted:
            old = pool.leave(node_id)
            manager.forget(node_id)
            if old is not None:
                from repro.dca.node import Node

                pool.join(
                    Node(
                        node_id=pool.allocate_id(),
                        reliability=old.reliability,  # same machine, new name
                        speed_factor=old.speed_factor,
                    )
                )
        simulation.server.pump()
        if simulation.server.remaining_tasks > 0:
            sim.schedule_after(2.0, sweep)

    sim.schedule_after(2.0, sweep)


def defection_ablation(tasks: int = 3_000, seed: int = 19) -> str:
    """Adaptive replication against earn-trust-then-defect nodes.

    A two-phase population: nodes answer honestly for the first half of
    the run (earning trust), then a malicious third defects.  Adaptive
    replication accepts the defectors' single results; iterative
    redundancy keeps voting and barely notices.
    """
    from repro.core.runner import run_task
    from repro.core.types import JobOutcome
    import random

    rng = random.Random(seed)
    population = 300
    malicious = set(rng.sample(range(population), population // 3))

    def run_strategy(strategy):
        correct = 0
        total_jobs = 0
        for task_id in range(tasks):
            defecting = task_id >= tasks // 2

            def source(index: int) -> JobOutcome:
                node_id = rng.randrange(population)
                if node_id in malicious and defecting:
                    value = False
                elif rng.random() < 0.95:
                    value = True
                else:
                    value = False
                return JobOutcome(value=value, node_id=node_id)

            verdict = run_task(strategy, source, true_value=True, task_id=task_id)
            total_jobs += verdict.jobs_used
            correct += 1 if verdict.correct else 0
        return total_jobs / tasks, correct / tasks

    adaptive_cost, adaptive_reliability = run_strategy(
        AdaptiveReplication(quorum=2, trust_after=5, audit_rate=0.02, rng=random.Random(seed))
    )
    ir_cost, ir_reliability = run_strategy(IterativeRedundancy(4))
    rows = [
        ["adaptive replication", adaptive_cost, adaptive_reliability],
        ["iterative d=4", ir_cost, ir_reliability],
    ]
    return render_table(
        "Ablation: earn-trust-then-defect vs adaptive replication",
        ["scheme", "cost factor", "reliability"],
        rows,
        notes=[
            "one third of nodes answer honestly for half the run, then defect",
            "adaptive replication accepts trusted nodes' results unreplicated,"
            " so defectors' wrong answers sail through",
        ],
    )


def priority_ablation(tasks: int = 4_000, seed: int = 23) -> str:
    """Follow-up dispatch priority: the Figure 6 response-time regime."""
    rows = []
    for prioritize in (True, False):
        simulation = DcaSimulation(
            DcaConfig(
                strategy=IterativeRedundancy(4),
                tasks=tasks,
                nodes=400,
                reliability=0.7,
                seed=seed,
            )
        )
        simulation.server.prioritize_followups = prioritize
        report = simulation.run()
        rows.append(
            [
                "follow-ups first" if prioritize else "strict FIFO",
                report.mean_response_time,
                report.makespan,
                report.cost_factor,
            ]
        )
    return render_table(
        "Ablation: follow-up wave dispatch priority (IR, d=4, r=0.7)",
        ["queue policy", "mean response time", "makespan", "cost factor"],
        rows,
        notes=[
            "priority keeps per-task response near the unloaded model;",
            "FIFO makes follow-up waves wait behind the whole backlog",
        ],
    )


def worstcase_ablation(tasks: int = 4_000, seed: int = 29) -> str:
    """Colluding (binary) vs non-colluding failures at the same r."""
    rows = []
    for label, failure_model in (
        ("colluding (binary worst case)", None),
        ("non-colluding (diverse wrong values)", NonColludingFailures()),
    ):
        report = run_dca(
            DcaConfig(
                strategy=TraditionalRedundancy(5),
                tasks=tasks,
                nodes=400,
                reliability=0.7,
                seed=seed,
                failure_model=failure_model,
            )
        )
        rows.append([label, report.cost_factor, report.system_reliability])
    rows.append(
        ["Equation (2) bound", 5.0, analysis.traditional_reliability(0.7, 5)]
    )
    return render_table(
        "Ablation: the binary colluding model is the worst case (TR, k=5)",
        ["failure model", "cost factor", "reliability"],
        rows,
        notes=["Section 5.3: the analysis upper-bounds non-binary failure rates"],
    )


def checkpointing_ablation(tasks: int = 3_000, seed: int = 31) -> str:
    """Checkpointing for long subcomputations (the Section 6 companion).

    Long jobs under crash failures: without checkpoints every crash
    restarts the job from scratch; with checkpoints only the last segment
    is lost.  The ``tasks`` parameter scales the Monte-Carlo replication
    count.
    """
    import random

    from repro.dca.checkpointing import (
        CheckpointPolicy,
        expected_completion_time,
        optimal_interval,
        simulate_job,
    )

    work, crash_rate, checkpoint_cost = 40.0, 0.08, 0.3
    tau_star = optimal_interval(crash_rate, checkpoint_cost)
    policies = [
        ("no checkpoints", CheckpointPolicy(restart_cost=0.5)),
        (
            "fixed interval 10",
            CheckpointPolicy(interval=10.0, checkpoint_cost=checkpoint_cost, restart_cost=0.5),
        ),
        (
            f"Young's tau* = {tau_star:.2f}",
            CheckpointPolicy(
                interval=tau_star, checkpoint_cost=checkpoint_cost, restart_cost=0.5
            ),
        ),
    ]
    rng = random.Random(seed)
    runs = max(200, tasks // 10)
    rows = []
    for label, policy in policies:
        stats = [simulate_job(work, crash_rate, policy, rng) for _ in range(runs)]
        mean_wall = sum(s.wall_clock for s in stats) / runs
        mean_lost = sum(s.work_lost for s in stats) / runs
        rows.append(
            [
                label,
                mean_wall,
                expected_completion_time(work, crash_rate, policy),
                mean_lost,
            ]
        )
    return render_table(
        "Ablation: checkpointing long jobs under crash failures",
        ["policy", "wall clock (sim)", "wall clock (model)", "work lost"],
        rows,
        notes=[
            f"job = {work} work units, Poisson crashes at rate {crash_rate},",
            "checkpoints defend the *work* against crashes; voting defends",
            "the *result* against Byzantine lies -- orthogonal, composable",
        ],
    )


def grid_affinity_ablation(tasks: int = 3_000, seed: int = 37) -> str:
    """Correlated site faults vs replica placement (Section 5.3 on a grid).

    Grid sites fail as units (poisoned node image, broken shared
    filesystem), so replicas co-located on one site share fate and their
    votes are partially fictitious.  Anti-affinity placement restores the
    independence assumption and recovers the closed-form reliability.
    """
    from repro.grid import GridConfig, run_grid

    base = dict(
        strategy=TraditionalRedundancy(3),
        tasks=tasks,
        sites=4,
        site_fault_prob=0.2,
        job_fault_prob=0.05,
        seed=seed,
    )
    colocated = run_grid(GridConfig(policy="random", anti_affinity=False, **base))
    spread = run_grid(GridConfig(policy="random", anti_affinity=True, **base))
    r = GridConfig(**base).expected_job_reliability()
    rows = [
        ["random placement (co-location allowed)", colocated.cost_factor, colocated.system_reliability],
        ["anti-affinity placement", spread.cost_factor, spread.system_reliability],
        ["Equation (2) @ marginal r", 3.0, analysis.traditional_reliability(r, 3)],
    ]
    return render_table(
        "Ablation: grid replica placement under correlated site faults (TR, k=3)",
        ["placement", "cost factor", "reliability"],
        rows,
        notes=[
            f"4 sites, site poisoning 0.2/task, residual job faults 0.05 (marginal r = {r:.3f})",
            "co-located replicas share the site's fate; the vote loses independence",
        ],
    )


ABLATIONS: dict = {
    "theorem1": theorem1_ablation,
    "whitewash": whitewash_ablation,
    "defection": defection_ablation,
    "priority": priority_ablation,
    "worstcase": worstcase_ablation,
    "checkpointing": checkpointing_ablation,
    "grid_affinity": grid_affinity_ablation,
}


def _run_section(spec: Tuple[str, int]) -> str:
    """Render one ablation section (module-level, picklable worker)."""
    name, tasks = spec
    return ABLATIONS[name](tasks=tasks)


def main(scale: str = "default", jobs: Optional[int] = 1) -> str:
    """Run every ablation; sections are independent studies with their
    own seeds, so they fan out over the replication engine as-is and the
    rendered output is identical for any ``jobs`` value."""
    from repro.parallel import parallel_map

    sizes = {"smoke": 800, "default": 3_000, "full": 10_000}
    tasks = sizes.get(scale, 3_000)
    sections = parallel_map(
        _run_section, [(name, tasks) for name in ABLATIONS], jobs=jobs
    )
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(main("smoke"))
