"""Figure 5(c): cost-factor improvement over traditional redundancy as a
function of node reliability.

The paper's quoted values: progressive redundancy's improvement grows from
~1 near r = 0.5 to 2.0 as r -> 1; iterative redundancy is at least 1.6
even near r = 0.5, peaks around 2.8 at r ~ 0.86, and eases to ~2.4 as
r -> 1.

Methodology (the paper leaves its interpolation implicit; this choice
matches every quoted number -- see EXPERIMENTS.md): fix the vote size k
(19, the paper's running example).  PR achieves exactly TR's reliability,
so its improvement is k / C_PR(r, k).  IR's margin d is tuned
(continuously, via the Equation (6) inverse) so R_IR(r, d) = R_TR(r, k);
its improvement is k / C_IR(r, d).

The optional simulation cross-check measures a few r values empirically
with integer d chosen to match reliability as closely as possible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy
from repro.core import analysis
from repro.experiments.common import (
    ExperimentResult,
    Series,
    SeriesPoint,
    render_table,
    replicate_dca,
)

DEFAULT_K = 19
DEFAULT_GRID = tuple(round(0.55 + 0.025 * i, 3) for i in range(18))  # 0.55 .. 0.975


def compute(
    r_grid: Sequence[float] = DEFAULT_GRID,
    k: int = DEFAULT_K,
    *,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """The analytic improvement curves.

    ``jobs`` is accepted for CLI uniformity; closed forms have nothing
    to parallelise.
    """
    del jobs
    pr_series = Series("PR improvement")
    ir_series = Series("IR improvement")
    for r in r_grid:
        pr_gain, ir_gain = analysis.improvement_over_traditional(r, k)
        pr_series.add(SeriesPoint(label=f"r={r}", cost=r, reliability=pr_gain))
        ir_series.add(SeriesPoint(label=f"r={r}", cost=r, reliability=ir_gain))
    return ExperimentResult(
        title=f"Figure 5(c): improvement over traditional redundancy (k = {k})",
        series=[pr_series, ir_series],
        notes=[
            "columns: r, improvement factor (C_TR / C_technique at equal reliability)",
            "PR rises toward 2.0 as r -> 1",
            "IR: >= ~1.6 near r = 0.5, peak near r ~ 0.86-0.9, ~2.4 as r -> 1",
        ],
    )


def simulate_check(
    r_values: Sequence[float] = (0.6, 0.7, 0.86),
    k: int = DEFAULT_K,
    *,
    tasks: int = 5_000,
    nodes: int = 500,
    replications: int = 2,
    seed: int = 7,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Empirical spot-check of the improvement ratios at a few r values."""
    series = Series("simulated IR improvement")
    for r in r_values:
        target = analysis.traditional_reliability(r, k)
        d = max(1, round(analysis.continuous_iterative_margin(r, target)))
        measurement = replicate_dca(
            lambda d=d: IterativeRedundancy(d),
            tasks=tasks,
            nodes=nodes,
            reliability=r,
            replications=replications,
            seed=seed,
            jobs=jobs,
        )
        series.add(
            SeriesPoint(
                label=f"r={r} (d={d})",
                cost=r,
                reliability=k / measurement.mean_cost,
                extra={
                    "measured_reliability": measurement.mean_reliability,
                    "target_reliability": target,
                },
            )
        )
    return ExperimentResult(
        title=f"Figure 5(c) simulation cross-check (k = {k})",
        series=[series],
        notes=["measured improvement uses integer d matched to R_TR(r, k)"],
    )


def render(result: ExperimentResult) -> str:
    rows: List[List[object]] = []
    names = [series.name for series in result.series]
    if len(result.series) == 2:
        for pr_point, ir_point in zip(result.series[0].points, result.series[1].points):
            rows.append([pr_point.cost, pr_point.reliability, ir_point.reliability])
        return render_table(
            result.title,
            ["r", names[0], names[1]],
            rows,
            result.notes,
        )
    for series in result.series:
        for point in series.points:
            rows.append([series.name, point.label, point.reliability])
    return render_table(result.title, ["series", "point", "improvement"], rows, result.notes)


def main(scale: str = "default", jobs: Optional[int] = 1) -> str:
    parts = [render(compute())]
    if scale != "smoke":
        parts.append(render(simulate_check(jobs=jobs)))
    return "\n\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(main("smoke"))
