"""Dependency-free ASCII scatter plots for the experiment CLI.

The paper's figures are reliability-vs-cost scatters; a terminal plot next
to the numeric table makes the orderings legible at a glance::

    python -m repro.experiments figure3 --plot
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, Series

#: Marker characters per series, in order.
MARKERS = "TPI*ox+#"


def ascii_plot(
    result: ExperimentResult,
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "cost factor",
    y_label: str = "reliability",
) -> str:
    """Render the result's series as an ASCII scatter plot.

    Each series gets a marker (``T``, ``P``, ``I``, ... in series order);
    colliding points show the later series' marker.  Returns the plot
    followed by a legend.
    """
    if width < 20 or height < 5:
        raise ValueError("plot needs at least 20x5 characters")
    points: List[Tuple[float, float, str]] = []
    legend: List[str] = []
    for index, series in enumerate(result.series):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} = {series.name}")
        for point in series.points:
            if _finite(point.cost) and _finite(point.reliability):
                points.append((point.cost, point.reliability, marker))
    if not points:
        return "(no finite points to plot)"

    x_min = min(p[0] for p in points)
    x_max = max(p[0] for p in points)
    y_min = min(p[1] for p in points)
    y_max = max(p[1] for p in points)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        grid[row][column] = marker

    lines = [result.title]
    lines.append(f"{y_max:.4g} ({y_label})")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    left = f"{x_min:.4g}"
    right = f"{x_max:.4g} ({x_label})"
    padding = max(1, width - len(left) - len(right))
    lines.append("   " + left + " " * padding + right)
    lines.append(f"{y_min:.4g} = bottom of y-axis")
    lines.append("legend: " + ", ".join(legend))
    return "\n".join(lines)


def _finite(value: float) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)
