"""Figure 5(b): the BOINC-on-PlanetLab deployment study.

The paper deployed BOINC on 200 PlanetLab nodes solving 22-variable 3-SAT
problems split into 140 tasks, with 30% seeded faults plus unknown natural
PlanetLab failures, and plotted system reliability vs cost factor per
technique.  It then *derived* the node reliability from the measurements
-- consistently 0.64 < r < 0.67 across all techniques and parameters --
as evidence of experimental validity.

This harness runs the synthetic PlanetLab deployment
(:mod:`repro.volunteer`) with the same shape: 200 nodes, 140 tasks per
problem, seeded 0.3 faults, natural fault and unresponsiveness processes
the algorithms are never told about.  It reports each run's measured
reliability, cost, and the derived r.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy
from repro.core.strategy import RedundancyStrategy
from repro.experiments.common import ExperimentResult, Series, SeriesPoint, render_table
from repro.parallel import VolunteerProblemSpec, run_volunteer_problems
from repro.volunteer import PlanetLabTestbed

DEFAULT_KS = (3, 7, 11, 15, 19)
DEFAULT_DS = (1, 2, 3, 4, 5, 6)

#: (sat_vars, tasks) per scale; the full scale is the paper's exact shape.
DEPLOYMENT_SCALES = {
    "smoke": dict(sat_vars=12, tasks=60, problems=2),
    "default": dict(sat_vars=16, tasks=140, problems=3),
    "full": dict(sat_vars=22, tasks=140, problems=5),
}


def compute(
    ks: Sequence[int] = DEFAULT_KS,
    ds: Sequence[int] = DEFAULT_DS,
    *,
    sat_vars: int = 16,
    tasks: int = 140,
    problems: int = 3,
    nodes: int = 200,
    seed: int = 3,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Run the volunteer deployment per technique and parameter.

    Every (technique, parameter, problem) run is independent, so the
    whole grid fans out through the parallel replication engine; the
    per-problem seeds (``seed * 1000 + problem``) and all aggregates are
    identical for any ``jobs`` value.
    """
    testbed = PlanetLabTestbed(nodes=nodes)
    sweeps: List[Tuple[str, List[Tuple[str, RedundancyStrategy]]]] = [
        ("TR", [(f"k={k}", TraditionalRedundancy(k)) for k in ks]),
        ("PR", [(f"k={k}", ProgressiveRedundancy(k)) for k in ks]),
        ("IR", [(f"d={d}", IterativeRedundancy(d)) for d in ds]),
    ]
    specs = []
    points = []  # (series name, label, start, stop)
    for name, strategies in sweeps:
        for label, strategy in strategies:
            start = len(specs)
            for problem in range(problems):
                specs.append(
                    VolunteerProblemSpec(
                        seed=seed * 1_000 + problem,
                        strategy=strategy,
                        testbed=testbed,
                        sat_vars=sat_vars,
                        tasks=tasks,
                    )
                )
            points.append((name, label, start, len(specs)))
    envelopes = run_volunteer_problems(specs, jobs=jobs)

    series_list: List[Series] = []
    for name, _ in sweeps:
        series = Series(name)
        for point_name, label, start, stop in points:
            if point_name != name:
                continue
            metrics = [envelope.metrics for envelope in envelopes[start:stop]]
            reliabilities = [m["reliability"] for m in metrics]
            costs = [m["cost_factor"] for m in metrics]
            derived = [
                m["derived_reliability"]
                for m in metrics
                if m["derived_reliability"] is not None
            ]
            problems_correct = sum(1 for m in metrics if m["problem_correct"])
            series.add(
                SeriesPoint(
                    label=label,
                    cost=sum(costs) / len(costs),
                    reliability=sum(reliabilities) / len(reliabilities),
                    extra={
                        "derived_r": sum(derived) / len(derived) if derived else float("nan"),
                        "problems_correct": problems_correct,
                        "problems": problems,
                    },
                )
            )
        series_list.append(series)
    return ExperimentResult(
        title=(
            f"Figure 5(b): volunteer deployment on synthetic PlanetLab "
            f"({nodes} nodes, {tasks} tasks/problem, {sat_vars}-var 3-SAT, "
            f"{problems} problems/point)"
        ),
        series=series_list,
        notes=[
            "seeded fault rate 0.3; natural faults push true r below 0.7",
            "derived r should sit consistently in ~0.62-0.67 across techniques",
            "at equal cost: IR > PR > TR, as in Figure 5(a)",
        ],
    )


def render(result: ExperimentResult) -> str:
    rows: List[List[object]] = []
    for series in result.series:
        for point in series.points:
            rows.append(
                [
                    series.name,
                    point.label,
                    point.cost,
                    point.reliability,
                    point.extra["derived_r"],
                    f"{point.extra['problems_correct']}/{point.extra['problems']}",
                ]
            )
    return render_table(
        result.title,
        ["technique", "param", "cost", "reliability", "derived r", "problems correct"],
        rows,
        result.notes,
    )


def main(scale: str = "default", jobs: Optional[int] = 1) -> str:
    params = DEPLOYMENT_SCALES[scale]
    return render(
        compute(
            sat_vars=params["sat_vars"],
            tasks=params["tasks"],
            problems=params["problems"],
            jobs=jobs,
        )
    )


if __name__ == "__main__":  # pragma: no cover
    print(main("smoke"))
