"""Experiment harnesses regenerating every figure in the paper.

Each module owns one figure (or the inline worked examples) and exposes

* ``compute(...)`` -- produce the figure's data series,
* ``render(result)`` -- format them as the text table the CLI prints,
* ``main(scale)`` -- compute + render at a given scale.

Run from the command line::

    python -m repro.experiments --list
    python -m repro.experiments figure3
    python -m repro.experiments figure5a --scale full

| Experiment | Paper artefact | Module |
|---|---|---|
| ``figure3``  | analytic reliability vs cost (r = 0.7) | figure3 |
| ``figure5a`` | simulated (DES) reliability vs cost | figure5a |
| ``figure5b`` | volunteer/PlanetLab reliability vs cost + derived r | figure5b |
| ``figure5c`` | improvement over traditional redundancy vs r | figure5c |
| ``figure6``  | average response time vs cost | figure6 |
| ``examples`` | the paper's inline worked numbers ("Table E1") | examples_table |
| ``ablations``| beyond-the-paper studies (comparators, churn, ...) | ablations |
| ``sensitivity`` | off-operating-point design-space maps | sensitivity |
| ``schematics``  | Figures 1-2 as code-derived ASCII schematics | schematics |
"""

from repro.experiments import (
    ablations,
    common,
    examples_table,
    figure3,
    figure5a,
    figure5b,
    figure5c,
    figure6,
    schematics,
    sensitivity,
)

EXPERIMENTS = {
    "figure3": figure3,
    "figure5a": figure5a,
    "figure5b": figure5b,
    "figure5c": figure5c,
    "figure6": figure6,
    "examples": examples_table,
    "ablations": ablations,
    "sensitivity": sensitivity,
    "schematics": schematics,
}

__all__ = [
    "EXPERIMENTS",
    "ablations",
    "common",
    "examples_table",
    "figure3",
    "figure5a",
    "figure5b",
    "figure5c",
    "figure6",
    "schematics",
    "sensitivity",
]
