"""Sensitivity analysis: how the design space behaves off the paper's
operating point.

The paper evaluates at r = 0.7 (simulation) and r ~ 0.665 (deployment).
Operators deploy elsewhere, so this harness maps the whole (r, d) and
(r, k) design space from the closed forms:

* the cost surface C_IR(r, d) and the reliability surface R_IR(r, d),
* the break-even frontier: for each (r, target R), the margin d*, the
  matching traditional k*, and the savings ratio,
* the *regret* of a mis-estimated r: choose d for an assumed r, then
  operate at a different true r -- quantifying how forgiving the margin
  rule is (reliability degrades gracefully; cost self-adjusts), which is
  the operational content of "no knowledge of node reliability needed".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core import analysis
from repro.core.confidence import required_margin
from repro.experiments.common import ExperimentResult, Series, SeriesPoint, render_table

DEFAULT_RS = (0.6, 0.7, 0.8, 0.9, 0.95)
DEFAULT_DS = (1, 2, 3, 4, 5, 6, 8, 10)
DEFAULT_TARGETS = (0.9, 0.99, 0.999, 0.9999)


def cost_reliability_surface(
    rs: Sequence[float] = DEFAULT_RS,
    ds: Sequence[int] = DEFAULT_DS,
) -> ExperimentResult:
    """The (r, d) |-> (cost, reliability) surface."""
    series_list: List[Series] = []
    for r in rs:
        series = Series(f"r={r}")
        for d in ds:
            series.add(
                SeriesPoint(
                    label=f"d={d}",
                    cost=analysis.iterative_cost(r, d),
                    reliability=analysis.iterative_reliability(r, d),
                )
            )
        series_list.append(series)
    return ExperimentResult(
        title="Sensitivity: iterative redundancy cost/reliability surface",
        series=series_list,
        notes=["each series is one node reliability; points sweep the margin d"],
    )


def breakeven_frontier(
    rs: Sequence[float] = DEFAULT_RS,
    targets: Sequence[float] = DEFAULT_TARGETS,
) -> List[List[object]]:
    """Rows of (r, target, d*, C_IR, k*, savings C_TR/C_IR)."""
    rows: List[List[object]] = []
    for r in rs:
        for target in targets:
            d = max(1, required_margin(r, target))
            cost = analysis.iterative_cost(r, d)
            k_real = analysis.continuous_traditional_k(
                r, analysis.iterative_reliability(r, d)
            )
            rows.append([r, target, d, cost, k_real, k_real / cost])
    return rows


def misestimation_regret(
    assumed_r: float = 0.7,
    target: float = 0.99,
    true_rs: Sequence[float] = (0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.9),
) -> List[List[object]]:
    """Choose d for ``assumed_r``; operate at each ``true r``.

    Rows of (true r, delivered reliability, cost) for the fixed d, plus
    the reliability a *correctly* tuned d would have delivered.  Because
    the margin rule keeps buying agreement until the evidence is there,
    mis-estimation costs money, not much correctness -- the graceful-
    degradation property behind the paper's assumption 2.
    """
    d = max(1, required_margin(assumed_r, target))
    rows: List[List[object]] = []
    for true_r in true_rs:
        delivered = analysis.iterative_reliability(true_r, d)
        cost = analysis.iterative_cost(true_r, d)
        tuned_d = (
            max(1, required_margin(true_r, target)) if true_r > 0.5 else None
        )
        tuned = (
            analysis.iterative_reliability(true_r, tuned_d)
            if tuned_d is not None
            else float("nan")
        )
        rows.append([true_r, d, delivered, cost, tuned])
    return rows


def render_all() -> str:
    surface = cost_reliability_surface()
    surface_rows: List[List[object]] = []
    for series in surface.series:
        for point in series.points:
            surface_rows.append(
                [series.name, point.label, point.cost, point.reliability]
            )
    parts = [
        render_table(
            surface.title,
            ["pool", "margin", "cost factor", "reliability"],
            surface_rows,
            surface.notes,
        ),
        render_table(
            "Sensitivity: break-even frontier vs traditional redundancy",
            ["r", "target R", "d*", "C_IR", "equivalent k", "savings"],
            breakeven_frontier(),
            ["'savings' = cost of the reliability-matched traditional vote / C_IR"],
        ),
        render_table(
            "Sensitivity: regret of mis-estimating r (d chosen for r=0.7, R=0.99)",
            ["true r", "d used", "delivered R", "cost", "R if tuned"],
            misestimation_regret(),
            [
                "the fixed margin keeps delivering near-target reliability;",
                "only the cost moves -- mis-estimation is a billing problem",
            ],
        ),
    ]
    return "\n\n".join(parts)


def main(scale: str = "default", jobs: Optional[int] = None) -> str:
    """Scale and jobs are irrelevant for closed forms; accepted for CLI
    uniformity."""
    return render_all()


if __name__ == "__main__":  # pragma: no cover
    print(main())
