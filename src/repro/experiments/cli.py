"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments figure3
    python -m repro.experiments figure5a --scale smoke
    python -m repro.experiments all --scale default
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of 'Smart Redundancy for "
            "Distributed Computation' (ICDCS 2011)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment name (see --list), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "default", "full"),
        default="default",
        help="run size: smoke (seconds), default (a few minutes), full (the paper's scale)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for replicated simulations (default: all "
            "CPUs; --jobs 1 runs the exact in-process serial path; "
            "results are identical for any value)"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help=(
            "record run telemetry (metrics, spans, events) and write a "
            "capture JSON to PATH; inspect it with 'repro-obs summary'"
        ),
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="append an ASCII scatter plot of the figure's series",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the figure's data series as JSON instead of a table",
    )
    return parser


#: Cheap compute() arguments per experiment for --plot/--json (sim-based
#: figures run at smoke scale regardless of --scale; analytic figures run
#: as-is).
_DATA_KWARGS = {
    "figure3": {},
    "figure5a": dict(tasks=1_000, nodes=200, replications=1),
    "figure5b": dict(ks=(3, 9), ds=(2, 4), sat_vars=12, tasks=60, problems=1, nodes=120),
    "figure5c": {},
    "figure6": dict(tasks=1_000, nodes=200, replications=1),
}


def _compute_data(name: str, module, jobs: Optional[int] = None):
    kwargs = _DATA_KWARGS.get(name)
    if kwargs is None or not hasattr(module, "compute"):
        return None
    return module.compute(jobs=jobs, **kwargs)


def _maybe_plot(name: str, module, jobs: Optional[int] = None) -> Optional[str]:
    result = _compute_data(name, module, jobs=jobs)
    if result is None:
        return None
    from repro.experiments.plotting import ascii_plot

    labels = {
        "figure5c": ("node reliability r", "improvement over TR"),
        "figure6": ("cost factor", "response time"),
    }
    x_label, y_label = labels.get(name, ("cost factor", "reliability"))
    return ascii_plot(result, x_label=x_label, y_label=y_label)


def _maybe_json(name: str, module, jobs: Optional[int] = None) -> Optional[str]:
    import json

    result = _compute_data(name, module, jobs=jobs)
    if result is None:
        return None
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if args.list or args.experiment is None:
        print("available experiments:")
        for name, module in sorted(EXPERIMENTS.items()):
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:10s} {summary}")
        print("  all        run every experiment in sequence")
        return 0
    if args.telemetry is None:
        return _run(args, jobs)
    from repro.obs.context import TelemetrySink, clear_sink, install_sink
    from repro.obs.host import capture_meta

    sink = TelemetrySink()
    install_sink(sink)
    try:
        code = _run(args, jobs)
    finally:
        clear_sink()
    if code == 0:
        meta = capture_meta(
            f"experiments:{args.experiment}", scale=args.scale, jobs=jobs
        )
        sink.capture(meta).save(args.telemetry)
        print(f"telemetry capture written to {args.telemetry}", file=sys.stderr)
    return code


def _run(args: argparse.Namespace, jobs: int) -> int:
    if args.experiment == "all":
        for name, module in EXPERIMENTS.items():
            print(module.main(args.scale, jobs=jobs))
            print()
        return 0
    module = EXPERIMENTS.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}; try --list", file=sys.stderr)
        return 2
    if args.json:
        payload = _maybe_json(args.experiment, module, jobs=jobs)
        if payload is None:
            print(f"(no JSON output available for {args.experiment})", file=sys.stderr)
            return 2
        print(payload)
        return 0
    print(module.main(args.scale, jobs=jobs))
    if args.plot:
        plot = _maybe_plot(args.experiment, module, jobs=jobs)
        if plot is not None:
            print()
            print(plot)
        else:
            print(f"(no plot available for {args.experiment})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
