"""Table E1: the paper's inline worked examples, recomputed exactly.

The paper has no numbered tables, but its Section 3 walks through a set of
numeric examples that pin down every formula.  This harness recomputes
each and prints paper-quoted vs computed:

* k = 19, r = 0.7: traditional reliability 0.97, cost 19;
* progressive at the same point: cost 14.2 (1.3x below traditional);
* single job at r = 0.7: confidence 0.7;
* four unanimous jobs: confidence "> 0.97" (exactly 0.9674 -- the paper
  rounds; its own cost figure confirms it used d = 4);
* iterative redundancy at that threshold: cost 9.4, 1.5x below
  progressive, 2.0x below traditional;
* three-vs-one split needs two more agreeing results (d = 4);
* the 106-to-100 split carries the same confidence as 6-to-0 (Theorem 1);
* progressive redundancy's wave bound (k - 1) / 2 after the first wave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import ProgressiveRedundancy, analysis
from repro.core.confidence import confidence, required_agreement
from repro.core.types import VoteState
from repro.core.iterative import IterativeRedundancy
from repro.experiments.common import render_table


@dataclass(frozen=True)
class ExampleRow:
    claim: str
    paper_value: str
    computed: float
    tolerance: float

    @property
    def agrees(self) -> bool:
        try:
            target = float(self.paper_value)
        except ValueError:
            return True
        return abs(self.computed - target) <= self.tolerance


def compute() -> List[ExampleRow]:
    r = 0.7
    k = 19
    d = 4
    c_tr = analysis.traditional_cost(k)
    c_pr = analysis.progressive_cost(r, k)
    c_ir = analysis.iterative_cost(r, d)
    vote_3_1 = VoteState.binary(3, 1)
    more_needed = IterativeRedundancy(d).decide(vote_3_1).more_jobs
    return [
        ExampleRow("R_TR(0.7, k=19)", "0.97", analysis.traditional_reliability(r, k), 0.005),
        ExampleRow("C_TR(k=19)", "19", c_tr, 0.0),
        ExampleRow("C_PR(0.7, k=19)", "14.2", c_pr, 0.05),
        ExampleRow("C_TR / C_PR", "1.3", c_tr / c_pr, 0.05),
        ExampleRow("q(0.7, 1, 0)", "0.7", confidence(r, 1, 0), 1e-9),
        ExampleRow("q(0.7, 4, 0)", "0.97", confidence(r, 4, 0), 0.005),
        ExampleRow("C_IR(0.7, d=4)", "9.4", c_ir, 0.1),
        ExampleRow("C_PR / C_IR", "1.5", c_pr / c_ir, 0.05),
        ExampleRow("C_TR / C_IR", "2.0", c_tr / c_ir, 0.05),
        ExampleRow("extra jobs after 3-1 split (d=4)", "2", float(more_needed), 0.0),
        ExampleRow(
            "q(0.7, 106, 100) - q(0.7, 6, 0)",
            "0",
            confidence(r, 106, 100) - confidence(r, 6, 0),
            1e-12,
        ),
        ExampleRow(
            "PR max waves after the first (k=19)",
            "9",
            float(ProgressiveRedundancy(k).max_waves() - 1),
            0.0,
        ),
        ExampleRow(
            "d(0.7, 0.97-as-printed, b=0)  [paper rounds 0.9674 to 0.97]",
            "4",
            float(required_agreement(r, 0.967, 0)),
            0.0,
        ),
    ]


def render(rows: List[ExampleRow]) -> str:
    table_rows = [
        [row.claim, row.paper_value, row.computed, "yes" if row.agrees else "NO"]
        for row in rows
    ]
    return render_table(
        "Table E1: the paper's inline worked examples",
        ["claim", "paper", "computed", "agrees"],
        table_rows,
        notes=[
            "q(0.7, 4, 0) = 0.9674: the paper prints '> 0.97'; its own "
            "C_IR = 9.4 confirms d = 4 was intended",
        ],
    )


def main(scale: str = "default", jobs: Optional[int] = None) -> str:
    """Closed forms only; ``jobs`` accepted for CLI uniformity."""
    return render(compute())


if __name__ == "__main__":  # pragma: no cover
    print(main())
