"""Figure 6: average response time vs cost factor.

The paper's XDEVS measurements: progressive redundancy responds 1.4-2.5x
slower than traditional redundancy and iterative redundancy 1.4-2.8x
slower, because PR/IR wait for waves sequentially while TR launches all k
jobs at once.  Measured in the same DES setup as Figure 5(a); the
unloaded-system analytic model (expected max of each wave's uniform
durations) is printed alongside.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy
from repro.core import analysis
from repro.experiments.common import (
    SCALES,
    ExperimentResult,
    Series,
    SeriesPoint,
    measurement_from_envelopes,
    render_table,
)
from repro.parallel import dca_replicate_specs, run_dca_replicates

DEFAULT_R = 0.7
DEFAULT_KS = (3, 7, 11, 15, 19, 25)
DEFAULT_DS = (1, 2, 4, 6, 8, 10)


def compute(
    r: float = DEFAULT_R,
    ks: Sequence[int] = DEFAULT_KS,
    ds: Sequence[int] = DEFAULT_DS,
    *,
    tasks: int = 10_000,
    nodes: int = 1_000,
    replications: int = 3,
    seed: int = 5,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Measure response time per technique across the cost sweep.

    Like Figure 5(a), the full sweep is one flat spec list through the
    parallel replication engine; ``jobs`` never changes the results.
    """
    sweeps = [
        ("TR", "traditional", [(f"k={k}", k, lambda k=k: TraditionalRedundancy(k)) for k in ks]),
        ("PR", "progressive", [(f"k={k}", k, lambda k=k: ProgressiveRedundancy(k)) for k in ks]),
        ("IR", "iterative", [(f"d={d}", d, lambda d=d: IterativeRedundancy(d)) for d in ds]),
    ]
    specs = []
    points = []  # (series name, label, analytic response, start, stop)
    for name, model_name, configs in sweeps:
        for label, param, factory in configs:
            point_specs = dca_replicate_specs(
                factory,
                tasks=tasks,
                nodes=nodes,
                reliability=r,
                replications=replications,
                seed=seed,
            )
            start = len(specs)
            specs.extend(point_specs)
            points.append(
                (
                    name,
                    label,
                    analysis.expected_response_time(r, model_name, param),
                    start,
                    len(specs),
                )
            )
    envelopes = run_dca_replicates(specs, jobs=jobs)

    series_list: List[Series] = []
    for name, _, _ in sweeps:
        series = Series(name)
        for point_name, label, analytic_response, start, stop in points:
            if point_name != name:
                continue
            measurement = measurement_from_envelopes(envelopes[start:stop])
            series.add(
                SeriesPoint(
                    label=label,
                    cost=measurement.mean_cost,
                    reliability=measurement.mean_response_time,
                    extra={"analytic_response": analytic_response},
                )
            )
        series_list.append(series)
    return ExperimentResult(
        title=(
            f"Figure 6: average response time vs cost factor "
            f"(r = {r}, {tasks} tasks x {replications} reps, {nodes} nodes)"
        ),
        series=series_list,
        notes=[
            "columns: measured mean response time; analytic = unloaded-system model",
            "expected: PR 1.4-2.5x and IR 1.4-2.8x the TR response at matched params",
        ],
    )


def render(result: ExperimentResult) -> str:
    rows: List[List[object]] = []
    for series in result.series:
        for point in series.points:
            rows.append(
                [
                    series.name,
                    point.label,
                    point.cost,
                    point.reliability,
                    point.extra["analytic_response"],
                ]
            )
    return render_table(
        result.title,
        ["technique", "param", "cost factor", "response time", "response (model)"],
        rows,
        result.notes,
    )


def main(
    scale: str = "default",
    r: float = DEFAULT_R,
    jobs: Optional[int] = 1,
) -> str:
    params = SCALES[scale]
    return render(
        compute(
            r=r,
            tasks=params["tasks"],
            nodes=params["nodes"],
            replications=params["replications"],
            jobs=jobs,
        )
    )


if __name__ == "__main__":  # pragma: no cover
    print(main("smoke"))
