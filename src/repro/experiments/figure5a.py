"""Figure 5(a): simulated reliability vs cost factor (the XDEVS study).

The paper ran XDEVS discrete-event simulations (>= 10^6 tasks, 10^4
nodes, durations U(0.5, 1.5), r = 0.7) and showed the measured
(cost, reliability) points agreeing with the analytic predictions, with
iterative redundancy dominating.  This harness reruns that study on our
DES substrate, with replication-based error bars, and prints the analytic
prediction next to every measured point.

At the default scale each point aggregates 3 x 10,000 tasks on 1,000
nodes; ``--scale full`` uses 100,000 tasks on 10,000 nodes per
replication (the paper's node count; task count is a documented
substitution -- see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy
from repro.core import analysis
from repro.experiments.common import (
    SCALES,
    ExperimentResult,
    Series,
    SeriesPoint,
    measurement_from_envelopes,
    render_table,
)
from repro.parallel import dca_replicate_specs, run_dca_replicates

DEFAULT_R = 0.7
DEFAULT_KS = (3, 7, 11, 15, 19)
DEFAULT_DS = (1, 2, 3, 4, 5, 6)


def compute(
    r: float = DEFAULT_R,
    ks: Sequence[int] = DEFAULT_KS,
    ds: Sequence[int] = DEFAULT_DS,
    *,
    tasks: int = 10_000,
    nodes: int = 1_000,
    replications: int = 3,
    seed: int = 1,
    jobs: Optional[int] = 1,
) -> ExperimentResult:
    """Measure each technique's (cost, reliability) by simulation.

    The whole sweep -- every (technique, parameter) point times every
    replication -- is one flat spec list fanned out through the parallel
    replication engine; results are identical for any ``jobs`` value.
    """
    sweeps = [
        ("TR", [(f"k={k}", lambda k=k: TraditionalRedundancy(k)) for k in ks],
         [(analysis.traditional_cost(k), analysis.traditional_reliability(r, k)) for k in ks]),
        ("PR", [(f"k={k}", lambda k=k: ProgressiveRedundancy(k)) for k in ks],
         [(analysis.progressive_cost(r, k), analysis.progressive_reliability(r, k)) for k in ks]),
        ("IR", [(f"d={d}", lambda d=d: IterativeRedundancy(d)) for d in ds],
         [(analysis.iterative_cost(r, d), analysis.iterative_reliability(r, d)) for d in ds]),
    ]
    specs = []
    points = []  # (series name, label, cost_pred, rel_pred, start, stop)
    for name, configs, analytic in sweeps:
        for (label, factory), (cost_pred, rel_pred) in zip(configs, analytic):
            point_specs = dca_replicate_specs(
                factory,
                tasks=tasks,
                nodes=nodes,
                reliability=r,
                replications=replications,
                seed=seed,
            )
            start = len(specs)
            specs.extend(point_specs)
            points.append((name, label, cost_pred, rel_pred, start, len(specs)))
    envelopes = run_dca_replicates(specs, jobs=jobs)

    series_list: List[Series] = []
    for name, _, _ in sweeps:
        series = Series(name)
        for point_name, label, cost_pred, rel_pred, start, stop in points:
            if point_name != name:
                continue
            measurement = measurement_from_envelopes(envelopes[start:stop])
            series.add(
                SeriesPoint(
                    label=label,
                    cost=measurement.mean_cost,
                    reliability=measurement.mean_reliability,
                    cost_err=measurement.cost_err,
                    reliability_err=measurement.reliability_err,
                    extra={
                        "analytic_cost": cost_pred,
                        "analytic_reliability": rel_pred,
                        "max_jobs": measurement.max_jobs,
                    },
                )
            )
        series_list.append(series)
    return ExperimentResult(
        title=(
            f"Figure 5(a): simulated reliability vs cost factor "
            f"(r = {r}, {tasks} tasks x {replications} reps, {nodes} nodes)"
        ),
        series=series_list,
        notes=["measured points should track the analytic columns closely"],
    )


def render(result: ExperimentResult) -> str:
    rows: List[List[object]] = []
    for series in result.series:
        for point in series.points:
            rows.append(
                [
                    series.name,
                    point.label,
                    point.cost,
                    point.extra["analytic_cost"],
                    point.reliability,
                    point.extra["analytic_reliability"],
                    point.extra["max_jobs"],
                ]
            )
    return render_table(
        result.title,
        ["technique", "param", "cost", "cost (eq)", "reliability", "rel (eq)", "max jobs"],
        rows,
        result.notes,
    )


def main(
    scale: str = "default",
    r: float = DEFAULT_R,
    jobs: Optional[int] = 1,
) -> str:
    params = SCALES[scale]
    return render(
        compute(
            r=r,
            tasks=params["tasks"],
            nodes=params["nodes"],
            replications=params["replications"],
            jobs=jobs,
        )
    )


if __name__ == "__main__":  # pragma: no cover
    print(main("smoke"))
