"""ASCII renderings of the paper's schematic figures (1 and 2).

Figures 1 and 2 carry no data -- they depict the DCA system model and the
three algorithms' control flow -- but a reproduction is easier to check
against the paper when the repository can print its own understanding of
them.  The schematics below are generated from the same constants the
implementation uses (consensus sizes, wave rules), so they cannot drift
from the code.
"""

from __future__ import annotations

from typing import Optional

from repro.core import IterativeRedundancy, ProgressiveRedundancy, TraditionalRedundancy


def figure1_schematic() -> str:
    """The DCA model of Figure 1, as the dca package implements it."""
    return "\n".join(
        [
            "Figure 1 schematic: the DCA system model (repro.dca)",
            "",
            "  computation --subdivide--> tasks --create jobs--> job queue",
            "                                                        |",
            "        node pool  <--[ uniformly random selection ]----+",
            "      (join/leave)                                      |",
            "            ^                 assign job to node        v",
            "            |                                       perform job",
            "            +------ return to pool <--- report ---------+",
            "                                                        |",
            "            compare results (strategy.decide) ----------+",
            "                 |                    |",
            "              accept            create new jobs",
            "",
            "  churn: new nodes volunteer / nodes quit at Poisson rates",
            "  deadline: a silent job counts as failed (Section 2.2)",
        ]
    )


def figure2_schematic() -> str:
    """The three algorithms of Figure 2, parameterised live."""
    k = 19
    d = 4
    traditional = TraditionalRedundancy(k)
    progressive = ProgressiveRedundancy(k)
    iterative = IterativeRedundancy(d)
    return "\n".join(
        [
            "Figure 2 schematic: the three redundancy algorithms",
            "",
            f"(a) traditional, k={k}",
            f"      distribute {traditional.initial_jobs()} independent jobs",
            f"      take the majority (>= {(k + 1) // 2} identical results)",
            "      -> solution",
            "",
            f"(b) progressive, k={k}",
            f"      distribute {progressive.initial_jobs()} jobs  "
            "(the consensus size, not k)",
            f"      while max(a, b) < {(k + 1) // 2}:",
            "          distribute consensus - max(a, b) more jobs",
            "      -> solution  (never more than k responses, "
            f"<= {(k + 1) // 2} waves)",
            "",
            f"(c) iterative, d={d}",
            f"      distribute {iterative.initial_jobs()} jobs",
            f"      while a - b < {d}:",
            f"          distribute {d} - (a - b) more jobs; swap if a < b",
            "      -> solution  (cost adapts to the node pool; unbounded tail)",
        ]
    )


def main(scale: str = "default", jobs: Optional[int] = None) -> str:
    """Static schematics; ``jobs`` accepted for CLI uniformity."""
    return figure1_schematic() + "\n\n" + figure2_schematic()


if __name__ == "__main__":  # pragma: no cover
    print(main())
