"""SARIF 2.1.0 output for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is what code hosts
ingest to render findings as inline annotations; CI uploads the file
produced here so a layering violation shows up on the offending import
line of the pull request.  The emitter is deliberately minimal -- one
run, one driver, one location per result -- and byte-deterministic:
results are sorted and serialised with sorted keys, so ``--jobs N``
output is identical to ``--jobs 1``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "reprolint"
TOOL_URI = "https://github.com/repro/repro/blob/main/docs/linting.md"

#: ``Severity`` -> SARIF ``level``.
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _artifact_uri(path: str) -> str:
    """A forward-slash, preferably repo-relative URI for ``path``."""
    candidate = Path(path)
    try:
        candidate = candidate.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return candidate.as_posix()


def sarif_rules(rule_metadata: Sequence[Tuple[str, str, Severity]]) -> List[dict]:
    """``tool.driver.rules`` entries from (id, summary, severity) triples."""
    return [
        {
            "id": rule_id,
            "shortDescription": {"text": summary or rule_id},
            "defaultConfiguration": {"level": _LEVELS[severity]},
            "helpUri": TOOL_URI,
        }
        for rule_id, summary, severity in rule_metadata
    ]


def sarif_log(
    findings: Sequence[Finding],
    rule_metadata: Sequence[Tuple[str, str, Severity]],
    *,
    tool_version: str = "0",
) -> dict:
    """The SARIF log document as a plain dict."""
    rule_index: Dict[str, int] = {
        rule_id: index for index, (rule_id, _, _) in enumerate(rule_metadata)
    }
    results = []
    for finding in sorted(findings):
        result = {
            "ruleId": finding.rule_id,
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _artifact_uri(finding.path)},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": TOOL_URI,
                        "rules": sarif_rules(rule_metadata),
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    rule_metadata: Sequence[Tuple[str, str, Severity]],
    *,
    tool_version: str = "0",
) -> str:
    """Serialise the SARIF log deterministically."""
    return json.dumps(
        sarif_log(findings, rule_metadata, tool_version=tool_version),
        indent=2,
        sort_keys=True,
    )
