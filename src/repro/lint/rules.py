"""The per-file reprolint rule set (RL001-RL008).

Each rule encodes one determinism or correctness invariant of this
repository; ``docs/linting.md`` documents the rationale behind every
rule and how to suppress a finding that is provably safe.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding

#: Packages whose code runs inside simulations (simulated time only) or on
#: engine/server hot paths.  ``experiments`` and ``sat`` are deliberately
#: excluded: plotting and file I/O may touch the wall clock.  ``parallel``
#: and ``bench`` are excluded too -- measuring worker wall-clock durations
#: and benchmark timings is their purpose, and they never run *inside* a
#: simulation.
SIM_PACKAGES: FrozenSet[str] = frozenset(
    {"sim", "dca", "core", "volunteer", "grid", "replication", "mapreduce"}
)

#: Module-level draw functions of :mod:`random` (the shared global stream).
_GLOBAL_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)

#: Module-level draw functions of ``numpy.random`` (the legacy global
#: RandomState).  Same hazard as the global ``random`` module: one stray
#: draw perturbs every later draw in the shared stream.  The columnar
#: engine's seeded per-stream ``default_rng(seed)`` generators are the
#: sanctioned alternative.
_NUMPY_GLOBAL_DRAWS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "beta",
        "binomial",
        "exponential",
        "gamma",
        "poisson",
        "get_state",
        "set_state",
    }
)

_WALL_CLOCK_TIME = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

#: Identifier words that mark an expression as a probability/confidence.
_PROB_PREFIXES = ("probab", "confid", "credib", "belief", "likelihood", "reliab")
_PROB_EXACT = frozenset({"prob"})

_WORD_RE = re.compile(r"[a-z]+")

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)


def _module_aliases(tree: ast.Module, module: str) -> FrozenSet[str]:
    """Local names bound to ``import module`` (including ``as`` aliases)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return frozenset(aliases)


def _from_imports(tree: ast.Module, module: str) -> Dict[str, Tuple[str, ast.ImportFrom]]:
    """Local name -> (original name, import node) for ``from module import ...``."""
    out: Dict[str, Tuple[str, ast.ImportFrom]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                out[alias.asname or alias.name] = (alias.name, node)
    return out


@register
class NoGlobalRandomRule(Rule):
    """RL001: simulations must draw from RngRegistry streams, never the
    process-global ``random`` module (one stray draw perturbs every
    subsequent draw in the shared stream and breaks replay)."""

    rule_id = "RL001"
    summary = "no draws from the global random module (use RngRegistry streams)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        aliases = _module_aliases(module.tree, "random")
        for name, (original, node) in _from_imports(module.tree, "random").items():
            if original in _GLOBAL_DRAWS:
                yield self.finding(
                    module,
                    node,
                    f"importing random.{original} binds the shared global RNG stream; "
                    "draw from an RngRegistry stream instead",
                )
            del name
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not (isinstance(node.value, ast.Name) and node.value.id in aliases):
                continue
            if node.attr in _GLOBAL_DRAWS:
                yield self.finding(
                    module,
                    node,
                    f"random.{node.attr} draws from the shared global RNG stream; "
                    "use a random.Random handed out by RngRegistry",
                )
            elif node.attr == "SystemRandom":
                yield self.finding(
                    module,
                    node,
                    "random.SystemRandom is a nondeterministic entropy source; "
                    "seed an RngRegistry instead",
                )
        yield from self._check_numpy(module)

    def _check_numpy(self, module: ModuleContext) -> Iterator[Finding]:
        """The same invariant for numpy: no legacy global-RandomState
        draws (``np.random.rand`` etc.), no unseeded ``default_rng()``
        -- columnar/array code must seed its generators from registry
        spawn seeds, exactly like :mod:`repro.dca.columnar` does."""
        tree = module.tree
        numpy_aliases = set()  # names bound to the numpy package itself
        random_aliases = set()  # names bound to the numpy.random module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
        for name, (original, node) in _from_imports(tree, "numpy").items():
            if original == "random":
                random_aliases.add(name)
        default_rng_aliases = set()  # names bound to numpy.random.default_rng
        for name, (original, node) in _from_imports(tree, "numpy.random").items():
            if original in _NUMPY_GLOBAL_DRAWS:
                yield self.finding(
                    module,
                    node,
                    f"importing numpy.random.{original} binds the legacy global "
                    "RandomState stream; use a seeded np.random.default_rng(seed) "
                    "generator instead",
                )
            elif original == "default_rng":
                default_rng_aliases.add(name)

        def is_numpy_random(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in random_aliases
            return (
                isinstance(expr, ast.Attribute)
                and expr.attr == "random"
                and isinstance(expr.value, ast.Name)
                and expr.value.id in numpy_aliases
            )

        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and is_numpy_random(node.value):
                if node.attr in _NUMPY_GLOBAL_DRAWS:
                    yield self.finding(
                        module,
                        node,
                        f"np.random.{node.attr} draws from numpy's legacy global "
                        "RandomState; use a seeded np.random.default_rng(seed) "
                        "generator instead",
                    )
            if not (isinstance(node, ast.Call) and not node.args and not node.keywords):
                continue
            func = node.func
            unseeded = (
                isinstance(func, ast.Attribute)
                and func.attr == "default_rng"
                and is_numpy_random(func.value)
            ) or (isinstance(func, ast.Name) and func.id in default_rng_aliases)
            if unseeded:
                yield self.finding(
                    module,
                    node,
                    "default_rng() without a seed pulls OS entropy and is "
                    "nondeterministic; pass a registry-derived seed "
                    "(e.g. registry.spawn(name).seed)",
                )


def _iter_wall_clock_uses(tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, description)`` for every wall-clock read in ``tree``.

    Shared detector behind RL002 (simulation packages) and RL008 (the
    ``obs`` package outside its ``host*`` modules): from-imports of
    ``time`` draw functions, ``time.time()``-style calls through module
    aliases, and ``datetime.now()``/``date.today()`` in both spellings.
    """
    time_aliases = _module_aliases(tree, "time")
    datetime_aliases = _module_aliases(tree, "datetime")
    from_time = _from_imports(tree, "time")
    from_datetime = _from_imports(tree, "datetime")

    for local, (original, node) in from_time.items():
        if original in _WALL_CLOCK_TIME:
            yield node, f"time.{original} reads the wall clock"
        del local
    datetime_classes = {
        local for local, (original, _) in from_datetime.items() if original in ("datetime", "date")
    }

    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        func = node.func
        base = func.value
        # time.time(), time.monotonic(), ...
        if (
            isinstance(base, ast.Name)
            and base.id in time_aliases
            and func.attr in _WALL_CLOCK_TIME
        ):
            yield node, f"time.{func.attr}() reads the wall clock"
        # datetime.datetime.now(), datetime.date.today()
        elif (
            func.attr in _WALL_CLOCK_DATETIME
            and isinstance(base, ast.Attribute)
            and base.attr in ("datetime", "date")
            and isinstance(base.value, ast.Name)
            and base.value.id in datetime_aliases
        ):
            yield node, f"datetime.{base.attr}.{func.attr}() reads the wall clock"
        # datetime.now() / date.today() via from-import
        elif (
            func.attr in _WALL_CLOCK_DATETIME
            and isinstance(base, ast.Name)
            and base.id in datetime_classes
        ):
            yield node, f"{base.id}.{func.attr}() reads the wall clock"


@register
class NoWallClockRule(Rule):
    """RL002: simulation packages run on simulated time; reading the wall
    clock makes event timestamps (and everything derived from them)
    irreproducible."""

    rule_id = "RL002"
    summary = "no wall-clock reads inside simulation packages (simulated time only)"
    packages = SIM_PACKAGES

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node, description in _iter_wall_clock_uses(module.tree):
            yield self.finding(
                module,
                node,
                f"{description}; use Simulator.now (simulated time) instead",
            )


def _probability_words(node: ast.AST) -> bool:
    """True if the expression's identifiers mark it as a probability."""
    names = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.arg):  # pragma: no cover - not an expression
            names.append(sub.arg)
    for name in names:
        for word in _WORD_RE.findall(name.lower()):
            if word in _PROB_EXACT or word.startswith(_PROB_PREFIXES):
                return True
    return False


def _non_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, (str, bool, bytes)) or (
        isinstance(node, ast.Constant) and node.value is None
    )


@register
class NoFloatEqualityOnProbabilitiesRule(Rule):
    """RL003: probabilities and confidences are floats built from products
    and complements; exact ``==``/``!=`` on them silently depends on
    rounding.  Require ``math.isclose`` or an explicit tolerance.

    The self-comparison NaN idiom (``x == x``) is exempt.
    """

    rule_id = "RL003"
    summary = "no float ==/!= on probability/confidence expressions (use math.isclose)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if ast.dump(left) == ast.dump(right):
                    continue  # NaN-check idiom (x == x)
                if _non_float_literal(left) or _non_float_literal(right):
                    continue
                if _probability_words(left) or _probability_words(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module,
                        node,
                        f"exact float {symbol} on a probability/confidence expression; "
                        "use math.isclose or an explicit tolerance",
                    )
                    break


@register
class NoMutableDefaultArgsRule(Rule):
    """RL004: a mutable default is created once at definition time and
    shared across calls -- state leaks between invocations."""

    rule_id = "RL004"
    summary = "no mutable default arguments"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {name}(); "
                        "use None and create the value inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _MUTABLE_CALLS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CALLS:
                return True
        return False


@register
class RngStreamNameLiteralRule(Rule):
    """RL005: RNG stream names must be string literals, so the complete
    set of streams a simulation uses can be audited statically (grep for
    ``.stream("``) and collisions spotted in review.

    Literal-*prefixed* f-strings (``f"replicate:{index}"``) are accepted:
    families of per-index streams are still auditable by their prefix,
    and the parallel replication engine derives one spawn key per
    replicate this way.  Also accepted are *resolvable stream-label
    constants*: a name bound at module level to a string literal or a
    ``StreamLabel("...")`` call, or imported from
    :mod:`repro.sim.streams` (the canonical label module) -- the literal
    is still statically auditable, just defined once.  A fully dynamic
    name (``f"{name}"``, a local variable, a call) remains a finding.
    """

    rule_id = "RL005"
    summary = "RNG stream/spawn names must be string literals (or literal-prefixed f-strings)"

    #: Modules whose exported constants are trusted stream labels.
    LABEL_MODULES = ("repro.sim.streams", "repro.sim")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        resolvable = self._resolvable_labels(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in ("stream", "spawn"):
                continue
            name_arg: Optional[ast.AST] = None
            if node.args:
                name_arg = node.args[0]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "name":
                        name_arg = keyword.value
            if name_arg is None:
                continue
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                continue
            if self._literal_prefixed(name_arg):
                continue
            if isinstance(name_arg, ast.Name) and name_arg.id in resolvable:
                continue
            yield self.finding(
                module,
                name_arg,
                f".{node.func.attr}() name must be a string literal, a "
                "literal-prefixed f-string, or a module-level StreamLabel "
                "constant so the stream set is statically auditable",
            )

    @classmethod
    def _resolvable_labels(cls, tree: ast.Module) -> FrozenSet[str]:
        """Module-level names that statically resolve to a stream label."""
        out = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                is_label = (
                    isinstance(value, ast.Constant) and isinstance(value.value, str)
                ) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "StreamLabel"
                    and value.args
                    and isinstance(value.args[0], ast.Constant)
                    and isinstance(value.args[0].value, str)
                )
                if not is_label:
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
            elif isinstance(stmt, ast.ImportFrom) and stmt.module in cls.LABEL_MODULES:
                for alias in stmt.names:
                    if alias.name != "StreamLabel" and alias.name != "*":
                        out.add(alias.asname or alias.name)
        return frozenset(out)

    @staticmethod
    def _literal_prefixed(node: ast.AST) -> bool:
        """True for f-strings whose first piece is a non-empty literal."""
        if not isinstance(node, ast.JoinedStr) or not node.values:
            return False
        first = node.values[0]
        return (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value != ""
        )


@register
class NoSwallowedExceptionsRule(Rule):
    """RL006: a bare ``except:`` (or ``except Exception: pass``) on an
    engine/server hot path hides StopSimulation, vote-accounting bugs, and
    determinism violations alike."""

    rule_id = "RL006"
    summary = "no bare/blanket exception swallowing on engine and server hot paths"
    packages = SIM_PACKAGES

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except catches StopSimulation and KeyboardInterrupt; "
                    "name the exception type",
                )
                continue
            blanket = (
                isinstance(node.type, ast.Name) and node.type.id in ("Exception", "BaseException")
            ) or (
                isinstance(node.type, ast.Attribute)
                and node.type.attr in ("Exception", "BaseException")
            )
            if blanket and all(self._is_noop(stmt) for stmt in node.body):
                name = node.type.attr if isinstance(node.type, ast.Attribute) else node.type.id
                yield self.finding(
                    module,
                    node,
                    f"except {name}: pass silently swallows failures on a hot path; "
                    "handle or re-raise",
                )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return isinstance(stmt, ast.Expr) and (
            isinstance(stmt.value, ast.Constant) and stmt.value.value is Ellipsis
        )


#: functools caching decorators that memoize on the full argument tuple.
_CACHE_DECORATORS = frozenset({"lru_cache", "cache"})


@register
class NoCachedMethodsRule(Rule):
    """RL007: ``functools.lru_cache``/``cache`` on a *method* keys the
    cache on ``self``, so every instance that ever calls it is pinned in
    the cache forever (an unbounded memory leak for ``maxsize=None``) and
    logically-equal instances miss each other's entries.  Memoize a
    module-level function keyed on the value-typed arguments instead (as
    :mod:`repro.core.confidence` does), or precompute in ``__init__``.

    Static methods take no ``self`` and are exempt; ``functools.cached_property``
    stores on the instance, not a shared cache, and is never flagged.
    """

    rule_id = "RL007"
    summary = "no functools.lru_cache/cache on methods (the cache pins self alive)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if any(self._is_staticmethod(d) for d in stmt.decorator_list):
                    continue
                for decorator in stmt.decorator_list:
                    name = self._cache_decorator_name(decorator)
                    if name is not None:
                        yield self.finding(
                            module,
                            decorator,
                            f"@{name} on method {node.name}.{stmt.name} keys the "
                            "cache on self, pinning every instance alive; memoize "
                            "a module-level function on value-typed arguments "
                            "instead",
                        )

    @staticmethod
    def _is_staticmethod(decorator: ast.AST) -> bool:
        return (isinstance(decorator, ast.Name) and decorator.id == "staticmethod") or (
            isinstance(decorator, ast.Attribute) and decorator.attr == "staticmethod"
        )

    @classmethod
    def _cache_decorator_name(cls, decorator: ast.AST) -> Optional[str]:
        """The decorator's cache name if it is lru_cache/cache, else None."""
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id in _CACHE_DECORATORS:
            return target.id
        if isinstance(target, ast.Attribute) and target.attr in _CACHE_DECORATORS:
            base = target.value
            if isinstance(base, ast.Name) and base.id == "functools":
                return f"functools.{target.attr}"
            return target.attr
        return None


#: Registry factory methods that mint metric families directly.
_REGISTRY_FACTORIES = frozenset({"counter", "gauge", "histogram"})
#: Attribute names through which instrumented code could reach a registry.
_REGISTRY_HANDLES = frozenset({"metrics", "registry", "_registry"})


@register
class TelemetryDisciplineRule(Rule):
    """RL008: two halves of the telemetry discipline.

    In ``repro.obs`` (outside its ``host*`` modules), no wall-clock
    reads: telemetry is clocked on *simulated* time so that recording a
    run can never perturb it or make its traces irreproducible.  Capture
    metadata that genuinely wants a wall-clock stamp goes through
    :mod:`repro.obs.host`.

    In simulation packages, no direct metric mutation: instrumented code
    must go through the :class:`~repro.obs.Recorder` API
    (``count``/``gauge``/``observe``), never reach into a registry
    (``<x>.metrics.counter(...)``, ``<x>.registry.gauge(...)``).  The
    recorder indirection is what keeps telemetry-off runs zero-cost and
    lets one instrumentation site feed every exporter.
    """

    rule_id = "RL008"
    summary = (
        "telemetry discipline: no wall clock in repro.obs (except host*), "
        "no direct metric-registry mutation in simulation packages"
    )
    packages = SIM_PACKAGES | {"obs"}

    #: Module basename prefix exempt from the obs wall-clock ban.
    HOST_PREFIX = "host"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.package == "obs":
            yield from self._check_obs_wall_clock(module)
        else:
            yield from self._check_sim_metric_mutation(module)

    def _check_obs_wall_clock(self, module: ModuleContext) -> Iterator[Finding]:
        basename = module.path.replace("\\", "/").rsplit("/", 1)[-1]
        if basename.startswith(self.HOST_PREFIX):
            return
        for node, description in _iter_wall_clock_uses(module.tree):
            yield self.finding(
                module,
                node,
                f"{description}; repro.obs is clocked on simulated time -- "
                "only repro/obs/host*.py may read the host clock",
            )

    def _check_sim_metric_mutation(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            if func.attr not in _REGISTRY_FACTORIES:
                continue
            base = func.value
            if isinstance(base, ast.Attribute) and base.attr in _REGISTRY_HANDLES:
                yield self.finding(
                    module,
                    node,
                    f".{base.attr}.{func.attr}(...) mutates a metrics registry "
                    "directly; simulation code must record through the "
                    "Recorder API (count/gauge/observe)",
                )
